"""Budgeted mitigation planning: which components to harden first.

The MPMCS names the weakest link; this module turns that insight into a
*plan*.  Given a set of candidate :class:`HardeningAction`\\ s (per-event cost
and effect) and a budget, the planner selects the action subset that pushes
the Maximum Probability Minimal Cut Set down the most:

* :func:`greedy_plan` — the classical cost-effectiveness baseline: repeatedly
  buy the affordable action with the best objective reduction per unit cost.
  Fast, and optimal surprisingly often, but it can be trapped (hardening the
  current MPMCS may just promote the runner-up cut set).
* :func:`exact_plan` — an exact re-encoding into Weighted Partial MaxSAT,
  reusing the library's solver portfolio.  The objective ``min_H max_C
  P'(C)`` becomes, in the paper's ``-log`` weight space, ``max_H min_C
  w'(C)`` — a bottleneck problem solved by binary search over the finite set
  of achievable cut-set weights.  Each feasibility probe asks: *is there a
  selection of actions, of minimal total cost, under which every minimal cut
  set weighs at least θ?*  Per-cut-set weight constraints are pseudo-Boolean
  and compile through the generalized totalizer
  (:func:`repro.maxsat.pb.encode_weighted_at_most`); action costs become soft
  clauses, so the MaxSAT optimum is the cheapest plan reaching θ.

:func:`rank_actions` provides the tornado-style sensitivity ranking: the
one-at-a-time impact of every candidate action on the top-event probability
and the MPMCS, sorted by risk reduction.

:func:`pareto_frontier` generalises the planners from one budget point to the
whole trade-off curve: every Pareto-optimal ``(cost, post-hardening MPMCS)``
pair, found by walking the achievable-threshold lattice with the same MaxSAT
feasibility probe the exact planner uses (the cheapest-selection cost is a
monotone step function of the threshold, so a recursive bisection localises
every step with O(points x log thresholds) probes instead of one probe per
threshold).  Large action sets fall back to a greedy sweep that records one
frontier point per purchase.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.cutsets import CutSet, CutSetCollection
from repro.analysis.topevent import top_event_probability_from_cut_sets
from repro.api.cache import ArtifactCache
from repro.core.weights import log_weight
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.pb import encode_weighted_at_most
from repro.maxsat.portfolio import PortfolioSolver
from repro.scenarios.incremental import incremental_cut_sets
from repro.scenarios.patches import DEFAULT_HARDENING_FACTOR, Harden

__all__ = [
    "ActionImpact",
    "FrontierPoint",
    "HardeningAction",
    "MitigationPlan",
    "ParetoFrontier",
    "exact_plan",
    "greedy_plan",
    "pareto_frontier",
    "plan_mitigation",
    "rank_actions",
]

#: Guard on the exact planner's threshold enumeration: every cut set
#: contributes ``2**|C ∩ actions|`` candidate weights.
_MAX_THRESHOLD_CANDIDATES = 200_000

#: Objective reductions below this *relative* slice of the current objective
#: are treated as zero by the greedy planner: an action whose entire effect
#: vanishes in float noise (or rounds to nothing at the exact planner's
#: precision) must not be bought — spending budget for no measurable risk
#: reduction is strictly worse than returning the base plan.
_MIN_RELATIVE_REDUCTION = 1e-9


@dataclass(frozen=True)
class HardeningAction:
    """One purchasable mitigation: harden ``event`` at ``cost``.

    The effect is either an explicit target ``probability`` or a
    multiplicative ``factor`` (default
    :data:`~repro.scenarios.patches.DEFAULT_HARDENING_FACTOR`); hardening may
    only lower the probability.
    """

    event: str
    cost: float
    factor: Optional[float] = None
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.event, str) or not self.event:
            raise AnalysisError(f"action event must be a non-empty string, got {self.event!r}")
        cost = self.cost
        if not isinstance(cost, (int, float)) or isinstance(cost, bool):
            raise AnalysisError(
                f"action cost for {self.event!r} must be a number, got {type(cost).__name__}"
            )
        if not math.isfinite(cost) or cost <= 0:
            raise AnalysisError(f"action cost for {self.event!r} must be positive")

    def as_patch(self) -> Harden:
        return Harden(self.event, factor=self.factor, probability=self.probability)

    def hardened_probability(self, base: float) -> float:
        return self.as_patch().hardened_probability(base)

    @property
    def label(self) -> str:
        return self.as_patch().label


@dataclass(frozen=True)
class ActionImpact:
    """Tornado-style one-at-a-time impact of a single hardening action."""

    action: HardeningAction
    top_event_before: float
    top_event_after: float
    mpmcs_probability_before: float
    mpmcs_probability_after: float

    @property
    def top_event_reduction(self) -> float:
        return self.top_event_before - self.top_event_after

    @property
    def reduction_per_cost(self) -> float:
        return self.top_event_reduction / self.action.cost


@dataclass(frozen=True)
class MitigationPlan:
    """The selected hardening set and its projected effect."""

    method: str
    budget: float
    selected: Tuple[HardeningAction, ...]
    total_cost: float
    base_mpmcs: Tuple[str, ...]
    base_mpmcs_probability: float
    new_mpmcs: Tuple[str, ...]
    new_mpmcs_probability: float
    base_top_event: float
    new_top_event: float

    @property
    def events(self) -> Tuple[str, ...]:
        """Names of the hardened events, sorted."""
        return tuple(sorted(action.event for action in self.selected))

    @property
    def mpmcs_reduction(self) -> float:
        return self.base_mpmcs_probability - self.new_mpmcs_probability

    @property
    def top_event_reduction(self) -> float:
        return self.base_top_event - self.new_top_event

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "budget": self.budget,
            "selected": [
                {"event": action.event, "cost": action.cost, "effect": action.label}
                for action in self.selected
            ],
            "total_cost": self.total_cost,
            "base_mpmcs": list(self.base_mpmcs),
            "base_mpmcs_probability": self.base_mpmcs_probability,
            "new_mpmcs": list(self.new_mpmcs),
            "new_mpmcs_probability": self.new_mpmcs_probability,
            "base_top_event": self.base_top_event,
            "new_top_event": self.new_top_event,
        }


# -- shared evaluation helpers -----------------------------------------------------------


def _cut_set_structure(
    tree: FaultTree, cache: Optional[ArtifactCache]
) -> List[CutSet]:
    collection = incremental_cut_sets(tree, cache if cache is not None else ArtifactCache())
    if not len(collection):
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set to mitigate")
    return list(collection)


def _probabilities_under(
    tree: FaultTree, selection: Iterable[HardeningAction]
) -> Dict[str, float]:
    probabilities = tree.probabilities()
    for action in selection:
        probabilities[action.event] = action.hardened_probability(
            tree.probability(action.event)
        )
    return probabilities


def _mpmcs_under(
    structure: Sequence[CutSet], probabilities: Mapping[str, float]
) -> Tuple[Tuple[str, ...], float]:
    collection = CutSetCollection(cut_sets=list(structure), probabilities=probabilities)
    events, probability = collection.most_probable()
    return tuple(sorted(events)), probability


def _top_event_under(
    structure: Sequence[CutSet], probabilities: Mapping[str, float]
) -> float:
    return top_event_probability_from_cut_sets(structure, probabilities, method="auto")


def validate_actions(tree: FaultTree, actions: Sequence[HardeningAction]) -> None:
    seen: Set[str] = set()
    for action in actions:
        if not tree.is_event(action.event):
            raise AnalysisError(f"action references unknown basic event {action.event!r}")
        if action.event in seen:
            raise AnalysisError(f"multiple actions target event {action.event!r}")
        seen.add(action.event)
        base = tree.probability(action.event)
        if action.hardened_probability(base) > base:
            raise AnalysisError(
                f"action on {action.event!r} would raise its probability; "
                "hardening must not make things worse"
            )


# -- tornado-style sensitivity ranking ---------------------------------------------------


def rank_actions(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    *,
    cache: Optional[ArtifactCache] = None,
) -> List[ActionImpact]:
    """One-at-a-time impact of each action, sorted by top-event reduction.

    The classical tornado diagram restricted to the downside every action can
    actually buy; ties break on cost (cheaper first) then event name.
    """
    validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)
    base_probabilities = tree.probabilities()
    base_top = _top_event_under(structure, base_probabilities)
    _, base_mpmcs_probability = _mpmcs_under(structure, base_probabilities)
    impacts = []
    for action in actions:
        probabilities = _probabilities_under(tree, [action])
        _, mpmcs_probability = _mpmcs_under(structure, probabilities)
        impacts.append(
            ActionImpact(
                action=action,
                top_event_before=base_top,
                top_event_after=_top_event_under(structure, probabilities),
                mpmcs_probability_before=base_mpmcs_probability,
                mpmcs_probability_after=mpmcs_probability,
            )
        )
    return sorted(
        impacts,
        key=lambda impact: (
            -impact.top_event_reduction,
            impact.action.cost,
            impact.action.event,
        ),
    )


# -- greedy baseline ---------------------------------------------------------------------


def _objective_value(
    tree: FaultTree,
    structure: Sequence[CutSet],
    selection: Sequence[HardeningAction],
    objective: str,
) -> float:
    probabilities = _probabilities_under(tree, selection)
    if objective == "mpmcs":
        return _mpmcs_under(structure, probabilities)[1]
    return _top_event_under(structure, probabilities)


def _greedy_purchases(
    tree: FaultTree,
    structure: Sequence[CutSet],
    actions: Sequence[HardeningAction],
    *,
    objective: str = "mpmcs",
    budget: Optional[float] = None,
):
    """Yield the cumulative selection after each greedy purchase.

    The one definition of the greedy heuristic — best objective reduction per
    unit cost among the (affordable, when ``budget`` is set) actions whose
    reduction clears :data:`_MIN_RELATIVE_REDUCTION` — shared by
    :func:`greedy_plan` (which keeps only the final selection) and the greedy
    frontier (which records every intermediate one).
    """
    selected: List[HardeningAction] = []
    remaining = list(actions)
    spent = 0.0
    current = _objective_value(tree, structure, selected, objective)
    while True:
        best: Optional[Tuple[float, float, str, HardeningAction]] = None
        for action in remaining:
            if budget is not None and spent + action.cost > budget + 1e-12:
                continue
            value = _objective_value(tree, structure, selected + [action], objective)
            reduction = current - value
            if reduction <= current * _MIN_RELATIVE_REDUCTION:
                continue
            key = (-(reduction / action.cost), action.cost, action.event)
            if best is None or key < best[:3]:
                best = (*key, action)
        if best is None:
            return
        action = best[3]
        selected.append(action)
        remaining.remove(action)
        spent += action.cost
        current = _objective_value(tree, structure, selected, objective)
        yield tuple(selected)


def greedy_plan(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    budget: float,
    *,
    objective: str = "mpmcs",
    cache: Optional[ArtifactCache] = None,
) -> MitigationPlan:
    """Cost-effectiveness greedy baseline.

    Repeatedly buys the affordable action with the largest objective
    reduction per unit cost (``objective`` is ``"mpmcs"`` — the MPMCS
    probability, the paper's quantity — or ``"top_event"``), stopping when
    the budget is exhausted or no affordable action still reduces the
    objective.
    """
    if objective not in ("mpmcs", "top_event"):
        raise AnalysisError(f"unknown objective {objective!r}; use 'mpmcs' or 'top_event'")
    validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)

    selected: Tuple[HardeningAction, ...] = ()
    for selection in _greedy_purchases(
        tree, structure, actions, objective=objective, budget=budget
    ):
        selected = selection

    return _assemble_plan(tree, structure, selected, budget, method="greedy")


# -- exact MaxSAT planner ----------------------------------------------------------------


class _ThresholdProbe:
    """The exact planners' shared weight-space machinery.

    Precomputes the paper's ``-log`` weight space at a fixed integer
    ``precision`` — per-action weight deltas, per-cut-set base weights and the
    finite lattice of achievable bottleneck thresholds — and answers the one
    question both :func:`exact_plan` and :func:`pareto_frontier` ask:
    :meth:`cheapest`, the minimum-cost action subset under which every minimal
    cut set weighs at least ``theta`` (a Weighted Partial MaxSAT instance
    solved with the engine portfolio).
    """

    def __init__(
        self,
        tree: FaultTree,
        structure: Sequence[CutSet],
        actions: Sequence[HardeningAction],
        portfolio: PortfolioSolver,
        precision: int,
    ) -> None:
        self.structure = structure
        self.portfolio = portfolio
        self.precision = precision

        base_weights = {name: log_weight(p) for name, p in tree.probabilities().items()}
        self.deltas: Dict[str, int] = {}
        self.costs: Dict[str, float] = {}
        for action in actions:
            base = tree.probability(action.event)
            hardened = action.hardened_probability(base)
            delta = log_weight(hardened) - base_weights[action.event]
            self.deltas[action.event] = max(0, int(round(delta * precision)))
            self.costs[action.event] = action.cost
        self.action_by_event = {action.event: action for action in actions}

        self.cut_weights = [
            int(round(sum(base_weights[name] for name in cut_set) * precision))
            for cut_set in structure
        ]

        # Finite candidate set for the bottleneck value min_C w'(C): every cut
        # set's weight under every subset of its actionable members.
        total_subsets = sum(
            2 ** len([e for e in cut_set if e in self.deltas]) for cut_set in structure
        )
        if total_subsets > _MAX_THRESHOLD_CANDIDATES:
            raise AnalysisError(
                f"exact planner would enumerate {total_subsets} candidate thresholds "
                f"(limit {_MAX_THRESHOLD_CANDIDATES}); use the greedy method for "
                "this model"
            )
        candidates: Set[int] = set()
        for cut_set, base_weight in zip(structure, self.cut_weights):
            actionable = [event for event in cut_set if event in self.deltas]
            for size in range(len(actionable) + 1):
                for combo in itertools.combinations(actionable, size):
                    candidates.add(
                        base_weight + sum(self.deltas[event] for event in combo)
                    )
        self.thresholds: List[int] = sorted(candidates)

    def cheapest(
        self, theta: int, *, budget: Optional[float] = None
    ) -> Optional[List[HardeningAction]]:
        """Cheapest action set making every cut set weigh >= ``theta``, or ``None``.

        ``budget`` additionally rejects selections costing more than it;
        ``None`` means unconstrained (the frontier walk's mode).
        """
        instance = WPMaxSATInstance(precision=self.precision)
        harden_vars = {event: instance.new_var() for event in sorted(self.deltas)}
        for cut_set, base_weight in zip(self.structure, self.cut_weights):
            need = theta - base_weight
            if need <= 0:
                continue
            terms = [
                (self.deltas[event], harden_vars[event])
                for event in sorted(cut_set)
                if event in self.deltas and self.deltas[event] > 0
            ]
            available = sum(weight for weight, _ in terms)
            if available < need:
                return None  # no selection can lift this cut set to theta
            # sum(delta_e * h_e) >= need  <=>  sum(delta_e * (1 - h_e)) <= available - need
            encode_weighted_at_most(
                [(weight, -var) for weight, var in terms],
                available - need,
                instance.new_var,
                instance.add_hard,
            )
        for event, var in harden_vars.items():
            instance.add_soft([-var], self.costs[event])
        if instance.num_soft == 0:
            return []  # theta is free: no constraint requires any action
        result = self.portfolio.solve(instance)
        if not result.is_optimum:
            return None
        if budget is not None and result.float_cost > budget + 1e-9:
            return None
        return [
            self.action_by_event[event]
            for event, var in sorted(harden_vars.items())
            if result.value(var)
        ]


def exact_plan(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    budget: float,
    *,
    cache: Optional[ArtifactCache] = None,
    solver: Optional[PortfolioSolver] = None,
    precision: int = 10**6,
) -> MitigationPlan:
    """Exact budgeted MPMCS minimisation via Weighted Partial MaxSAT.

    Maximises ``min_C w'(C)`` (equivalently minimises the post-hardening
    MPMCS probability) over all action subsets within budget, by binary
    search over the finite candidate thresholds; each feasibility probe is a
    WPMaxSAT instance solved with the library's engine portfolio.  Among all
    subsets reaching the optimal threshold the *cheapest* one is returned.
    """
    validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)
    portfolio = solver if solver is not None else PortfolioSolver(mode="sequential")
    probe = _ThresholdProbe(tree, structure, actions, portfolio, precision)
    thresholds = probe.thresholds

    best_selection: List[HardeningAction] = []
    low, high = 0, len(thresholds) - 1
    while low <= high:
        mid = (low + high) // 2
        selection = probe.cheapest(thresholds[mid], budget=budget)
        if selection is not None:
            best_selection = selection
            low = mid + 1
        else:
            high = mid - 1

    return _assemble_plan(tree, structure, best_selection, budget, method="maxsat")


def _assemble_plan(
    tree: FaultTree,
    structure: Sequence[CutSet],
    selected: Sequence[HardeningAction],
    budget: float,
    *,
    method: str,
) -> MitigationPlan:
    base_probabilities = tree.probabilities()
    base_mpmcs, base_mpmcs_probability = _mpmcs_under(structure, base_probabilities)
    new_probabilities = _probabilities_under(tree, selected)
    new_mpmcs, new_mpmcs_probability = _mpmcs_under(structure, new_probabilities)
    ordered = tuple(sorted(selected, key=lambda action: action.event))
    return MitigationPlan(
        method=method,
        budget=budget,
        selected=ordered,
        total_cost=sum(action.cost for action in ordered),
        base_mpmcs=base_mpmcs,
        base_mpmcs_probability=base_mpmcs_probability,
        new_mpmcs=new_mpmcs,
        new_mpmcs_probability=new_mpmcs_probability,
        base_top_event=_top_event_under(structure, base_probabilities),
        new_top_event=_top_event_under(structure, new_probabilities),
    )


def plan_mitigation(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    budget: float,
    *,
    method: str = "greedy",
    objective: str = "mpmcs",
    cache: Optional[ArtifactCache] = None,
) -> MitigationPlan:
    """Front door: dispatch to :func:`greedy_plan` or :func:`exact_plan`."""
    if method == "greedy":
        return greedy_plan(tree, actions, budget, objective=objective, cache=cache)
    if method in ("exact", "maxsat"):
        if objective != "mpmcs":
            raise AnalysisError("the exact planner optimises the 'mpmcs' objective only")
        return exact_plan(tree, actions, budget, cache=cache)
    raise AnalysisError(f"unknown planning method {method!r}; use 'greedy' or 'exact'")


# -- Pareto frontier: the whole cost-vs-risk trade-off curve -----------------------------


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal purchase: its cost and the risk it buys down to."""

    cost: float
    selected: Tuple[HardeningAction, ...]
    mpmcs: Tuple[str, ...]
    mpmcs_probability: float
    top_event: float

    @property
    def events(self) -> Tuple[str, ...]:
        """Names of the hardened events, sorted."""
        return tuple(sorted(action.event for action in self.selected))

    def to_dict(self) -> Dict[str, object]:
        return {
            "cost": self.cost,
            "selected": [
                {"event": action.event, "cost": action.cost, "effect": action.label}
                for action in self.selected
            ],
            "mpmcs": list(self.mpmcs),
            "mpmcs_probability": self.mpmcs_probability,
            "top_event": self.top_event,
        }


@dataclass(frozen=True)
class ParetoFrontier:
    """The full cost-vs-MPMCS (and cost-vs-P(top)) trade-off curve.

    ``points`` are sorted by ascending cost with strictly decreasing MPMCS
    probability; the first point is always the base model (cost 0) and, for
    the exact method, the last point is the unconstrained optimum — the global
    risk floor any budget can reach.
    """

    method: str
    base_mpmcs: Tuple[str, ...]
    base_mpmcs_probability: float
    base_top_event: float
    points: Tuple[FrontierPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def best_within(self, budget: float) -> FrontierPoint:
        """The lowest-risk frontier point affordable at ``budget``.

        Exact when the frontier was built with the exact method.  A greedy
        frontier is an approximation: a tight budget may admit a better
        multi-action selection than any recorded point — run
        :func:`greedy_plan`/:func:`exact_plan` at that budget before
        committing a spend.
        """
        affordable = [point for point in self.points if point.cost <= budget + 1e-9]
        if not affordable:
            raise AnalysisError(
                f"no frontier point is affordable at budget {budget:g}"
            )
        return affordable[-1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "base_mpmcs": list(self.base_mpmcs),
            "base_mpmcs_probability": self.base_mpmcs_probability,
            "base_top_event": self.base_top_event,
            "points": [point.to_dict() for point in self.points],
        }


def _selection_cost(selection: Optional[Sequence[HardeningAction]]) -> float:
    return math.inf if selection is None else sum(action.cost for action in selection)


def _same_cost(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= 1e-9


def _exact_frontier_selections(
    probe: _ThresholdProbe,
) -> List[Tuple[HardeningAction, ...]]:
    """Every cheapest selection at the steps of the cost-vs-threshold curve.

    The cheapest cost reaching threshold ``theta`` is monotone non-decreasing
    in ``theta`` (an infeasible threshold counts as infinitely expensive), so
    the step function is localised by recursive bisection: an interval whose
    endpoint costs agree is constant and needs no interior probes.  Every
    distinct cost level is probed at its highest achievable threshold, which
    is exactly the selection the frontier needs for that spend.
    """
    thresholds = probe.thresholds
    results: Dict[int, Optional[List[HardeningAction]]] = {}

    def probe_at(index: int) -> Optional[List[HardeningAction]]:
        if index not in results:
            results[index] = probe.cheapest(thresholds[index], budget=None)
        return results[index]

    def walk(low: int, high: int) -> None:
        if high - low <= 1:
            return
        if _same_cost(_selection_cost(probe_at(low)), _selection_cost(probe_at(high))):
            return
        mid = (low + high) // 2
        probe_at(mid)
        walk(low, mid)
        walk(mid, high)

    if thresholds:
        probe_at(0)
        probe_at(len(thresholds) - 1)
        walk(0, len(thresholds) - 1)
    return [
        tuple(selection) for selection in results.values() if selection is not None
    ]


def _greedy_frontier_selections(
    tree: FaultTree,
    structure: Sequence[CutSet],
    actions: Sequence[HardeningAction],
) -> List[Tuple[HardeningAction, ...]]:
    """Candidate selections for the greedy frontier.

    The empty selection, every *single* action, and the cumulative selection
    after each greedy purchase.  The singletons matter: the unconstrained
    cost-effectiveness ordering can defer a cheap low-impact action behind an
    expensive high-impact one, which would leave small budgets with nothing
    to buy on the frontier even though a one-action purchase helps; including
    them guarantees :meth:`ParetoFrontier.best_within` is never worse than
    the best single affordable action.  Beyond that the greedy frontier
    remains an approximation of the exact lattice walk.
    """
    selections: List[Tuple[HardeningAction, ...]] = [()]
    selections.extend((action,) for action in actions)
    selections.extend(_greedy_purchases(tree, structure, actions))
    return selections


def pareto_frontier(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    *,
    method: str = "auto",
    cache: Optional[ArtifactCache] = None,
    solver: Optional[PortfolioSolver] = None,
    precision: int = 10**6,
) -> ParetoFrontier:
    """Enumerate the Pareto-optimal cost-vs-MPMCS trade-off curve.

    ``method``:

    * ``"exact"`` — walk the achievable-threshold lattice with the MaxSAT
      feasibility probe of :func:`exact_plan`; the returned points provably
      match brute-force enumeration over all action subsets (at the weight
      ``precision``).
    * ``"greedy"`` — record one point per greedy cost-effectiveness purchase;
      an approximation, but linear in the action count.
    * ``"auto"`` (default) — exact, falling back to greedy when the threshold
      lattice exceeds the enumeration guard.

    Every returned point also carries the exact top-event probability under
    its selection, so the same frontier answers cost-vs-P(top) questions.
    """
    if method not in ("auto", "exact", "greedy"):
        raise AnalysisError(
            f"unknown frontier method {method!r}; use 'auto', 'exact' or 'greedy'"
        )
    validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)

    chosen = method
    selections: List[Tuple[HardeningAction, ...]] = [()]
    if method in ("auto", "exact") and actions:
        try:
            portfolio = solver if solver is not None else PortfolioSolver(mode="sequential")
            probe = _ThresholdProbe(tree, structure, actions, portfolio, precision)
        except AnalysisError:
            if method == "exact":
                raise
            chosen = "greedy"
        else:
            chosen = "exact"
            selections = _exact_frontier_selections(probe)
    if chosen in ("auto", "greedy"):
        chosen = "greedy"
        if actions:
            selections = _greedy_frontier_selections(tree, structure, actions)

    # Deduplicate selections, evaluate them, and keep the Pareto-dominant set:
    # ascending cost, strictly decreasing MPMCS probability.
    unique: Dict[Tuple[str, ...], Tuple[HardeningAction, ...]] = {}
    for selection in selections:
        ordered = tuple(sorted(selection, key=lambda action: action.event))
        unique.setdefault(tuple(action.event for action in ordered), ordered)
    base_probabilities = tree.probabilities()
    base_mpmcs, base_mpmcs_probability = _mpmcs_under(structure, base_probabilities)
    base_top_event = _top_event_under(structure, base_probabilities)

    candidates: List[FrontierPoint] = []
    for ordered in unique.values():
        probabilities = _probabilities_under(tree, ordered)
        mpmcs, mpmcs_probability = _mpmcs_under(structure, probabilities)
        candidates.append(
            FrontierPoint(
                cost=sum(action.cost for action in ordered),
                selected=ordered,
                mpmcs=mpmcs,
                mpmcs_probability=mpmcs_probability,
                top_event=_top_event_under(structure, probabilities),
            )
        )
    candidates.sort(
        key=lambda point: (point.cost, point.mpmcs_probability, len(point.selected))
    )
    points: List[FrontierPoint] = []
    for point in candidates:
        # A point joins the frontier only for a *measurable* improvement:
        # float-noise "reductions" (two selections whose bottleneck cut set is
        # identical up to rounding) must not buy their way in at a higher cost.
        if (
            not points
            or point.mpmcs_probability
            < points[-1].mpmcs_probability * (1.0 - _MIN_RELATIVE_REDUCTION)
        ):
            points.append(point)

    return ParetoFrontier(
        method=chosen,
        base_mpmcs=base_mpmcs,
        base_mpmcs_probability=base_mpmcs_probability,
        base_top_event=base_top_event,
        points=tuple(points),
    )
