"""Result types of a scenario sweep: base-vs-scenario delta tables.

A :class:`ScenarioReport` pairs the base model's
:class:`~repro.api.report.AnalysisReport` with one :class:`ScenarioOutcome`
per evaluated scenario.  Each outcome carries the scenario's top-event
probability and MPMCS alongside their deltas against the base, so the
operator's question — *which intervention moves the needle, and by how
much?* — is answered by a single table.  The report renders through the
library's existing table/JSON machinery (see
:func:`repro.reporting.tables.scenario_delta_table` and
:func:`repro.reporting.unified.render_scenario_report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.cache import ARTIFACT_SUBTREE_CUT_SETS
from repro.api.report import AnalysisReport

__all__ = ["ScenarioOutcome", "ScenarioReport", "mpmcs_identity_changed"]


def mpmcs_identity_changed(
    base_events: Optional[Tuple[str, ...]], events: Optional[Tuple[str, ...]]
) -> bool:
    """Whether the weakest link moved — including appearing or disappearing.

    ``None`` means "no MPMCS was computed" on that side.  A scenario that
    *eliminates* the base MPMCS (or whose analysis produces one where the base
    had none) is a change every bit as actionable as a displaced cut set, so
    a one-sided ``None`` counts as changed; only two identical answers — or
    two absences — count as unchanged.
    """
    if base_events is None and events is None:
        return False
    return base_events != events


@dataclass(frozen=True)
class ScenarioOutcome:
    """The effect of one scenario, relative to the base model.

    ``error`` is set (and every result field ``None``) when the scenario
    failed to apply or analyse — one impossible scenario must not sink a
    thousand-scenario sweep.
    """

    name: str
    description: str = ""
    top_event: Optional[float] = None
    top_event_delta: Optional[float] = None
    mpmcs_events: Optional[Tuple[str, ...]] = None
    mpmcs_probability: Optional[float] = None
    mpmcs_delta: Optional[float] = None
    mpmcs_changed: bool = False
    time_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "top_event": self.top_event,
            "top_event_delta": self.top_event_delta,
            "mpmcs": list(self.mpmcs_events) if self.mpmcs_events is not None else None,
            "mpmcs_probability": self.mpmcs_probability,
            "mpmcs_delta": self.mpmcs_delta,
            "mpmcs_changed": self.mpmcs_changed,
            "time_s": self.time_s,
            "error": self.error,
        }


@dataclass
class ScenarioReport:
    """Outcome of a :class:`~repro.scenarios.sweep.SweepExecutor` run."""

    tree_name: str
    analyses: Tuple[str, ...]
    backend: str
    incremental: bool
    base: AnalysisReport
    base_top_event: Optional[float]
    base_mpmcs_events: Optional[Tuple[str, ...]]
    base_mpmcs_probability: Optional[float]
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    total_time_s: float = 0.0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok_outcomes(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def subtree_reuse(self) -> Dict[str, int]:
        """Hit/miss counters of the subtree cut-set artifact — the proof of
        incremental reuse across the sweep."""
        by_kind = self.cache_stats.get("by_kind", {})
        counters = by_kind.get(ARTIFACT_SUBTREE_CUT_SETS, {"hits": 0, "misses": 0})
        return {"hits": counters.get("hits", 0), "misses": counters.get("misses", 0)}

    def ranked_by_top_event(self) -> List[ScenarioOutcome]:
        """Successful outcomes sorted by ascending top-event probability
        (best mitigation first)."""
        return sorted(
            self.ok_outcomes,
            key=lambda outcome: (
                outcome.top_event if outcome.top_event is not None else float("inf")
            ),
        )

    def best(self) -> Optional[ScenarioOutcome]:
        """The scenario with the lowest top-event probability, if any succeeded."""
        ranked = self.ranked_by_top_event()
        return ranked[0] if ranked else None

    #: :meth:`to_dict` keys that vary between otherwise identical runs.
    VOLATILE_KEYS = ("cache", "subtree_reuse", "total_time_s")
    #: Per-scenario keys that vary between otherwise identical runs.
    VOLATILE_OUTCOME_KEYS = ("time_s",)

    @staticmethod
    def canonicalize(document: Dict[str, Any]) -> Dict[str, Any]:
        """Strip run telemetry from a :meth:`to_dict` document (non-mutating).

        The single definition of "volatile" shared by
        :meth:`to_canonical_dict` and consumers holding only the JSON form
        (e.g. a service client comparing a fetched result against a local
        run, or the parallel-sweep benchmark).
        """
        document = {
            key: value
            for key, value in document.items()
            if key not in ScenarioReport.VOLATILE_KEYS
        }
        document["scenarios"] = [
            {
                key: value
                for key, value in outcome.items()
                if key not in ScenarioReport.VOLATILE_OUTCOME_KEYS
            }
            for outcome in document["scenarios"]
        ]
        return document

    def to_canonical_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus run telemetry (timings and cache counters).

        Two sweeps over the same tree and scenario list — sequential or
        partitioned over any number of workers — produce byte-identical
        canonical dicts (``json.dumps(..., sort_keys=True)``), which is how
        the parallel executor's equivalence is asserted; only wall-clock and
        hit/miss telemetry may differ between runs.
        """
        return self.canonicalize(self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tree": self.tree_name,
            "analyses": list(self.analyses),
            "backend": self.backend,
            "incremental": self.incremental,
            "base": {
                "top_event": self.base_top_event,
                "mpmcs": (
                    list(self.base_mpmcs_events)
                    if self.base_mpmcs_events is not None
                    else None
                ),
                "mpmcs_probability": self.base_mpmcs_probability,
            },
            "scenarios": [outcome.to_dict() for outcome in self.outcomes],
            "cache": dict(self.cache_stats),
            "subtree_reuse": self.subtree_reuse,
            "total_time_s": self.total_time_s,
        }
