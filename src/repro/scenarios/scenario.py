"""Named scenarios and parametric scenario families.

A :class:`Scenario` is an ordered bundle of patches with a stable name —
"harden both sensors", "double the mission time" — that applies
non-destructively to any base tree.  The module-level helpers build the
common parametric families: one-dimensional probability/scale/mission-time/
CCF-beta sweeps and full cartesian grids over independent patch axes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import FaultTreeError
from repro.fta.tree import FaultTree
from repro.reliability.assignment import ReliabilityAssignment
from repro.scenarios.patches import (
    ApplyCCF,
    MaintenancePatch,
    Patch,
    ScaleMissionTime,
    ScaleProbability,
    SetProbability,
    SetRepairRate,
    SetTestInterval,
)

__all__ = [
    "Scenario",
    "ccf_beta_sweep",
    "maintenance_sweep",
    "mission_time_sweep",
    "probability_sweep",
    "repair_rate_sweep",
    "scale_sweep",
    "scenario_grid",
    "sweep_values",
    "test_interval_sweep",
]


@dataclass(frozen=True)
class Scenario:
    """A named, ordered composition of patches.

    ``apply`` runs the patches left to right, so later patches see the
    effects of earlier ones (e.g. ``AddRedundancy`` followed by a
    ``SetProbability`` of the freshly added unit).
    """

    name: str
    patches: Tuple[Patch, ...]
    description: str = ""

    def __init__(
        self, name: str, patches: Iterable[Patch], description: str = ""
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "patches", tuple(patches))
        object.__setattr__(self, "description", description)
        if not self.name:
            raise FaultTreeError("scenario name must be non-empty")
        if not self.patches:
            raise FaultTreeError(f"scenario {self.name!r} has no patches")

    def apply(self, tree: FaultTree) -> FaultTree:
        """Apply every patch in order and return the perturbed tree."""
        patched = tree
        for patch in self.patches:
            patched = patch.apply(patched)
        return patched

    def describe(self) -> str:
        """Human-readable summary: explicit description or the patch labels."""
        return self.description or " + ".join(p.label for p in self.patches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scenario({self.name!r}, {len(self.patches)} patch(es))"


def _named(patch: Patch, prefix: Optional[str]) -> Scenario:
    name = f"{prefix}:{patch.label}" if prefix else patch.label
    return Scenario(name, (patch,))


def probability_sweep(
    event: str,
    values: Optional[Sequence[float]] = None,
    *,
    start: Optional[float] = None,
    stop: Optional[float] = None,
    steps: int = 20,
    log_spaced: bool = True,
    prefix: Optional[str] = None,
) -> List[Scenario]:
    """One scenario per probability value of ``event``.

    Either pass explicit ``values`` or a ``start``/``stop`` range expanded
    into ``steps`` points (log-spaced by default, since probabilities span
    orders of magnitude).
    """
    if values is None:
        if start is None or stop is None:
            raise FaultTreeError("probability_sweep needs either values or start/stop")
        values = sweep_values(start, stop, steps, log_spaced=log_spaced)
    return [_named(SetProbability(event, value), prefix) for value in values]


def scale_sweep(
    event: str, factors: Sequence[float], *, prefix: Optional[str] = None
) -> List[Scenario]:
    """One scenario per multiplicative factor applied to ``event``."""
    return [_named(ScaleProbability(event, factor), prefix) for factor in factors]


def mission_time_sweep(
    factors: Sequence[float], *, prefix: Optional[str] = None
) -> List[Scenario]:
    """One scenario per mission-time stretch/compression factor."""
    return [_named(ScaleMissionTime(factor), prefix) for factor in factors]


def ccf_beta_sweep(
    group: str,
    members: Sequence[str],
    betas: Sequence[float],
    *,
    prefix: Optional[str] = None,
) -> List[Scenario]:
    """One scenario per common-cause beta factor over the same group."""
    return [_named(ApplyCCF(group, members, beta), prefix) for beta in betas]


def maintenance_sweep(
    assignment: ReliabilityAssignment,
    patches: Sequence[MaintenancePatch],
    *,
    mission_time: float,
    prefix: Optional[str] = None,
) -> List[Scenario]:
    """One scenario per maintenance patch, bound to ``assignment`` at ``mission_time``.

    The generic entry point behind :func:`repair_rate_sweep` and
    :func:`test_interval_sweep`: every patch perturbs one event's
    failure/repair model and freezes the perturbed probability at the given
    mission time.  None of these scenarios change the structure function, so
    the sweep executor reuses every cached subtree artifact — a
    maintenance-policy sweep is a pure probability re-ranking.
    """
    return [
        _named(patch.at(assignment, mission_time), prefix) for patch in patches
    ]


def repair_rate_sweep(
    assignment: ReliabilityAssignment,
    event: str,
    rates: Sequence[float],
    *,
    mission_time: float,
    prefix: Optional[str] = None,
) -> List[Scenario]:
    """One scenario per candidate repair rate ``mu`` of ``event``."""
    return maintenance_sweep(
        assignment,
        [SetRepairRate(event, rate) for rate in rates],
        mission_time=mission_time,
        prefix=prefix,
    )


def test_interval_sweep(
    assignment: ReliabilityAssignment,
    event: str,
    intervals: Sequence[float],
    *,
    mission_time: float,
    prefix: Optional[str] = None,
) -> List[Scenario]:
    """One scenario per candidate inspection interval of ``event``."""
    return maintenance_sweep(
        assignment,
        [SetTestInterval(event, interval) for interval in intervals],
        mission_time=mission_time,
        prefix=prefix,
    )


def scenario_grid(axes: Sequence[Sequence[Patch]], *, prefix: str = "") -> List[Scenario]:
    """Cartesian product of independent patch axes.

    Each axis is a sequence of alternative patches; the grid contains one
    scenario per combination picking exactly one patch from every axis,
    named by joining the chosen patch labels.  A two-axis grid of 20
    probability values x 5 mission times yields 100 scenarios.
    """
    if not axes or any(not axis for axis in axes):
        raise FaultTreeError("scenario_grid needs at least one non-empty axis")
    scenarios = []
    for combo in itertools.product(*axes):
        label = "+".join(patch.label for patch in combo)
        name = f"{prefix}:{label}" if prefix else label
        scenarios.append(Scenario(name, combo))
    return scenarios


def sweep_values(
    start: float, stop: float, steps: int, *, log_spaced: bool = True
) -> List[float]:
    """``steps`` values from ``start`` to ``stop``, log- or linearly spaced."""
    if steps < 1:
        raise FaultTreeError(f"steps must be at least 1, got {steps}")
    if steps == 1:
        return [start]
    if log_spaced:
        if start <= 0 or stop <= 0:
            raise FaultTreeError("log-spaced sweeps need positive bounds")
        low, high = math.log(start), math.log(stop)
        return [math.exp(low + (high - low) * i / (steps - 1)) for i in range(steps)]
    return [start + (stop - start) * i / (steps - 1) for i in range(steps)]
