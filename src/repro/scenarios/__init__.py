"""``repro.scenarios`` — what-if sweeps and mitigation planning.

The MPMCS tells an operator *where* the system is weakest; this package
answers the follow-up question — *what should I do about it?* — with three
layers:

* a declarative **perturbation model** (:mod:`~repro.scenarios.patches`):
  :class:`Patch` objects that set/scale/harden probabilities, remove events,
  add redundancy or spare children, change voting thresholds, and sweep
  mission time or CCF beta factors, applied non-destructively and composed
  into named :class:`Scenario` objects and parametric grids;
* a **sweep executor** (:mod:`~repro.scenarios.sweep`) that evaluates
  scenario families through the ordinary :class:`~repro.api.AnalysisSession`
  while reusing subtree-level cached artifacts, so a probability sweep pays
  for one structural cut-set enumeration instead of hundreds;
* a **mitigation planner** (:mod:`~repro.scenarios.planner`): a greedy
  cost-effectiveness baseline plus an exact MaxSAT re-encoding of budgeted
  MPMCS minimisation over the existing solver portfolio, with a
  tornado-style action ranking.

Quickstart:

.. code-block:: python

    from repro.scenarios import (
        HardeningAction, SweepExecutor, plan_mitigation, probability_sweep,
    )
    from repro.workloads.library import fire_protection_system

    tree = fire_protection_system()
    report = SweepExecutor().run(tree, probability_sweep("x1", start=1e-3, stop=0.5, steps=200))
    report.best().name            # the scenario with the lowest P(top)
    report.subtree_reuse          # {'hits': ..., 'misses': ...} — incremental proof

    plan = plan_mitigation(
        tree,
        [HardeningAction("x1", cost=2.0), HardeningAction("x5", cost=1.0)],
        budget=2.0,
        method="exact",
    )
    plan.events                   # the optimal hardening set within budget
"""

from repro.scenarios.incremental import incremental_cut_sets, seed_session_cut_sets
from repro.scenarios.patches import (
    AddRedundancy,
    AddSpareChild,
    ApplyCCF,
    Harden,
    MaintenanceAtTime,
    MaintenancePatch,
    Patch,
    RemoveEvent,
    ScaleFailureRate,
    ScaleMissionTime,
    ScaleProbability,
    ScaleRepairRate,
    ScaleTestInterval,
    SetFailureRate,
    SetMTTR,
    SetProbability,
    SetRepairRate,
    SetTestInterval,
    SetVotingThreshold,
)
from repro.scenarios.planner import (
    ActionImpact,
    FrontierPoint,
    HardeningAction,
    MitigationPlan,
    ParetoFrontier,
    exact_plan,
    greedy_plan,
    pareto_frontier,
    plan_mitigation,
    rank_actions,
)
from repro.scenarios.report import (
    ScenarioOutcome,
    ScenarioReport,
    mpmcs_identity_changed,
)
from repro.scenarios.scenario import (
    Scenario,
    ccf_beta_sweep,
    maintenance_sweep,
    mission_time_sweep,
    probability_sweep,
    repair_rate_sweep,
    scale_sweep,
    scenario_grid,
    sweep_values,
    test_interval_sweep,
)
from repro.scenarios.serialization import (
    action_from_dict,
    action_to_dict,
    actions_from_spec,
    assignment_from_documents,
    campaign_from_dict,
    campaign_to_dict,
    model_from_dict,
    model_to_dict,
    patch_from_dict,
    patch_to_dict,
    scenario_from_dict,
    scenario_to_dict,
    scenarios_from_spec,
)
from repro.scenarios.sweep import SweepExecutor, run_sweep

__all__ = [
    "ActionImpact",
    "AddRedundancy",
    "AddSpareChild",
    "ApplyCCF",
    "FrontierPoint",
    "Harden",
    "HardeningAction",
    "MaintenanceAtTime",
    "MaintenancePatch",
    "MitigationPlan",
    "ParetoFrontier",
    "Patch",
    "RemoveEvent",
    "ScaleFailureRate",
    "ScaleMissionTime",
    "ScaleProbability",
    "ScaleRepairRate",
    "ScaleTestInterval",
    "Scenario",
    "ScenarioOutcome",
    "ScenarioReport",
    "SetFailureRate",
    "SetMTTR",
    "SetProbability",
    "SetRepairRate",
    "SetTestInterval",
    "SetVotingThreshold",
    "SweepExecutor",
    "action_from_dict",
    "action_to_dict",
    "actions_from_spec",
    "assignment_from_documents",
    "campaign_from_dict",
    "campaign_to_dict",
    "ccf_beta_sweep",
    "exact_plan",
    "greedy_plan",
    "incremental_cut_sets",
    "maintenance_sweep",
    "mission_time_sweep",
    "model_from_dict",
    "model_to_dict",
    "mpmcs_identity_changed",
    "pareto_frontier",
    "patch_from_dict",
    "patch_to_dict",
    "plan_mitigation",
    "probability_sweep",
    "rank_actions",
    "repair_rate_sweep",
    "run_sweep",
    "scale_sweep",
    "scenario_from_dict",
    "scenario_grid",
    "scenario_to_dict",
    "scenarios_from_spec",
    "seed_session_cut_sets",
    "sweep_values",
    "test_interval_sweep",
]
