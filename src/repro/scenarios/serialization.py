"""JSON round-trip for patches and scenarios — the sweep wire format.

The analysis service transports whole scenario sweeps as JSON: the client
submits a tree document plus either an explicit scenario list or a compact
parametric *spec*, and the worker reconstructs live
:class:`~repro.scenarios.patches.Patch` /
:class:`~repro.scenarios.scenario.Scenario` objects on the other side.

Patch documents are tagged dicts, e.g.::

    {"type": "set_probability", "event": "x1", "probability": 0.01}
    {"type": "add_redundancy", "event": "pump", "copies": 2}

and specs name the parametric families of :mod:`repro.scenarios.scenario`::

    {"family": "probability_sweep", "event": "x1",
     "start": 1e-4, "stop": 0.5, "steps": 50}
    {"family": "mission_time_sweep", "factors": [0.5, 1, 2, 4]}

``patch_from_dict(patch_to_dict(p))`` reconstructs an equal patch for every
built-in patch type (they are frozen dataclasses, so equality is field-wise).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple, Type

from repro.exceptions import ReproError
from repro.scenarios.patches import (
    AddRedundancy,
    AddSpareChild,
    ApplyCCF,
    Harden,
    Patch,
    RemoveEvent,
    ScaleMissionTime,
    ScaleProbability,
    SetProbability,
    SetVotingThreshold,
)
from repro.scenarios.scenario import (
    Scenario,
    ccf_beta_sweep,
    mission_time_sweep,
    probability_sweep,
    scale_sweep,
    sweep_values,
)

__all__ = [
    "patch_from_dict",
    "patch_to_dict",
    "scenario_from_dict",
    "scenario_to_dict",
    "scenarios_from_spec",
]


class SerializationError(ReproError):
    """Malformed patch/scenario/spec document."""


#: Tag <-> class table; the tag is the snake_case of the class name.
_PATCH_TYPES: Dict[str, Type[Patch]] = {
    "set_probability": SetProbability,
    "scale_probability": ScaleProbability,
    "harden": Harden,
    "scale_mission_time": ScaleMissionTime,
    "remove_event": RemoveEvent,
    "add_redundancy": AddRedundancy,
    "add_spare_child": AddSpareChild,
    "set_voting_threshold": SetVotingThreshold,
    "apply_ccf": ApplyCCF,
}

#: Constructor fields per tag: (field, required).  Everything is a plain
#: JSON scalar except ``apply_ccf.members`` (a list of event names).
_PATCH_FIELDS: Dict[str, Tuple[Tuple[str, bool], ...]] = {
    "set_probability": (("event", True), ("probability", True)),
    "scale_probability": (("event", True), ("factor", True)),
    "harden": (("event", True), ("factor", False), ("probability", False)),
    "scale_mission_time": (("factor", True),),
    "remove_event": (("event", True),),
    "add_redundancy": (("event", True), ("copies", False), ("probability", False)),
    "add_spare_child": (("gate", True), ("probability", True), ("name", False)),
    "set_voting_threshold": (("gate", True), ("k", True)),
    "apply_ccf": (("group", True), ("members", True), ("beta", True)),
}

_TYPE_TAGS: Dict[Type[Patch], str] = {cls: tag for tag, cls in _PATCH_TYPES.items()}


def patch_to_dict(patch: Patch) -> Dict[str, Any]:
    """Tagged JSON document for one built-in patch."""
    tag = _TYPE_TAGS.get(type(patch))
    if tag is None:
        raise SerializationError(
            f"patch type {type(patch).__name__!r} has no JSON form; "
            "only the built-in patches serialise"
        )
    document: Dict[str, Any] = {"type": tag}
    for field, _ in _PATCH_FIELDS[tag]:
        value = getattr(patch, field)
        if value is None:
            continue
        document[field] = list(value) if field == "members" else value
    return document


def patch_from_dict(document: Mapping[str, Any]) -> Patch:
    """Reconstruct a patch from its tagged JSON document."""
    if not isinstance(document, Mapping) or "type" not in document:
        raise SerializationError(f"patch document needs a 'type' tag, got {document!r}")
    tag = document["type"]
    cls = _PATCH_TYPES.get(tag)
    if cls is None:
        raise SerializationError(
            f"unknown patch type {tag!r}; expected one of {', '.join(sorted(_PATCH_TYPES))}"
        )
    kwargs: Dict[str, Any] = {}
    for field, required in _PATCH_FIELDS[tag]:
        if field in document:
            kwargs[field] = document[field]
        elif required:
            raise SerializationError(f"patch {tag!r} is missing the required field {field!r}")
    unknown = set(document) - {"type"} - {field for field, _ in _PATCH_FIELDS[tag]}
    if unknown:
        raise SerializationError(
            f"patch {tag!r} has unknown fields: {', '.join(sorted(unknown))}"
        )
    return cls(**kwargs)


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """JSON document for one named scenario."""
    document: Dict[str, Any] = {
        "name": scenario.name,
        "patches": [patch_to_dict(patch) for patch in scenario.patches],
    }
    if scenario.description:
        document["description"] = scenario.description
    return document


def scenario_from_dict(document: Mapping[str, Any]) -> Scenario:
    """Reconstruct a named scenario from its JSON document."""
    if not isinstance(document, Mapping):
        raise SerializationError(f"scenario document must be an object, got {document!r}")
    try:
        name = document["name"]
        patches = document["patches"]
    except KeyError as exc:
        raise SerializationError(f"scenario document is missing {exc}") from exc
    if not isinstance(patches, Sequence) or isinstance(patches, (str, bytes)):
        raise SerializationError("scenario 'patches' must be a list of patch documents")
    return Scenario(
        name,
        [patch_from_dict(patch) for patch in patches],
        description=document.get("description", ""),
    )


def _spec_values(spec: Mapping[str, Any], *, field: str = "values") -> List[float]:
    """Explicit ``values`` or a ``start``/``stop``/``steps`` range."""
    if field in spec:
        return [float(value) for value in spec[field]]
    if "start" in spec and "stop" in spec:
        return sweep_values(
            float(spec["start"]),
            float(spec["stop"]),
            int(spec.get("steps", 20)),
            log_spaced=bool(spec.get("log_spaced", True)),
        )
    raise SerializationError(
        f"sweep spec needs either {field!r} or 'start'+'stop' bounds: {dict(spec)!r}"
    )


def scenarios_from_spec(spec: "Mapping[str, Any] | Sequence[Any]") -> List[Scenario]:
    """Expand a JSON sweep description into a scenario list.

    Accepts either an explicit list of scenario documents
    (:func:`scenario_from_dict` applied element-wise) or a parametric family
    spec carrying a ``family`` tag: ``probability_sweep`` (``event`` +
    values/range), ``scale_sweep`` (``event`` + ``factors``),
    ``mission_time_sweep`` (``factors``), ``ccf_beta_sweep`` (``group``,
    ``members``, ``betas``).
    """
    if isinstance(spec, Sequence) and not isinstance(spec, (str, bytes)):
        return [scenario_from_dict(document) for document in spec]
    if not isinstance(spec, Mapping):
        raise SerializationError(f"sweep spec must be an object or a list, got {spec!r}")
    family = spec.get("family")
    prefix = spec.get("prefix")
    if family == "probability_sweep":
        return probability_sweep(spec["event"], _spec_values(spec), prefix=prefix)
    if family == "scale_sweep":
        return scale_sweep(
            spec["event"], [float(f) for f in spec["factors"]], prefix=prefix
        )
    if family == "mission_time_sweep":
        return mission_time_sweep([float(f) for f in spec["factors"]], prefix=prefix)
    if family == "ccf_beta_sweep":
        return ccf_beta_sweep(
            spec["group"],
            list(spec["members"]),
            [float(b) for b in spec["betas"]],
            prefix=prefix,
        )
    raise SerializationError(
        f"unknown sweep family {family!r}; expected probability_sweep, scale_sweep, "
        "mission_time_sweep or ccf_beta_sweep"
    )
