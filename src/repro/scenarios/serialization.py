"""JSON round-trip for patches and scenarios — the sweep wire format.

The analysis service transports whole scenario sweeps as JSON: the client
submits a tree document plus either an explicit scenario list or a compact
parametric *spec*, and the worker reconstructs live
:class:`~repro.scenarios.patches.Patch` /
:class:`~repro.scenarios.scenario.Scenario` objects on the other side.

Patch documents are tagged dicts, e.g.::

    {"type": "set_probability", "event": "x1", "probability": 0.01}
    {"type": "add_redundancy", "event": "pump", "copies": 2}

and specs name the parametric families of :mod:`repro.scenarios.scenario`::

    {"family": "probability_sweep", "event": "x1",
     "start": 1e-4, "stop": 0.5, "steps": 50}
    {"family": "mission_time_sweep", "factors": [0.5, 1, 2, 4]}

``patch_from_dict(patch_to_dict(p))`` reconstructs an equal patch for every
built-in patch type (they are frozen dataclasses, so equality is field-wise).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.exceptions import ReproError
from repro.fta.tree import FaultTree
from repro.monitoring.alerts import (
    Alert,
    AlertRule,
    rule_from_dict as _rule_from_dict,
    rule_to_dict as _rule_to_dict,
    rules_from_spec as _rules_from_spec,
)
from repro.monitoring.feeds import ProbabilityUpdate
from repro.reliability.assignment import ReliabilityAssignment
from repro.reliability.models import (
    ExponentialFailure,
    FailureModel,
    FixedProbability,
    PeriodicallyTestedComponent,
    RepairableComponent,
    WeibullFailure,
)
from repro.scenarios.patches import (
    AddRedundancy,
    AddSpareChild,
    ApplyCCF,
    Harden,
    MaintenancePatch,
    Patch,
    RemoveEvent,
    ScaleFailureRate,
    ScaleMissionTime,
    ScaleProbability,
    ScaleRepairRate,
    ScaleTestInterval,
    SetFailureRate,
    SetMTTR,
    SetProbability,
    SetRepairRate,
    SetTestInterval,
    SetVotingThreshold,
)
from repro.scenarios.planner import HardeningAction
from repro.scenarios.scenario import (
    Scenario,
    ccf_beta_sweep,
    mission_time_sweep,
    probability_sweep,
    repair_rate_sweep,
    scale_sweep,
    sweep_values,
    test_interval_sweep,
)

__all__ = [
    "actions_from_spec",
    "action_from_dict",
    "action_to_dict",
    "alert_to_dict",
    "assignment_from_documents",
    "campaign_from_dict",
    "campaign_to_dict",
    "model_from_dict",
    "model_to_dict",
    "monitor_rule_from_dict",
    "monitor_rule_to_dict",
    "monitor_rules_from_spec",
    "patch_from_dict",
    "patch_to_dict",
    "scenario_from_dict",
    "scenario_to_dict",
    "scenarios_from_spec",
    "update_from_dict",
    "update_to_dict",
]


class SerializationError(ReproError):
    """Malformed patch/scenario/spec document."""


#: Tag <-> class table; the tag is the snake_case of the class name.
_PATCH_TYPES: Dict[str, Type[Patch]] = {
    "set_probability": SetProbability,
    "scale_probability": ScaleProbability,
    "harden": Harden,
    "scale_mission_time": ScaleMissionTime,
    "remove_event": RemoveEvent,
    "add_redundancy": AddRedundancy,
    "add_spare_child": AddSpareChild,
    "set_voting_threshold": SetVotingThreshold,
    "apply_ccf": ApplyCCF,
    "set_failure_rate": SetFailureRate,
    "scale_failure_rate": ScaleFailureRate,
    "set_repair_rate": SetRepairRate,
    "scale_repair_rate": ScaleRepairRate,
    "set_mttr": SetMTTR,
    "set_test_interval": SetTestInterval,
    "scale_test_interval": ScaleTestInterval,
}

#: Constructor fields per tag: (field, required).  Everything is a plain
#: JSON scalar except ``apply_ccf.members`` (a list of event names).
_PATCH_FIELDS: Dict[str, Tuple[Tuple[str, bool], ...]] = {
    "set_probability": (("event", True), ("probability", True)),
    "scale_probability": (("event", True), ("factor", True)),
    "harden": (("event", True), ("factor", False), ("probability", False)),
    "scale_mission_time": (("factor", True),),
    "remove_event": (("event", True),),
    "add_redundancy": (("event", True), ("copies", False), ("probability", False)),
    "add_spare_child": (("gate", True), ("probability", True), ("name", False)),
    "set_voting_threshold": (("gate", True), ("k", True)),
    "apply_ccf": (("group", True), ("members", True), ("beta", True)),
    "set_failure_rate": (("event", True), ("failure_rate", True)),
    "scale_failure_rate": (("event", True), ("factor", True)),
    "set_repair_rate": (("event", True), ("repair_rate", True)),
    "scale_repair_rate": (("event", True), ("factor", True)),
    "set_mttr": (("event", True), ("mttr", True)),
    "set_test_interval": (("event", True), ("test_interval", True)),
    "scale_test_interval": (("event", True), ("factor", True)),
}

_TYPE_TAGS: Dict[Type[Patch], str] = {cls: tag for tag, cls in _PATCH_TYPES.items()}


def patch_to_dict(patch: Patch) -> Dict[str, Any]:
    """Tagged JSON document for one built-in patch."""
    tag = _TYPE_TAGS.get(type(patch))
    if tag is None:
        raise SerializationError(
            f"patch type {type(patch).__name__!r} has no JSON form; "
            "only the built-in patches serialise"
        )
    document: Dict[str, Any] = {"type": tag}
    for field, _ in _PATCH_FIELDS[tag]:
        value = getattr(patch, field)
        if value is None:
            continue
        document[field] = list(value) if field == "members" else value
    return document


def patch_from_dict(document: Mapping[str, Any]) -> Patch:
    """Reconstruct a patch from its tagged JSON document."""
    if not isinstance(document, Mapping) or "type" not in document:
        raise SerializationError(f"patch document needs a 'type' tag, got {document!r}")
    tag = document["type"]
    cls = _PATCH_TYPES.get(tag)
    if cls is None:
        raise SerializationError(
            f"unknown patch type {tag!r}; expected one of {', '.join(sorted(_PATCH_TYPES))}"
        )
    kwargs: Dict[str, Any] = {}
    for field, required in _PATCH_FIELDS[tag]:
        if field in document:
            kwargs[field] = document[field]
        elif required:
            raise SerializationError(f"patch {tag!r} is missing the required field {field!r}")
    unknown = set(document) - {"type"} - {field for field, _ in _PATCH_FIELDS[tag]}
    if unknown:
        raise SerializationError(
            f"patch {tag!r} has unknown fields: {', '.join(sorted(unknown))}"
        )
    try:
        return cls(**kwargs)
    except ReproError:
        raise  # the patch's own __post_init__ validation: already descriptive
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"patch {tag!r} has malformed fields: {exc}") from exc


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """JSON document for one named scenario."""
    document: Dict[str, Any] = {
        "name": scenario.name,
        "patches": [patch_to_dict(patch) for patch in scenario.patches],
    }
    if scenario.description:
        document["description"] = scenario.description
    return document


def _bind_maintenance(
    patch: Patch,
    assignment: Optional[ReliabilityAssignment],
    mission_time: Optional[float],
    *,
    context: str,
) -> Patch:
    """Bind a raw maintenance patch to the payload's assignment, or reject it."""
    if not isinstance(patch, MaintenancePatch):
        return patch
    if assignment is None:
        raise SerializationError(
            f"{context} contains maintenance patch {patch.label!r}, which needs "
            "reliability models; provide a 'models' section in the payload"
        )
    if mission_time is None:
        raise SerializationError(
            f"{context} contains maintenance patch {patch.label!r}, which needs a "
            "numeric 'mission_time' in the payload"
        )
    return patch.at(assignment, mission_time)


def scenario_from_dict(
    document: Mapping[str, Any],
    *,
    assignment: Optional[ReliabilityAssignment] = None,
    mission_time: Optional[float] = None,
) -> Scenario:
    """Reconstruct a named scenario from its JSON document.

    Maintenance patches (``set_repair_rate`` and friends) perturb reliability
    models, so they only deserialise when the surrounding payload supplies an
    ``assignment`` (built from its ``models`` section) and a ``mission_time``
    to bind them with; otherwise the document is rejected outright — at
    submission time, not mid-job.
    """
    if not isinstance(document, Mapping):
        raise SerializationError(f"scenario document must be an object, got {document!r}")
    try:
        name = document["name"]
        patches = document["patches"]
    except KeyError as exc:
        raise SerializationError(f"scenario document is missing {exc}") from exc
    if not isinstance(patches, Sequence) or isinstance(patches, (str, bytes)):
        raise SerializationError("scenario 'patches' must be a list of patch documents")
    return Scenario(
        name,
        [
            _bind_maintenance(
                patch_from_dict(patch),
                assignment,
                mission_time,
                context=f"scenario {name!r}",
            )
            for patch in patches
        ],
        description=document.get("description", ""),
    )


def _spec_values(spec: Mapping[str, Any], *, field: str = "values") -> List[float]:
    """Explicit ``values`` or a ``start``/``stop``/``steps`` range."""
    if field in spec:
        return [float(value) for value in spec[field]]
    if "start" in spec and "stop" in spec:
        return sweep_values(
            float(spec["start"]),
            float(spec["stop"]),
            int(spec.get("steps", 20)),
            log_spaced=bool(spec.get("log_spaced", True)),
        )
    raise SerializationError(
        f"sweep spec needs either {field!r} or 'start'+'stop' bounds: {dict(spec)!r}"
    )


def _maintenance_context(
    family: str,
    assignment: Optional[ReliabilityAssignment],
    mission_time: Optional[float],
    spec: Mapping[str, Any],
) -> Tuple[ReliabilityAssignment, float]:
    """Resolve the assignment + mission time a maintenance family needs."""
    if assignment is None:
        raise SerializationError(
            f"sweep family {family!r} perturbs reliability models; provide a "
            "'models' section in the payload"
        )
    resolved = spec.get("mission_time", mission_time)
    if resolved is None:
        raise SerializationError(
            f"sweep family {family!r} needs a numeric 'mission_time' (in the spec "
            "or the payload)"
        )
    if not isinstance(resolved, (int, float)) or isinstance(resolved, bool):
        raise SerializationError(
            f"sweep family {family!r}: 'mission_time' must be a number, got {resolved!r}"
        )
    if mission_time is not None and float(resolved) != float(mission_time):
        # The base tree was already frozen at the payload's mission time; a
        # different spec-level time would silently conflate the maintenance
        # change with an unrequested mission-time change in every delta.
        raise SerializationError(
            f"sweep family {family!r}: spec mission_time {resolved!r} conflicts "
            f"with the payload's mission_time {mission_time!r} the base tree is "
            "frozen at"
        )
    return assignment, float(resolved)


def scenarios_from_spec(
    spec: "Mapping[str, Any] | Sequence[Any]",
    *,
    assignment: Optional[ReliabilityAssignment] = None,
    mission_time: Optional[float] = None,
) -> List[Scenario]:
    """Expand a JSON sweep description into a scenario list.

    Accepts either an explicit list of scenario documents
    (:func:`scenario_from_dict` applied element-wise) or a parametric family
    spec carrying a ``family`` tag: ``probability_sweep`` (``event`` +
    values/range), ``scale_sweep`` (``event`` + ``factors``),
    ``mission_time_sweep`` (``factors``), ``ccf_beta_sweep`` (``group``,
    ``members``, ``betas``), and — given an ``assignment`` built from the
    payload's ``models`` section plus a ``mission_time`` —
    ``repair_rate_sweep`` (``event`` + ``rates``/range) and
    ``test_interval_sweep`` (``event`` + ``intervals``/range).
    """
    if isinstance(spec, Sequence) and not isinstance(spec, (str, bytes)):
        return [
            scenario_from_dict(
                document, assignment=assignment, mission_time=mission_time
            )
            for document in spec
        ]
    if not isinstance(spec, Mapping):
        raise SerializationError(f"sweep spec must be an object or a list, got {spec!r}")
    try:
        return _scenarios_from_family_spec(
            spec, assignment=assignment, mission_time=mission_time
        )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        # Missing fields and uncoercible values must surface as the wire
        # format's own error (an HTTP 400 at submit time), never as a bare
        # KeyError/ValueError crashing the request handler.
        raise SerializationError(f"malformed sweep spec {dict(spec)!r}: {exc!r}") from exc


def _scenarios_from_family_spec(
    spec: Mapping[str, Any],
    *,
    assignment: Optional[ReliabilityAssignment],
    mission_time: Optional[float],
) -> List[Scenario]:
    family = spec.get("family")
    prefix = spec.get("prefix")
    if family == "probability_sweep":
        return probability_sweep(spec["event"], _spec_values(spec), prefix=prefix)
    if family == "scale_sweep":
        return scale_sweep(
            spec["event"], [float(f) for f in spec["factors"]], prefix=prefix
        )
    if family == "mission_time_sweep":
        return mission_time_sweep([float(f) for f in spec["factors"]], prefix=prefix)
    if family == "ccf_beta_sweep":
        return ccf_beta_sweep(
            spec["group"],
            list(spec["members"]),
            [float(b) for b in spec["betas"]],
            prefix=prefix,
        )
    if family == "repair_rate_sweep":
        bound, time = _maintenance_context(family, assignment, mission_time, spec)
        return repair_rate_sweep(
            bound,
            spec["event"],
            _spec_values(spec, field="rates"),
            mission_time=time,
            prefix=prefix,
        )
    if family == "test_interval_sweep":
        bound, time = _maintenance_context(family, assignment, mission_time, spec)
        return test_interval_sweep(
            bound,
            spec["event"],
            _spec_values(spec, field="intervals"),
            mission_time=time,
            prefix=prefix,
        )
    raise SerializationError(
        f"unknown sweep family {family!r}; expected probability_sweep, scale_sweep, "
        "mission_time_sweep, ccf_beta_sweep, repair_rate_sweep or test_interval_sweep"
    )


# -- failure-model documents (the sweep payload's 'models' section) ----------------------

#: Tag <-> class table for reliability models; tags mirror the patch tags.
_MODEL_TYPES: Dict[str, Type[FailureModel]] = {
    "fixed": FixedProbability,
    "exponential": ExponentialFailure,
    "weibull": WeibullFailure,
    "repairable": RepairableComponent,
    "periodically_tested": PeriodicallyTestedComponent,
}

_MODEL_FIELDS: Dict[str, Tuple[str, ...]] = {
    "fixed": ("probability",),
    "exponential": ("failure_rate",),
    "weibull": ("shape", "scale"),
    "repairable": ("failure_rate", "repair_rate"),
    "periodically_tested": ("failure_rate", "test_interval"),
}

_MODEL_TAGS: Dict[Type[FailureModel], str] = {
    cls: tag for tag, cls in _MODEL_TYPES.items()
}


def model_to_dict(model: FailureModel) -> Dict[str, Any]:
    """Tagged JSON document for one built-in failure model."""
    tag = _MODEL_TAGS.get(type(model))
    if tag is None:
        raise SerializationError(
            f"failure model {type(model).__name__!r} has no JSON form; "
            "only the built-in models serialise"
        )
    document: Dict[str, Any] = {"type": tag}
    for field in _MODEL_FIELDS[tag]:
        document[field] = getattr(model, field)
    return document


def model_from_dict(document: Mapping[str, Any]) -> FailureModel:
    """Reconstruct a failure model from its tagged JSON document."""
    if not isinstance(document, Mapping) or "type" not in document:
        raise SerializationError(f"model document needs a 'type' tag, got {document!r}")
    tag = document["type"]
    cls = _MODEL_TYPES.get(tag)
    if cls is None:
        raise SerializationError(
            f"unknown model type {tag!r}; expected one of {', '.join(sorted(_MODEL_TYPES))}"
        )
    fields = _MODEL_FIELDS[tag]
    missing = [field for field in fields if field not in document]
    if missing:
        raise SerializationError(
            f"model {tag!r} is missing the required field(s) {', '.join(missing)}"
        )
    unknown = set(document) - {"type"} - set(fields)
    if unknown:
        raise SerializationError(
            f"model {tag!r} has unknown fields: {', '.join(sorted(unknown))}"
        )
    return cls(**{field: document[field] for field in fields})


def assignment_from_documents(
    tree: FaultTree, models: Mapping[str, Mapping[str, Any]]
) -> ReliabilityAssignment:
    """Build a :class:`ReliabilityAssignment` from a tree and model documents.

    ``models`` maps basic-event names to tagged model documents; events not
    listed keep their static probability from the tree.  Unknown events and
    malformed documents raise (the service maps this to HTTP 400).
    """
    if not isinstance(models, Mapping):
        raise SerializationError(
            f"'models' must map event names to model documents, got {models!r}"
        )
    return ReliabilityAssignment(
        tree, {name: model_from_dict(document) for name, document in models.items()}
    )


# -- hardening-action documents (the frontier/plan payloads) -----------------------------

_ACTION_FIELDS: Tuple[Tuple[str, bool], ...] = (
    ("event", True),
    ("cost", True),
    ("factor", False),
    ("probability", False),
)


def action_to_dict(action: HardeningAction) -> Dict[str, Any]:
    """JSON document for one hardening action."""
    document: Dict[str, Any] = {}
    for field, _ in _ACTION_FIELDS:
        value = getattr(action, field)
        if value is not None:
            document[field] = value
    return document


def action_from_dict(document: Mapping[str, Any]) -> HardeningAction:
    """Reconstruct a hardening action from its JSON document."""
    if not isinstance(document, Mapping):
        raise SerializationError(f"action document must be an object, got {document!r}")
    kwargs: Dict[str, Any] = {}
    for field, required in _ACTION_FIELDS:
        if field in document:
            kwargs[field] = document[field]
        elif required:
            raise SerializationError(
                f"action document is missing the required field {field!r}"
            )
    unknown = set(document) - {field for field, _ in _ACTION_FIELDS}
    if unknown:
        raise SerializationError(
            f"action document has unknown fields: {', '.join(sorted(unknown))}"
        )
    action = HardeningAction(**kwargs)
    # Constructing the patch eagerly validates the effect parameters (factor
    # in (0, 1], probability in [0, 1]) at deserialisation time.
    action.as_patch()
    return action


def actions_from_spec(spec: Sequence[Any]) -> List[HardeningAction]:
    """Deserialise the ``actions`` list of a frontier/plan payload."""
    if not isinstance(spec, Sequence) or isinstance(spec, (str, bytes)):
        raise SerializationError(
            f"'actions' must be a list of action documents, got {spec!r}"
        )
    if not spec:
        raise SerializationError("'actions' must list at least one hardening action")
    return [action_from_dict(document) for document in spec]


# -- campaign documents (the resumable-sweep wire format) --------------------------------


def campaign_to_dict(spec: Any) -> Dict[str, Any]:
    """Canonical JSON document for a :class:`~repro.campaigns.spec.CampaignSpec`.

    The campaigns package imports this module (scenario/action documents are
    the vocabulary of its stage payloads), so the dependency here is lazy —
    this wrapper simply re-exposes the campaign wire format next to the other
    scenario-layer document converters.
    """
    from repro.campaigns.spec import CampaignSpec

    if not isinstance(spec, CampaignSpec):
        raise SerializationError(f"expected a CampaignSpec, got {type(spec).__name__!r}")
    return spec.to_dict()


def campaign_from_dict(document: Mapping[str, Any]) -> Any:
    """Reconstruct a :class:`~repro.campaigns.spec.CampaignSpec` from its document.

    Malformed documents surface as :class:`SerializationError`, matching the
    rest of the wire format (an HTTP 400 at submit time).
    """
    from repro.campaigns.spec import CampaignError, CampaignSpec

    try:
        return CampaignSpec.from_dict(document)
    except CampaignError as exc:
        raise SerializationError(str(exc)) from exc


# -- monitoring documents (the live-monitor wire format) ---------------------------------


def update_to_dict(update: ProbabilityUpdate) -> Dict[str, Any]:
    """JSON document of one probability update (feed lines, POST bodies)."""
    return update.to_dict()


def update_from_dict(document: Mapping[str, Any]) -> ProbabilityUpdate:
    """Reconstruct a :class:`ProbabilityUpdate`; malformed documents are 400s.

    The monitoring layer raises its own :class:`~repro.monitoring.feeds.FeedError`;
    it is re-raised as :class:`SerializationError` so service handlers treat
    a bad update body exactly like a bad patch document.
    """
    from repro.monitoring.feeds import FeedError

    try:
        return ProbabilityUpdate.from_dict(document)
    except FeedError as exc:
        raise SerializationError(str(exc)) from exc


def alert_to_dict(alert: Alert) -> Dict[str, Any]:
    """JSON document of one raised alert (ledger entries, SSE frames)."""
    return alert.to_dict()


def monitor_rule_to_dict(rule: AlertRule) -> Dict[str, Any]:
    """Tagged JSON document of one alert rule."""
    return _rule_to_dict(rule)


def monitor_rule_from_dict(document: Mapping[str, Any]) -> AlertRule:
    """Reconstruct an alert rule from its tagged document."""
    from repro.monitoring.alerts import RuleError

    try:
        return _rule_from_dict(document)
    except RuleError as exc:
        raise SerializationError(str(exc)) from exc


def monitor_rules_from_spec(spec: Optional[Sequence[Any]]) -> List[AlertRule]:
    """Decode the ``rules`` list of a ``POST /monitor`` payload."""
    from repro.monitoring.alerts import RuleError

    try:
        return _rules_from_spec(spec)
    except RuleError as exc:
        raise SerializationError(str(exc)) from exc
