"""Declarative, non-destructive fault-tree perturbations.

A :class:`Patch` describes *one* change to a fault tree — harden a component,
add a redundant unit, remove an attack vector, stretch the mission time —
without mutating the base model: :meth:`Patch.apply` always returns a new
:class:`~repro.fta.tree.FaultTree`.  Patches compose into named
:class:`~repro.scenarios.scenario.Scenario` objects and parametric sweeps,
which the :class:`~repro.scenarios.sweep.SweepExecutor` evaluates in bulk.

Three families of patches exist:

* **probability patches** (:class:`SetProbability`, :class:`ScaleProbability`,
  :class:`Harden`, :class:`ScaleMissionTime`) keep the structure function
  untouched, so the incremental sweep path reuses *every* cached subtree
  artifact;
* **structural patches** (:class:`RemoveEvent`, :class:`AddRedundancy`,
  :class:`AddSpareChild`, :class:`SetVotingThreshold`, :class:`ApplyCCF`)
  rewrite part of the DAG; only the subtrees on the path from the edit to the
  top event lose their cache entries;
* **maintenance patches** (:class:`SetFailureRate`, :class:`ScaleFailureRate`,
  :class:`SetRepairRate`, :class:`ScaleRepairRate`, :class:`SetMTTR`,
  :class:`SetTestInterval`, :class:`ScaleTestInterval`) perturb the
  *failure/repair model* of one event in a
  :class:`~repro.reliability.assignment.ReliabilityAssignment` — a different
  repair rate, a different inspection policy — and materialise through
  :meth:`MaintenancePatch.at`, which freezes the perturbed model at a mission
  time.  Like the probability family they never touch the structure function,
  so maintenance-policy sweeps are pure probability re-rankings over the
  incremental cache.

Every patch validates its parameters at construction time (dataclass
``__post_init__``), so a malformed patch — a non-positive scale factor, a
probability outside ``(0, 1]`` — fails the moment it is built.  The service
front end relies on this: deserialising a bad patch document raises before the
job is enqueued, turning garbage submissions into immediate HTTP 400s instead
of mid-job failures.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.exceptions import FaultTreeError
from repro.fta.ccf import CCFGroup, apply_beta_factor_model
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree
from repro.reliability.assignment import ReliabilityAssignment, clamp_probability
from repro.reliability.models import (
    ExponentialFailure,
    FailureModel,
    PeriodicallyTestedComponent,
    RepairableComponent,
)

__all__ = [
    "AddRedundancy",
    "AddSpareChild",
    "ApplyCCF",
    "Harden",
    "MaintenanceAtTime",
    "MaintenancePatch",
    "Patch",
    "RemoveEvent",
    "ScaleFailureRate",
    "ScaleMissionTime",
    "ScaleProbability",
    "ScaleRepairRate",
    "ScaleTestInterval",
    "SetFailureRate",
    "SetMTTR",
    "SetProbability",
    "SetRepairRate",
    "SetTestInterval",
    "SetVotingThreshold",
]

#: Default hardening factor applied by :class:`Harden` when neither a factor
#: nor a target probability is given (one order of magnitude improvement).
DEFAULT_HARDENING_FACTOR = 0.1


def _clamp_probability(value: float) -> float:
    """Clamp a perturbed probability into the library's (0, 1] domain."""
    return min(max(value, 1e-300), 1.0)


# -- construction-time parameter validation ----------------------------------------------


def _check_name(value: object, what: str) -> None:
    if not isinstance(value, str) or not value:
        raise FaultTreeError(f"{what} must be a non-empty string, got {value!r}")


def _check_number(value: object, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultTreeError(f"{what} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise FaultTreeError(f"{what} must be finite, got {value}")
    return float(value)


def _check_positive(value: object, what: str) -> float:
    number = _check_number(value, what)
    if number <= 0.0:
        raise FaultTreeError(f"{what} must be positive, got {value}")
    return number


def _check_unit_probability(value: object, what: str) -> float:
    number = _check_number(value, what)
    if not 0.0 < number <= 1.0:
        raise FaultTreeError(f"{what} must lie in (0, 1], got {value}")
    return number


def _check_count(value: object, what: str, *, minimum: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise FaultTreeError(f"{what} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise FaultTreeError(f"{what} must be at least {minimum}, got {value}")


class Patch(abc.ABC):
    """One non-destructive perturbation of a fault tree."""

    @abc.abstractmethod
    def apply(self, tree: FaultTree) -> FaultTree:
        """Return a *new* tree with this patch applied; ``tree`` is unchanged."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short identifier used to name scenarios built from this patch."""

    def describe(self) -> str:
        """Human-readable one-line description (defaults to :attr:`label`)."""
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label})"


def _require_event(tree: FaultTree, event: str) -> None:
    if not tree.is_event(event):
        raise FaultTreeError(
            f"patch references unknown basic event {event!r} in tree {tree.name!r}"
        )


@dataclass(frozen=True)
class SetProbability(Patch):
    """Replace the probability of one basic event."""

    event: str
    probability: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_unit_probability(self.probability, "probability")

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        patched = tree.copy()
        patched.set_probability(self.event, self.probability)
        return patched

    @property
    def label(self) -> str:
        return f"{self.event}={self.probability:g}"


@dataclass(frozen=True)
class ScaleProbability(Patch):
    """Multiply the probability of one basic event by a positive factor."""

    event: str
    factor: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.factor, "scale factor")

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        patched = tree.copy()
        patched.set_probability(
            self.event, _clamp_probability(tree.probability(self.event) * self.factor)
        )
        return patched

    @property
    def label(self) -> str:
        return f"{self.event}*{self.factor:g}"


@dataclass(frozen=True)
class Harden(Patch):
    """Harden a component: reduce its failure probability.

    Either an explicit target ``probability`` or a multiplicative ``factor``
    (default :data:`DEFAULT_HARDENING_FACTOR`).  Hardening may only lower the
    probability — raising it is rejected so that mitigation plans stay
    monotone.
    """

    event: str
    factor: Optional[float] = None
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        if self.factor is not None:
            factor = _check_number(self.factor, "hardening factor")
            if not 0.0 < factor <= 1.0:
                raise FaultTreeError(
                    f"hardening factor must lie in (0, 1], got {self.factor}"
                )
        if self.probability is not None:
            number = _check_number(self.probability, "hardening target probability")
            if not 0.0 <= number <= 1.0:
                raise FaultTreeError(
                    f"hardening target probability must lie in [0, 1], got {self.probability}"
                )

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        base = tree.probability(self.event)
        target = self.hardened_probability(base)
        if target > base:
            raise FaultTreeError(
                f"hardening {self.event!r} cannot raise its probability "
                f"({base:g} -> {target:g})"
            )
        patched = tree.copy()
        patched.set_probability(self.event, target)
        return patched

    def hardened_probability(self, base: float) -> float:
        """The probability ``base`` becomes under this hardening action."""
        if self.probability is not None:
            return _clamp_probability(self.probability)
        factor = self.factor if self.factor is not None else DEFAULT_HARDENING_FACTOR
        if not 0 < factor <= 1:
            raise FaultTreeError(f"hardening factor must lie in (0, 1], got {factor}")
        return _clamp_probability(base * factor)

    @property
    def label(self) -> str:
        if self.probability is not None:
            return f"harden({self.event}={self.probability:g})"
        factor = self.factor if self.factor is not None else DEFAULT_HARDENING_FACTOR
        return f"harden({self.event}*{factor:g})"


@dataclass(frozen=True)
class ScaleMissionTime(Patch):
    """Rescale every event probability to a different mission time.

    Under the exponential failure law ``p = 1 - exp(-λt)`` used by the
    Galileo rate models, changing the mission time from ``t`` to ``factor·t``
    transforms every probability as ``p' = 1 - (1 - p)**factor``.  The patch
    applies that transformation uniformly, so sweeping ``factor`` produces a
    mission-time sensitivity curve without re-parsing the rate model.
    """

    factor: float

    def __post_init__(self) -> None:
        _check_positive(self.factor, "mission-time factor")

    def apply(self, tree: FaultTree) -> FaultTree:
        patched = tree.copy()
        for name, probability in tree.probabilities().items():
            patched.set_probability(
                name, _clamp_probability(1.0 - (1.0 - probability) ** self.factor)
            )
        return patched

    @property
    def label(self) -> str:
        return f"mission-time*{self.factor:g}"


@dataclass(frozen=True)
class RemoveEvent(Patch):
    """Eliminate a basic event (it can never occur) and simplify the tree.

    Models a decommissioned attack vector or a failure mode engineered away.
    The event becomes constant FALSE, which propagates: an AND gate over it
    can never fire and disappears with it, an OR gate merely loses the child,
    and a k-of-n voting gate keeps its threshold over one fewer input (turning
    impossible when ``k`` exceeds the remaining inputs).  Subtrees orphaned by
    the simplification are pruned.  Removing an event the top event cannot
    survive without raises :class:`FaultTreeError`.
    """

    event: str

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        gates = tree.gates
        false_nodes: Set[str] = {self.event}
        surviving: Dict[str, Tuple[GateType, Tuple[str, ...], Optional[int], Optional[str]]] = {}
        for name in tree.topological_order():
            gate = gates.get(name)
            if gate is None:
                continue
            children = tuple(c for c in gate.children if c not in false_nodes)
            if gate.gate_type is GateType.AND:
                if len(children) < len(gate.children):
                    false_nodes.add(name)
                    continue
            elif gate.gate_type is GateType.OR:
                if not children:
                    false_nodes.add(name)
                    continue
            else:  # voting: removed children contribute nothing to the count
                assert gate.k is not None
                if gate.k > len(children):
                    false_nodes.add(name)
                    continue
            surviving[name] = (gate.gate_type, children, gate.k, gate.description)

        top = tree.top_event
        if top in false_nodes:
            raise FaultTreeError(
                f"removing event {self.event!r} makes the top event of "
                f"{tree.name!r} impossible"
            )

        patched = FaultTree(tree.name, top_event=top)
        events = tree.events
        reachable: Set[str] = set()
        stack = [top]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if node in surviving:
                stack.extend(surviving[node][1])
        for name in reachable:
            if name in events:
                event = events[name]
                patched.add_basic_event(name, event.probability, description=event.description)
            else:
                gate_type, children, k, description = surviving[name]
                patched.add_gate(name, gate_type, children, k=k, description=description)
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"remove({self.event})"


@dataclass(frozen=True)
class AddRedundancy(Patch):
    """Back a basic event with redundant units: all must fail together.

    The event ``e`` is replaced by an AND gate over ``e`` and ``copies``
    fresh basic events (``e__r1``, ``e__r2``, …) whose probability defaults
    to that of ``e``.  Every gate referencing ``e`` is rewired to the new
    gate — the classical "install a redundant pump" mitigation.
    """

    event: str
    copies: int = 1
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_count(self.copies, "redundancy copies", minimum=1)
        if self.probability is not None:
            _check_unit_probability(self.probability, "redundant unit probability")

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        gate_name = f"{self.event}__redundant"
        duplicate_probability = (
            self.probability if self.probability is not None else tree.probability(self.event)
        )
        patched = FaultTree(tree.name)
        for event in tree.events.values():
            patched.add_basic_event(event.name, event.probability, description=event.description)
        duplicates = []
        for index in range(self.copies):
            duplicate = f"{self.event}__r{index + 1}"
            patched.add_basic_event(
                duplicate,
                duplicate_probability,
                description=f"Redundant unit {index + 1} of {self.event}",
            )
            duplicates.append(duplicate)
        patched.add_gate(
            gate_name,
            GateType.AND,
            [self.event] + duplicates,
            description=f"{self.event} with {self.copies} redundant unit(s)",
        )
        for gate in tree.gates.values():
            children = [gate_name if c == self.event else c for c in gate.children]
            patched.add_gate(
                gate.name, gate.gate_type, children, k=gate.k, description=gate.description
            )
        top = tree.top_event
        patched.set_top_event(gate_name if top == self.event else top)
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"redundancy({self.event}x{self.copies})"


@dataclass(frozen=True)
class AddSpareChild(Patch):
    """Add a fresh basic event as an extra child of an existing gate.

    On an AND gate this models an additional independent barrier that must
    also fail.  On a k-of-n voting gate the threshold rises with the pool
    (``k+1``-of-``n+1``): an installed spare lets the subsystem tolerate one
    *more* unit failure — keeping ``k`` fixed while growing ``n`` would make
    the gate easier to trip and the "mitigation" would raise the failure
    probability.  Adding to an OR gate is rejected — it would introduce a
    new failure mode, which is a modelling change, not a mitigation.
    """

    gate: str
    probability: float
    name: Optional[str] = None

    def __post_init__(self) -> None:
        _check_name(self.gate, "gate name")
        _check_unit_probability(self.probability, "spare probability")
        if self.name is not None:
            _check_name(self.name, "spare event name")

    def apply(self, tree: FaultTree) -> FaultTree:
        if not tree.is_gate(self.gate):
            raise FaultTreeError(f"patch references unknown gate {self.gate!r}")
        gate = tree.gates[self.gate]
        if gate.gate_type is GateType.OR:
            raise FaultTreeError(
                f"cannot add a spare child to OR gate {self.gate!r}: it would add a "
                "failure mode instead of removing one"
            )
        spare = self.name or f"{self.gate}__spare"
        patched = FaultTree(tree.name, top_event=tree.top_event)
        for event in tree.events.values():
            patched.add_basic_event(event.name, event.probability, description=event.description)
        patched.add_basic_event(spare, self.probability, description=f"Spare unit on {self.gate}")
        for other in tree.gates.values():
            if other.name == self.gate:
                patched.add_gate(
                    other.name,
                    other.gate_type,
                    tuple(other.children) + (spare,),
                    k=other.k + 1 if other.k is not None else None,
                    description=other.description,
                )
            else:
                patched.add_gate(
                    other.name, other.gate_type, other.children, k=other.k,
                    description=other.description,
                )
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"spare({self.gate}+{self.probability:g})"


@dataclass(frozen=True)
class SetVotingThreshold(Patch):
    """Change the ``k`` threshold of an existing k-of-n voting gate."""

    gate: str
    k: int

    def __post_init__(self) -> None:
        _check_name(self.gate, "gate name")
        _check_count(self.k, "voting threshold", minimum=1)

    def apply(self, tree: FaultTree) -> FaultTree:
        if not tree.is_gate(self.gate):
            raise FaultTreeError(f"patch references unknown gate {self.gate!r}")
        gate = tree.gates[self.gate]
        if gate.gate_type is not GateType.VOTING:
            raise FaultTreeError(
                f"gate {self.gate!r} is a {gate.gate_type.value} gate, not a voting gate"
            )
        patched = FaultTree(tree.name, top_event=tree.top_event)
        for event in tree.events.values():
            patched.add_basic_event(event.name, event.probability, description=event.description)
        for other in tree.gates.values():
            k = self.k if other.name == self.gate else other.k
            patched.add_gate(
                other.name, other.gate_type, other.children, k=k, description=other.description
            )
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"k({self.gate})={self.k}"


@dataclass(frozen=True)
class ApplyCCF(Patch):
    """Apply a beta-factor common-cause-failure group (for CCF-factor sweeps).

    Wraps :func:`repro.fta.ccf.apply_beta_factor_model` with a single group so
    that ``beta`` can participate in scenario grids like any other knob.
    """

    group: str
    members: Tuple[str, ...]
    beta: float

    def __init__(self, group: str, members: Sequence[str], beta: float) -> None:
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "members", tuple(members))
        object.__setattr__(self, "beta", float(beta))
        # Constructing the CCFGroup eagerly validates every parameter (name,
        # member count/uniqueness, beta in (0, 1)) at patch-build time.
        self._group()

    def _group(self) -> CCFGroup:
        return CCFGroup(self.group, self.members, self.beta)

    def apply(self, tree: FaultTree) -> FaultTree:
        return apply_beta_factor_model(tree, [self._group()], name=tree.name)

    @property
    def label(self) -> str:
        return f"ccf({self.group},beta={self.beta:g})"


# -- maintenance patches: repair/inspection policy over reliability models ----------------

#: Models carrying a constant ``failure_rate`` parameter.
_RATED_MODELS = (ExponentialFailure, RepairableComponent, PeriodicallyTestedComponent)


class MaintenancePatch(Patch):
    """Perturb the failure/repair *model* of one event, not a static probability.

    Maintenance patches answer maintenance-policy what-ifs — *what if repairs
    were twice as fast? what if we inspected monthly instead of yearly?* —
    which live in the :mod:`repro.reliability` model space, not in the fault
    tree itself.  They therefore apply in two stages:

    1. :meth:`perturb` maps one :class:`~repro.reliability.models.FailureModel`
       to its perturbed counterpart (pure; the kind of model each patch
       accepts is validated here);
    2. :meth:`at` binds the patch to a
       :class:`~repro.reliability.assignment.ReliabilityAssignment` and a
       mission time, yielding an ordinary tree-level :class:`Patch`
       (:class:`MaintenanceAtTime`) that freezes the perturbed model's
       probability into a copied tree — exactly what
       ``assignment.tree_at(mission_time)`` would produce for that event.

    Applying an *unbound* maintenance patch to a tree is an error: the tree
    alone does not know which reliability model produced its probabilities.
    """

    event: str  # supplied by the frozen dataclass subclasses

    @abc.abstractmethod
    def perturb(self, model: FailureModel) -> FailureModel:
        """Return the perturbed model; reject incompatible model kinds."""

    def apply(self, tree: FaultTree) -> FaultTree:
        raise FaultTreeError(
            f"maintenance patch {self.label!r} perturbs a reliability model, not the "
            "fault tree; bind it with .at(assignment, mission_time) — or build "
            "scenarios through repair_rate_sweep/test_interval_sweep/"
            "maintenance_sweep — before applying it"
        )

    def apply_to_assignment(
        self, assignment: ReliabilityAssignment
    ) -> ReliabilityAssignment:
        """A new assignment with this event's model perturbed (non-destructive)."""
        return assignment.with_models(
            {self.event: self.perturb(assignment.model_for(self.event))}
        )

    def at(
        self, assignment: ReliabilityAssignment, mission_time: float
    ) -> "MaintenanceAtTime":
        """Bind to ``assignment`` and freeze at ``mission_time`` (tree-level patch).

        Binding validates eagerly: an unknown event, or a model kind this
        patch cannot perturb (e.g. a repair rate on a fixed-probability
        event), fails here — at decode/bind time — rather than once per
        scenario in the middle of a sweep.
        """
        self.perturb(assignment.model_for(self.event))
        return MaintenanceAtTime(self, assignment, float(mission_time))

    def _reject(self, model: FailureModel, needs: str) -> "FaultTreeError":
        return FaultTreeError(
            f"maintenance patch {self.label!r} needs a {needs} model for "
            f"{self.event!r}, got: {model.describe()}"
        )


@dataclass(frozen=True)
class SetFailureRate(MaintenancePatch):
    """Replace the constant failure rate ``lambda`` of a rated model."""

    event: str
    failure_rate: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.failure_rate, "failure rate")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, _RATED_MODELS):
            raise self._reject(model, "constant-failure-rate")
        return dataclasses.replace(model, failure_rate=self.failure_rate)

    @property
    def label(self) -> str:
        return f"lambda({self.event})={self.failure_rate:g}"


@dataclass(frozen=True)
class ScaleFailureRate(MaintenancePatch):
    """Multiply the constant failure rate ``lambda`` by a positive factor."""

    event: str
    factor: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.factor, "failure-rate factor")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, _RATED_MODELS):
            raise self._reject(model, "constant-failure-rate")
        return dataclasses.replace(model, failure_rate=model.failure_rate * self.factor)

    @property
    def label(self) -> str:
        return f"lambda({self.event})*{self.factor:g}"


@dataclass(frozen=True)
class SetRepairRate(MaintenancePatch):
    """Replace the repair rate ``mu`` of a repairable component."""

    event: str
    repair_rate: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.repair_rate, "repair rate")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, RepairableComponent):
            raise self._reject(model, "repairable-component")
        return dataclasses.replace(model, repair_rate=self.repair_rate)

    @property
    def label(self) -> str:
        return f"mu({self.event})={self.repair_rate:g}"


@dataclass(frozen=True)
class ScaleRepairRate(MaintenancePatch):
    """Multiply the repair rate ``mu`` of a repairable component by a factor."""

    event: str
    factor: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.factor, "repair-rate factor")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, RepairableComponent):
            raise self._reject(model, "repairable-component")
        return dataclasses.replace(model, repair_rate=model.repair_rate * self.factor)

    @property
    def label(self) -> str:
        return f"mu({self.event})*{self.factor:g}"


@dataclass(frozen=True)
class SetMTTR(MaintenancePatch):
    """Set the mean time to repair (``mu = 1 / MTTR``) of a repairable component."""

    event: str
    mttr: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.mttr, "mean time to repair")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, RepairableComponent):
            raise self._reject(model, "repairable-component")
        return dataclasses.replace(model, repair_rate=1.0 / self.mttr)

    @property
    def label(self) -> str:
        return f"mttr({self.event})={self.mttr:g}"


@dataclass(frozen=True)
class SetTestInterval(MaintenancePatch):
    """Replace the inspection interval of a periodically tested component."""

    event: str
    test_interval: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.test_interval, "test interval")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, PeriodicallyTestedComponent):
            raise self._reject(model, "periodically-tested")
        return dataclasses.replace(model, test_interval=self.test_interval)

    @property
    def label(self) -> str:
        return f"tau({self.event})={self.test_interval:g}"


@dataclass(frozen=True)
class ScaleTestInterval(MaintenancePatch):
    """Multiply the inspection interval of a periodically tested component."""

    event: str
    factor: float

    def __post_init__(self) -> None:
        _check_name(self.event, "event name")
        _check_positive(self.factor, "test-interval factor")

    def perturb(self, model: FailureModel) -> FailureModel:
        if not isinstance(model, PeriodicallyTestedComponent):
            raise self._reject(model, "periodically-tested")
        return dataclasses.replace(model, test_interval=model.test_interval * self.factor)

    @property
    def label(self) -> str:
        return f"tau({self.event})*{self.factor:g}"


@dataclass(frozen=True)
class MaintenanceAtTime(Patch):
    """A maintenance patch bound to an assignment and frozen at a mission time.

    ``apply`` copies the incoming tree and replaces only the perturbed event's
    probability with the perturbed model evaluated at ``mission_time``
    (clamped exactly like
    :meth:`~repro.reliability.assignment.ReliabilityAssignment.probabilities_at`),
    so the result is identical to materialising the perturbed assignment via
    ``tree_at(mission_time)`` — while composing with other patches and leaving
    the tree's structure function untouched (the incremental sweep path reuses
    every cached subtree artifact).
    """

    patch: MaintenancePatch
    assignment: ReliabilityAssignment
    mission_time: float

    def __post_init__(self) -> None:
        if not isinstance(self.patch, MaintenancePatch):
            raise FaultTreeError(
                f"MaintenanceAtTime wraps a MaintenancePatch, got {type(self.patch).__name__}"
            )
        if not isinstance(self.assignment, ReliabilityAssignment):
            raise FaultTreeError(
                "MaintenanceAtTime needs a ReliabilityAssignment, got "
                f"{type(self.assignment).__name__}"
            )
        time = _check_number(self.mission_time, "mission time")
        if time < 0.0:
            raise FaultTreeError(f"mission time must be non-negative, got {self.mission_time}")

    def apply(self, tree: FaultTree) -> FaultTree:
        event = self.patch.event
        _require_event(tree, event)
        model = self.patch.perturb(self.assignment.model_for(event))
        patched = tree.copy()
        patched.set_probability(
            event, clamp_probability(model.probability_at(self.mission_time))
        )
        return patched

    @property
    def label(self) -> str:
        return f"{self.patch.label}@t={self.mission_time:g}"

    def describe(self) -> str:
        return f"{self.patch.describe()} at mission time {self.mission_time:g} h"
