"""Declarative, non-destructive fault-tree perturbations.

A :class:`Patch` describes *one* change to a fault tree — harden a component,
add a redundant unit, remove an attack vector, stretch the mission time —
without mutating the base model: :meth:`Patch.apply` always returns a new
:class:`~repro.fta.tree.FaultTree`.  Patches compose into named
:class:`~repro.scenarios.scenario.Scenario` objects and parametric sweeps,
which the :class:`~repro.scenarios.sweep.SweepExecutor` evaluates in bulk.

Two families of patches exist:

* **probability patches** (:class:`SetProbability`, :class:`ScaleProbability`,
  :class:`Harden`, :class:`ScaleMissionTime`) keep the structure function
  untouched, so the incremental sweep path reuses *every* cached subtree
  artifact;
* **structural patches** (:class:`RemoveEvent`, :class:`AddRedundancy`,
  :class:`AddSpareChild`, :class:`SetVotingThreshold`, :class:`ApplyCCF`)
  rewrite part of the DAG; only the subtrees on the path from the edit to the
  top event lose their cache entries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.exceptions import FaultTreeError
from repro.fta.ccf import CCFGroup, apply_beta_factor_model
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = [
    "AddRedundancy",
    "AddSpareChild",
    "ApplyCCF",
    "Harden",
    "Patch",
    "RemoveEvent",
    "ScaleMissionTime",
    "ScaleProbability",
    "SetProbability",
    "SetVotingThreshold",
]

#: Default hardening factor applied by :class:`Harden` when neither a factor
#: nor a target probability is given (one order of magnitude improvement).
DEFAULT_HARDENING_FACTOR = 0.1


def _clamp_probability(value: float) -> float:
    """Clamp a perturbed probability into the library's (0, 1] domain."""
    return min(max(value, 1e-300), 1.0)


class Patch(abc.ABC):
    """One non-destructive perturbation of a fault tree."""

    @abc.abstractmethod
    def apply(self, tree: FaultTree) -> FaultTree:
        """Return a *new* tree with this patch applied; ``tree`` is unchanged."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Short identifier used to name scenarios built from this patch."""

    def describe(self) -> str:
        """Human-readable one-line description (defaults to :attr:`label`)."""
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.label})"


def _require_event(tree: FaultTree, event: str) -> None:
    if not tree.is_event(event):
        raise FaultTreeError(
            f"patch references unknown basic event {event!r} in tree {tree.name!r}"
        )


@dataclass(frozen=True)
class SetProbability(Patch):
    """Replace the probability of one basic event."""

    event: str
    probability: float

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        patched = tree.copy()
        patched.set_probability(self.event, self.probability)
        return patched

    @property
    def label(self) -> str:
        return f"{self.event}={self.probability:g}"


@dataclass(frozen=True)
class ScaleProbability(Patch):
    """Multiply the probability of one basic event by a positive factor."""

    event: str
    factor: float

    def apply(self, tree: FaultTree) -> FaultTree:
        if self.factor <= 0:
            raise FaultTreeError(f"scale factor must be positive, got {self.factor}")
        _require_event(tree, self.event)
        patched = tree.copy()
        patched.set_probability(
            self.event, _clamp_probability(tree.probability(self.event) * self.factor)
        )
        return patched

    @property
    def label(self) -> str:
        return f"{self.event}*{self.factor:g}"


@dataclass(frozen=True)
class Harden(Patch):
    """Harden a component: reduce its failure probability.

    Either an explicit target ``probability`` or a multiplicative ``factor``
    (default :data:`DEFAULT_HARDENING_FACTOR`).  Hardening may only lower the
    probability — raising it is rejected so that mitigation plans stay
    monotone.
    """

    event: str
    factor: Optional[float] = None
    probability: Optional[float] = None

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        base = tree.probability(self.event)
        target = self.hardened_probability(base)
        if target > base:
            raise FaultTreeError(
                f"hardening {self.event!r} cannot raise its probability "
                f"({base:g} -> {target:g})"
            )
        patched = tree.copy()
        patched.set_probability(self.event, target)
        return patched

    def hardened_probability(self, base: float) -> float:
        """The probability ``base`` becomes under this hardening action."""
        if self.probability is not None:
            return _clamp_probability(self.probability)
        factor = self.factor if self.factor is not None else DEFAULT_HARDENING_FACTOR
        if not 0 < factor <= 1:
            raise FaultTreeError(f"hardening factor must lie in (0, 1], got {factor}")
        return _clamp_probability(base * factor)

    @property
    def label(self) -> str:
        if self.probability is not None:
            return f"harden({self.event}={self.probability:g})"
        factor = self.factor if self.factor is not None else DEFAULT_HARDENING_FACTOR
        return f"harden({self.event}*{factor:g})"


@dataclass(frozen=True)
class ScaleMissionTime(Patch):
    """Rescale every event probability to a different mission time.

    Under the exponential failure law ``p = 1 - exp(-λt)`` used by the
    Galileo rate models, changing the mission time from ``t`` to ``factor·t``
    transforms every probability as ``p' = 1 - (1 - p)**factor``.  The patch
    applies that transformation uniformly, so sweeping ``factor`` produces a
    mission-time sensitivity curve without re-parsing the rate model.
    """

    factor: float

    def apply(self, tree: FaultTree) -> FaultTree:
        if self.factor <= 0:
            raise FaultTreeError(f"mission-time factor must be positive, got {self.factor}")
        patched = tree.copy()
        for name, probability in tree.probabilities().items():
            patched.set_probability(
                name, _clamp_probability(1.0 - (1.0 - probability) ** self.factor)
            )
        return patched

    @property
    def label(self) -> str:
        return f"mission-time*{self.factor:g}"


@dataclass(frozen=True)
class RemoveEvent(Patch):
    """Eliminate a basic event (it can never occur) and simplify the tree.

    Models a decommissioned attack vector or a failure mode engineered away.
    The event becomes constant FALSE, which propagates: an AND gate over it
    can never fire and disappears with it, an OR gate merely loses the child,
    and a k-of-n voting gate keeps its threshold over one fewer input (turning
    impossible when ``k`` exceeds the remaining inputs).  Subtrees orphaned by
    the simplification are pruned.  Removing an event the top event cannot
    survive without raises :class:`FaultTreeError`.
    """

    event: str

    def apply(self, tree: FaultTree) -> FaultTree:
        _require_event(tree, self.event)
        gates = tree.gates
        false_nodes: Set[str] = {self.event}
        surviving: Dict[str, Tuple[GateType, Tuple[str, ...], Optional[int], Optional[str]]] = {}
        for name in tree.topological_order():
            gate = gates.get(name)
            if gate is None:
                continue
            children = tuple(c for c in gate.children if c not in false_nodes)
            if gate.gate_type is GateType.AND:
                if len(children) < len(gate.children):
                    false_nodes.add(name)
                    continue
            elif gate.gate_type is GateType.OR:
                if not children:
                    false_nodes.add(name)
                    continue
            else:  # voting: removed children contribute nothing to the count
                assert gate.k is not None
                if gate.k > len(children):
                    false_nodes.add(name)
                    continue
            surviving[name] = (gate.gate_type, children, gate.k, gate.description)

        top = tree.top_event
        if top in false_nodes:
            raise FaultTreeError(
                f"removing event {self.event!r} makes the top event of "
                f"{tree.name!r} impossible"
            )

        patched = FaultTree(tree.name, top_event=top)
        events = tree.events
        reachable: Set[str] = set()
        stack = [top]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if node in surviving:
                stack.extend(surviving[node][1])
        for name in reachable:
            if name in events:
                event = events[name]
                patched.add_basic_event(name, event.probability, description=event.description)
            else:
                gate_type, children, k, description = surviving[name]
                patched.add_gate(name, gate_type, children, k=k, description=description)
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"remove({self.event})"


@dataclass(frozen=True)
class AddRedundancy(Patch):
    """Back a basic event with redundant units: all must fail together.

    The event ``e`` is replaced by an AND gate over ``e`` and ``copies``
    fresh basic events (``e__r1``, ``e__r2``, …) whose probability defaults
    to that of ``e``.  Every gate referencing ``e`` is rewired to the new
    gate — the classical "install a redundant pump" mitigation.
    """

    event: str
    copies: int = 1
    probability: Optional[float] = None

    def apply(self, tree: FaultTree) -> FaultTree:
        if self.copies < 1:
            raise FaultTreeError(f"redundancy needs at least one copy, got {self.copies}")
        _require_event(tree, self.event)
        gate_name = f"{self.event}__redundant"
        duplicate_probability = (
            self.probability if self.probability is not None else tree.probability(self.event)
        )
        patched = FaultTree(tree.name)
        for event in tree.events.values():
            patched.add_basic_event(event.name, event.probability, description=event.description)
        duplicates = []
        for index in range(self.copies):
            duplicate = f"{self.event}__r{index + 1}"
            patched.add_basic_event(
                duplicate,
                duplicate_probability,
                description=f"Redundant unit {index + 1} of {self.event}",
            )
            duplicates.append(duplicate)
        patched.add_gate(
            gate_name,
            GateType.AND,
            [self.event] + duplicates,
            description=f"{self.event} with {self.copies} redundant unit(s)",
        )
        for gate in tree.gates.values():
            children = [gate_name if c == self.event else c for c in gate.children]
            patched.add_gate(
                gate.name, gate.gate_type, children, k=gate.k, description=gate.description
            )
        top = tree.top_event
        patched.set_top_event(gate_name if top == self.event else top)
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"redundancy({self.event}x{self.copies})"


@dataclass(frozen=True)
class AddSpareChild(Patch):
    """Add a fresh basic event as an extra child of an existing gate.

    On an AND gate this models an additional independent barrier that must
    also fail.  On a k-of-n voting gate the threshold rises with the pool
    (``k+1``-of-``n+1``): an installed spare lets the subsystem tolerate one
    *more* unit failure — keeping ``k`` fixed while growing ``n`` would make
    the gate easier to trip and the "mitigation" would raise the failure
    probability.  Adding to an OR gate is rejected — it would introduce a
    new failure mode, which is a modelling change, not a mitigation.
    """

    gate: str
    probability: float
    name: Optional[str] = None

    def apply(self, tree: FaultTree) -> FaultTree:
        if not tree.is_gate(self.gate):
            raise FaultTreeError(f"patch references unknown gate {self.gate!r}")
        gate = tree.gates[self.gate]
        if gate.gate_type is GateType.OR:
            raise FaultTreeError(
                f"cannot add a spare child to OR gate {self.gate!r}: it would add a "
                "failure mode instead of removing one"
            )
        spare = self.name or f"{self.gate}__spare"
        patched = FaultTree(tree.name, top_event=tree.top_event)
        for event in tree.events.values():
            patched.add_basic_event(event.name, event.probability, description=event.description)
        patched.add_basic_event(spare, self.probability, description=f"Spare unit on {self.gate}")
        for other in tree.gates.values():
            if other.name == self.gate:
                patched.add_gate(
                    other.name,
                    other.gate_type,
                    tuple(other.children) + (spare,),
                    k=other.k + 1 if other.k is not None else None,
                    description=other.description,
                )
            else:
                patched.add_gate(
                    other.name, other.gate_type, other.children, k=other.k,
                    description=other.description,
                )
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"spare({self.gate}+{self.probability:g})"


@dataclass(frozen=True)
class SetVotingThreshold(Patch):
    """Change the ``k`` threshold of an existing k-of-n voting gate."""

    gate: str
    k: int

    def apply(self, tree: FaultTree) -> FaultTree:
        if not tree.is_gate(self.gate):
            raise FaultTreeError(f"patch references unknown gate {self.gate!r}")
        gate = tree.gates[self.gate]
        if gate.gate_type is not GateType.VOTING:
            raise FaultTreeError(
                f"gate {self.gate!r} is a {gate.gate_type.value} gate, not a voting gate"
            )
        patched = FaultTree(tree.name, top_event=tree.top_event)
        for event in tree.events.values():
            patched.add_basic_event(event.name, event.probability, description=event.description)
        for other in tree.gates.values():
            k = self.k if other.name == self.gate else other.k
            patched.add_gate(
                other.name, other.gate_type, other.children, k=k, description=other.description
            )
        patched.validate()
        return patched

    @property
    def label(self) -> str:
        return f"k({self.gate})={self.k}"


@dataclass(frozen=True)
class ApplyCCF(Patch):
    """Apply a beta-factor common-cause-failure group (for CCF-factor sweeps).

    Wraps :func:`repro.fta.ccf.apply_beta_factor_model` with a single group so
    that ``beta`` can participate in scenario grids like any other knob.
    """

    group: str
    members: Tuple[str, ...]
    beta: float

    def __init__(self, group: str, members: Sequence[str], beta: float) -> None:
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "members", tuple(members))
        object.__setattr__(self, "beta", float(beta))

    def apply(self, tree: FaultTree) -> FaultTree:
        return apply_beta_factor_model(
            tree, [CCFGroup(self.group, self.members, self.beta)], name=tree.name
        )

    @property
    def label(self) -> str:
        return f"ccf({self.group},beta={self.beta:g})"
