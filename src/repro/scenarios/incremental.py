"""Incremental minimal-cut-set computation over the subtree artifact cache.

Minimal cut sets compose bottom-up over monotone gates:

* ``mcs(OR(a, b))``     — union of the child cut sets, minimised;
* ``mcs(AND(a, b))``    — pairwise unions across the children, minimised;
* ``mcs(k-of-n(...))``  — AND-composition of every ``k``-subset of children,
  unioned and minimised.

Per-gate minimisation is exact for coherent trees even with shared events:
any product built from a subsumed local cut set is dominated by the same
product built from the subsuming subset.

:func:`incremental_cut_sets` exploits this compositionality for what-if
sweeps.  Every gate's cut sets are memoised in the session's
:class:`~repro.api.cache.ArtifactCache` under the gate's *structure-only*
subtree hash, so across the scenarios of a sweep only the gates whose
subtree actually changed are recomputed:

* a probability-only scenario (the common case) changes no structure hash at
  all — the full cut-set structure of every scenario is a single cache hit;
* a structural patch (added redundancy, removed event, changed voting
  threshold) dirties exactly the path from the edit to the top event, and the
  siblings of that path are reused.

The cached values are tuples of ``frozenset`` event names — purely
qualitative, as the structure-hash key requires; probabilities are attached
per scenario when the final :class:`CutSetCollection` is assembled.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from repro.analysis.cutsets import CutSet, CutSetCollection, minimise_cut_sets
from repro.api.cache import ARTIFACT_CUT_SETS, ARTIFACT_SUBTREE_CUT_SETS, ArtifactCache
from repro.exceptions import AnalysisError
from repro.fta.gates import Gate, GateType
from repro.fta.tree import FaultTree

__all__ = ["incremental_cut_sets", "seed_session_cut_sets"]

#: Safety valve: a single gate whose composition would exceed this many
#: intermediate products aborts with a clear error instead of exhausting
#: memory (mirrors the guard philosophy of the MaxSAT totalizer encodings).
MAX_INTERMEDIATE_PRODUCTS = 2_000_000


def _and_compose(operands: List[Tuple[CutSet, ...]]) -> List[CutSet]:
    """Cross-product composition of child cut sets, minimised as it grows."""
    current: List[CutSet] = [frozenset()]
    for operand in operands:
        if len(current) * len(operand) > MAX_INTERMEDIATE_PRODUCTS:
            raise AnalysisError(
                f"cut-set composition exceeds {MAX_INTERMEDIATE_PRODUCTS} intermediate "
                "products; the tree is too entangled for explicit enumeration"
            )
        current = minimise_cut_sets(
            left | right for left in current for right in operand
        )
    return current


def _gate_cut_sets(
    gate: Gate, resolved: Dict[str, Tuple[CutSet, ...]]
) -> Tuple[CutSet, ...]:
    """Minimal cut sets of one gate from its children's already-resolved sets."""
    children = [resolved[child] for child in gate.children]
    if gate.gate_type is GateType.OR:
        merged: List[CutSet] = [cs for child in children for cs in child]
        return tuple(minimise_cut_sets(merged))
    if gate.gate_type is GateType.AND:
        return tuple(_and_compose(children))
    assert gate.k is not None  # voting; Gate validated k on construction
    union: List[CutSet] = []
    for combo in combinations(children, gate.k):
        union.extend(_and_compose(list(combo)))
    return tuple(minimise_cut_sets(union))


def incremental_cut_sets(tree: FaultTree, cache: ArtifactCache) -> CutSetCollection:
    """Minimal cut sets of ``tree``, reusing cached unperturbed subtrees.

    Equivalent to :func:`repro.analysis.mocus.mocus_minimal_cut_sets` on any
    coherent tree, but every gate's result is memoised in ``cache`` under the
    gate's structure-only subtree hash (kind
    :data:`~repro.api.cache.ARTIFACT_SUBTREE_CUT_SETS`), so repeated calls
    across the scenarios of a sweep recompute only the gates whose subtree
    structure changed.  Cache hit/miss counters under that kind quantify the
    reuse.
    """
    tree.validate()
    gates = tree.gates
    resolved: Dict[str, Tuple[CutSet, ...]] = {}
    for name in tree.topological_order():
        gate = gates.get(name)
        if gate is None:
            resolved[name] = (frozenset((name,)),)
        else:
            resolved[name] = cache.get_or_compute_subtree(
                tree,
                name,
                ARTIFACT_SUBTREE_CUT_SETS,
                lambda g=gate: _gate_cut_sets(g, resolved),
            )
    return CutSetCollection.from_minimal(
        resolved[tree.top_event], probabilities=tree.probabilities()
    )


def seed_session_cut_sets(tree: FaultTree, cache: ArtifactCache) -> CutSetCollection:
    """Compute cut sets incrementally and seed them as the whole-tree artifact.

    After seeding, any cut-set-driven backend (``mocus``, ``brute-force``, the
    BDD cut-set path) asking the session cache for
    :data:`~repro.api.cache.ARTIFACT_CUT_SETS` on this tree hits the
    incrementally assembled collection instead of enumerating from scratch —
    this is the bridge that lets the sweep executor layer on the ordinary
    :class:`~repro.api.session.AnalysisSession` without modifying backends.
    """
    collection = incremental_cut_sets(tree, cache)
    cache.put(tree, ARTIFACT_CUT_SETS, collection)
    return collection
