"""The sweep executor: evaluate many scenarios with incremental re-analysis.

:class:`SweepExecutor` layers on the ordinary
:class:`~repro.api.session.AnalysisSession` — every scenario is analysed
through the same backend registry, request validation and report types as a
one-off analysis — and adds the incremental path: before each scenario is
handed to the session, its minimal cut sets are assembled from the session
cache's *subtree* artifacts (see :mod:`repro.scenarios.incremental`) and
seeded as the scenario tree's whole-tree cut-set artifact.  Cut-set-driven
backends then hit that artifact instead of re-enumerating, which turns a
200-scenario probability sweep into one structural enumeration plus 200
cheap probability re-rankings.

The results are identical to fresh per-scenario analysis (the seeded
artifact is exactly what the backend would have computed); the tests
cross-check this against two independent backends.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api.cache import ARTIFACT_SUBTREE_BDD
from repro.api.registry import backend_class, canonical_backend_name
from repro.api.report import AnalysisReport, AnalysisRequest, TopEventSummary
from repro.api.session import AnalysisSession
from repro.bdd.manager import BDD, BDDManager
from repro.bdd.ordering import variable_order
from repro.bdd.probability import FlatBDD, flatten_bdd, probability_of_bdd
from repro.exceptions import AnalysisError, ReproError
from repro.fta.tree import FaultTree
from repro.scenarios.incremental import seed_session_cut_sets
from repro.scenarios.report import (
    ScenarioOutcome,
    ScenarioReport,
    mpmcs_identity_changed,
)
from repro.scenarios.scenario import Scenario

__all__ = ["SweepExecutor", "run_sweep"]

#: Default analyses of a sweep: the two quantities an operator acts on.
DEFAULT_ANALYSES: Tuple[str, ...] = ("mpmcs", "top_event")

#: Default backend.  MOCUS serves every default analysis from the (seeded)
#: cut-set artifact, which is what makes the incremental path effective.
DEFAULT_BACKEND = "mocus"


def _top_event_estimate(report: AnalysisReport) -> Optional[float]:
    if report.top_event is None:
        return None
    return report.top_event.best_estimate


class SweepExecutor:
    """Evaluates scenario families against a base tree with shared caching.

    Parameters
    ----------
    session:
        Optional pre-built :class:`AnalysisSession`; its artifact cache then
        persists across sweeps (a second sweep over the same tree starts
        fully warm).  A fresh session is created otherwise.
    incremental:
        When true (default), seed each scenario's cut sets from the subtree
        cache before analysis.  ``False`` forces the naive path — every
        scenario re-enumerates from scratch — which exists for correctness
        cross-checks and the speedup benchmark.
    backend:
        Registry name of the backend analysing every scenario.
    exact_top_event:
        When true (default), scenarios whose cut-set analysis returned only
        probability *bounds* — the cut-set backends cap exact
        inclusion-exclusion at 20 cut sets — get their exact top-event
        probability from the BDD engine instead.  The compiled diagram is
        cached under the *structure-only* hash of the top event's subtree
        (:data:`~repro.api.cache.ARTIFACT_SUBTREE_BDD`): the structure
        function does not depend on probabilities, so a probability-only
        sweep compiles once and evaluates per scenario in linear time.
        Trees whose BDD compilation fails (pathological orderings) fall back
        to bounds, once per distinct structure.
    """

    def __init__(
        self,
        session: Optional[AnalysisSession] = None,
        *,
        incremental: bool = True,
        backend: str = DEFAULT_BACKEND,
        exact_top_event: bool = True,
    ) -> None:
        self.session = session if session is not None else AnalysisSession()
        self.incremental = incremental
        self.backend = backend
        self.exact_top_event = exact_top_event
        self._bdd_unavailable: Set[str] = set()
        self._fill_top_event = False
        #: Batch-precomputed exact P(top) values, keyed by ``id(tree)`` and
        #: holding a strong reference to the tree so ids cannot be recycled
        #: while an entry is pending.  Filled by :meth:`precompute_top_events`,
        #: consumed (and identity-checked) by :meth:`_bdd_top_event`.
        self._pending_ptop: Dict[int, Tuple[FaultTree, float]] = {}
        if backend == "auto":
            # Automatic routing covers every analysis; mpmcs routes to maxsat.
            self._capabilities: Optional[frozenset] = None
            warm_backend = "maxsat"
        else:
            self._capabilities = backend_class(canonical_backend_name(backend)).capabilities()
            warm_backend = backend
        self._warm_backend = None
        if incremental:
            # The maxsat backend's incremental path: persistent per-structure
            # solver sessions turn the probability-only scenarios of a sweep
            # into weight-only re-solves (no re-encoding, no solver restart).
            # The opt-in is scoped to :meth:`run` so one-off analyses on a
            # shared session keep the cold portfolio; the sessions themselves
            # persist on the backend, so a second sweep starts fully warm.
            # Backends without warm sessions simply opt out here.
            try:
                instance = self.session.backend(warm_backend)
            except ReproError:
                instance = None
            if getattr(instance, "enable_warm_sessions", None) is not None:
                self._warm_backend = instance

    @property
    def uses_bdd_top_event(self) -> bool:
        """True when ``top_event`` is served by the structure-keyed BDD.

        Set by :meth:`prepare_analyses` when the configured backend cannot
        provide ``top_event`` itself; batch callers use this to decide
        whether :meth:`precompute_top_events` will pay off.
        """
        return self._fill_top_event

    @contextlib.contextmanager
    def warm_scope(self):
        """Enable the backend's warm incremental sessions for the block.

        The sweep loop wraps itself in this scope; long-lived callers (the
        live :class:`~repro.monitoring.monitor.TreeMonitor`) hold it open for
        their whole lifetime so every update is a weight-only re-solve.
        Backends without warm sessions make this a no-op.
        """
        if self._warm_backend is None:
            yield self
            return
        previous = self._warm_backend.warm_enabled
        self._warm_backend.enable_warm_sessions()
        try:
            yield self
        finally:
            self._warm_backend.warm_enabled = previous

    def prepare_analyses(
        self, analyses: Sequence[str] = DEFAULT_ANALYSES
    ) -> Tuple[str, ...]:
        """Resolve the analyses the backend itself will run (see :meth:`run`).

        Splits off the ``top_event`` request when the configured backend
        cannot serve it (the structure-keyed BDD fills it instead) and
        records that decision for :meth:`analyze_tree`.
        """
        requested = tuple(analyses)
        self._fill_top_event = False
        if self._capabilities is not None and "top_event" not in self._capabilities:
            run_analyses = tuple(a for a in requested if a != "top_event")
            self._fill_top_event = "top_event" in requested
            if not run_analyses:
                if self._fill_top_event:
                    # Probability-only sweep: no backend analyses at all — the
                    # structure-keyed BDD serves ``top_event`` on its own, and
                    # :meth:`precompute_top_events` evaluates whole scenario
                    # grids in one kernel call.
                    return ()
                raise ReproError(
                    f"backend {self.backend!r} supports none of the requested "
                    f"analyses {requested!r}"
                )
            return run_analyses
        return requested

    def analyze_tree(
        self,
        tree: FaultTree,
        analyses: Sequence[str],
        *,
        top_k: int = 5,
        samples: int = 0,
        seed: int = 0,
    ) -> AnalysisReport:
        """One incremental analysis of ``tree``: seed, analyse, augment.

        The single-scenario core of the sweep loop, exposed for callers that
        produce trees one at a time (the live monitor): cut sets are seeded
        from the subtree cache when ``incremental`` is on, the session
        analyses through the configured backend, and the exact BDD top event
        is merged in where only bounds exist.  ``analyses`` should come from
        :meth:`prepare_analyses`.  Warm solver sessions apply only inside
        :meth:`warm_scope`.
        """
        if not analyses and self._fill_top_event:
            return self._bdd_only_report(
                tree, top_k=top_k, samples=samples, seed=seed
            )
        if self.incremental:
            seed_session_cut_sets(tree, self.session.artifacts)
        report = self.session.analyze(
            tree, analyses, backend=self.backend, top_k=top_k, samples=samples, seed=seed
        )
        self._augment_exact_top_event(tree, report)
        return report

    def _bdd_only_report(
        self, tree: FaultTree, *, top_k: int, samples: int, seed: int
    ) -> AnalysisReport:
        """The probability-only fast path: a report served entirely by the BDD.

        Used when ``top_event`` is the *only* requested analysis and the
        configured backend cannot provide it: no backend runs at all — the
        structure-keyed BDD (batch-precomputed where possible) is the sole
        provider.  Raises :class:`AnalysisError` when the BDD is unavailable
        for this structure, mirroring the session's no-provider error.
        """
        tree.validate()
        report = AnalysisReport(
            tree=tree,
            request=AnalysisRequest.create(
                ("top_event",),
                backend=self.backend,
                top_k=top_k,
                samples=samples,
                seed=seed,
            ),
        )
        report.profile["kernel"] = self.session.kernels.name
        self._augment_exact_top_event(tree, report)
        if report.top_event is None:
            raise AnalysisError(
                f"backend {self.backend!r} does not support 'top_event' and the "
                f"BDD fast path is unavailable for tree {tree.name!r}"
            )
        report.cache_stats = self.session.artifacts.stats()
        return report

    def precompute_top_events(self, trees: Sequence[FaultTree]) -> int:
        """Batch-evaluate exact P(top) for ``trees`` through the kernel seam.

        Trees are grouped by their (structure-keyed, cached) compiled BDD and
        each group's scenario grid is evaluated in **one** kernel call — a
        ``(scenarios × events)`` probability matrix in, a P(top) vector out —
        instead of one :func:`probability_of_bdd` walk per scenario.  Results
        are staged for :meth:`_bdd_top_event`, which consumes them during the
        per-scenario analysis; values are bit-identical to the scalar walk on
        every kernel tier.

        Trees whose BDD cannot be built or evaluated are simply left out:
        the scalar fallback reproduces the exact per-scenario error handling
        (including marking the structure unavailable), and once a structure
        fails here no later tree of the same structure is batched, preserving
        the unbatched path's ordering semantics.  Returns the number of
        precomputed values.
        """
        cache = self.session.artifacts
        suite = self.session.kernels
        groups: Dict[int, Tuple[FlatBDD, List[FaultTree], List[List[float]]]] = {}
        failed_structures: Set[str] = set()
        staged = 0
        for tree in trees:
            structure_key = cache.structure_keys_for(tree)[tree.top_event]
            if structure_key in self._bdd_unavailable or structure_key in failed_structures:
                continue

            def build(tree: FaultTree = tree) -> BDD:
                manager = BDDManager(variable_order(tree, heuristic="dfs"))
                return manager.from_fault_tree(tree)

            try:
                function = cache.get_or_compute_subtree(
                    tree, tree.top_event, ARTIFACT_SUBTREE_BDD, build
                )
                flat = flatten_bdd(function)
                row = flat.probability_rows((tree.probabilities(),))[0]
            except (ReproError, MemoryError, RecursionError):
                failed_structures.add(structure_key)
                continue
            group = groups.setdefault(id(function), (flat, [], []))
            group[1].append(tree)
            group[2].append(row)
        for flat, group_trees, rows in groups.values():
            values = suite.eval_bdd_batch(flat, rows)
            for group_tree, value in zip(group_trees, values):
                self._pending_ptop[id(group_tree)] = (group_tree, value)
                staged += 1
        return staged

    @property
    def uses_batched_rerank(self) -> bool:
        """True when maxsat solves can be batched through the re-rank kernel.

        Requires the warm incremental backend (so scenarios are weight-only
        re-solves on persistent sessions) — batch callers use this to decide
        whether :meth:`precompute_rerank` will pay off.
        """
        return self._warm_backend is not None and getattr(
            self._warm_backend, "precompute_rerank", None
        ) is not None

    def precompute_rerank(self, trees: Sequence[FaultTree]) -> int:
        """Batch the first MaxSAT solve of ``trees`` through the re-rank kernel.

        Delegates to the warm backend's
        :meth:`~repro.api.backends.MaxSATBackend.precompute_rerank`: trees are
        grouped by structure and each group's weight grid runs through the
        pooled / certified / B&B / fallback ladder of
        :meth:`~repro.maxsat.incremental.IncrementalMaxSATSession.solve_batch`
        in one call — results byte-identical to the per-scenario loop, SAT
        calls near zero in steady state.  The per-scenario analysis then
        consumes the staged solves transparently.  Returns the number staged
        (0 when the backend has no batch path).
        """
        if not self.uses_batched_rerank:
            return 0
        return self._warm_backend.precompute_rerank(trees)

    def clear_staged_rerank(self) -> None:
        """Drop unconsumed staged batch solves (frees their tree references)."""
        if self.uses_batched_rerank:
            self._warm_backend.clear_staged_rerank()

    def evict_tree_artifacts(self, base: FaultTree, patched: FaultTree) -> None:
        """Public alias of the per-scenario cache eviction (see below)."""
        self._evict_scenario_artifacts(base, patched)

    def run(
        self,
        tree: FaultTree,
        scenarios: Iterable[Scenario],
        *,
        analyses: Sequence[str] = DEFAULT_ANALYSES,
        top_k: int = 5,
        samples: int = 0,
        seed: int = 0,
        stop_check: Optional[Callable[[], None]] = None,
        on_outcome: Optional[Callable[[ScenarioOutcome], None]] = None,
    ) -> ScenarioReport:
        """Analyse ``tree`` and every scenario; return the delta report.

        ``stop_check`` is the cooperative-cancellation hook: it is invoked
        before the base analysis and before every scenario, and aborting is
        done by *raising* from it (the service raises its job-cancelled /
        job-timeout errors there).  It deliberately runs outside the
        per-scenario error handling so a cancellation is never recorded as a
        failed scenario outcome.

        A ``top_event`` request outside the configured backend's capabilities
        is not forced through it: a ``maxsat`` sweep with the default
        ``("mpmcs", "top_event")`` analyses runs ``mpmcs`` through the warm
        MaxSAT path while ``top_event`` is served by the structure-keyed BDD
        (the same diagram the ``exact_top_event`` augmentation uses), so every
        backend answers the sweep's two headline questions.  Any *other*
        unsupported analysis fails loudly, exactly like a direct ``analyze``.
        """
        # Warm incremental solving is scoped to this sweep: the scope
        # restores the backend's routing afterwards so one-off analyses on a
        # shared session keep the cold portfolio (the warm sessions
        # themselves are retained for the next sweep).
        with self.warm_scope():
            return self._run(
                tree,
                scenarios,
                analyses=analyses,
                top_k=top_k,
                samples=samples,
                seed=seed,
                stop_check=stop_check,
                on_outcome=on_outcome,
            )

    def _run(
        self,
        tree: FaultTree,
        scenarios: Iterable[Scenario],
        *,
        analyses: Sequence[str],
        top_k: int,
        samples: int,
        seed: int,
        stop_check: Optional[Callable[[], None]] = None,
        on_outcome: Optional[Callable[[ScenarioOutcome], None]] = None,
    ) -> ScenarioReport:
        scenario_list = list(scenarios)
        started = time.perf_counter()
        if stop_check is not None:
            stop_check()

        # ``top_event`` is the one analysis with a backend-independent
        # fallback (the structure-keyed BDD in analyze_tree), so it alone is
        # lifted out of the backend's request.  Any other unsupported
        # analysis stays in and fails loudly in the session, exactly like a
        # direct ``analyze`` call would.
        analyses = self.prepare_analyses(analyses)

        base = self.analyze_tree(
            tree, analyses, top_k=top_k, samples=samples, seed=seed
        )
        base_top = _top_event_estimate(base)
        base_mpmcs_events = base.mpmcs.events if base.mpmcs is not None else None
        base_mpmcs_probability = base.mpmcs.probability if base.mpmcs is not None else None

        report = ScenarioReport(
            tree_name=tree.name,
            analyses=tuple(base.request.analyses),
            backend=self.backend,
            incremental=self.incremental,
            base=base,
            base_top_event=base_top,
            base_mpmcs_events=base_mpmcs_events,
            base_mpmcs_probability=base_mpmcs_probability,
        )

        # Batched precomputation: when the structure-keyed BDD serves the top
        # event and/or the warm MaxSAT backend can batch its re-ranks,
        # pre-apply every patch and push the whole scenario grid through the
        # kernel seam — one BDD evaluation pass and one solve_batch per
        # structure; the loop below then consumes the staged values.
        prepared: List[Tuple[Optional[FaultTree], Optional[ReproError]]] = []
        batch_rerank = self.uses_batched_rerank and any(
            analysis in ("mpmcs", "ranking") for analysis in analyses
        )
        if self._fill_top_event or batch_rerank:
            for scenario in scenario_list:
                try:
                    prepared.append((scenario.apply(tree), None))
                except ReproError as exc:
                    prepared.append((None, exc))
            patched_trees = [patched for patched, _ in prepared if patched is not None]
            if self._fill_top_event:
                self.precompute_top_events(patched_trees)
            if batch_rerank:
                self.precompute_rerank(patched_trees)

        for position, scenario in enumerate(scenario_list):
            # Outside the try: a cancellation raised here must abort the
            # sweep, not be recorded as one failed scenario outcome.
            if stop_check is not None:
                stop_check()
            scenario_started = time.perf_counter()
            try:
                if prepared:
                    patched, apply_error = prepared[position]
                    if apply_error is not None:
                        raise apply_error
                else:
                    patched = scenario.apply(tree)
                partial = self.analyze_tree(
                    patched, analyses, top_k=top_k, samples=samples, seed=seed
                )
            except ReproError as exc:
                failed = ScenarioOutcome(
                    name=scenario.name,
                    description=scenario.describe(),
                    time_s=time.perf_counter() - scenario_started,
                    error=str(exc),
                )
                report.outcomes.append(failed)
                if on_outcome is not None:
                    on_outcome(failed)
                continue
            self._evict_scenario_artifacts(tree, patched)
            top = _top_event_estimate(partial)
            mpmcs = partial.mpmcs
            outcome = ScenarioOutcome(
                name=scenario.name,
                description=scenario.describe(),
                top_event=top,
                top_event_delta=(
                    top - base_top if top is not None and base_top is not None else None
                ),
                mpmcs_events=mpmcs.events if mpmcs is not None else None,
                mpmcs_probability=mpmcs.probability if mpmcs is not None else None,
                mpmcs_delta=(
                    mpmcs.probability - base_mpmcs_probability
                    if mpmcs is not None and base_mpmcs_probability is not None
                    else None
                ),
                mpmcs_changed=mpmcs_identity_changed(
                    base_mpmcs_events, mpmcs.events if mpmcs is not None else None
                ),
                time_s=time.perf_counter() - scenario_started,
            )
            report.outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)

        self._pending_ptop.clear()
        self.clear_staged_rerank()
        report.cache_stats = self.session.cache_info()
        report.total_time_s = time.perf_counter() - started
        return report

    def _augment_exact_top_event(self, tree: FaultTree, report: AnalysisReport) -> None:
        """Fill in the exact BDD top-event probability where only bounds exist.

        The cut-set backends stop computing exact inclusion-exclusion beyond
        20 cut sets, so large perturbed trees used to report bounds only.
        This resolves the exact value through a BDD compiled once per
        *structure* (probability-only scenarios share it) and merges it into
        the report's :class:`TopEventSummary`, keeping the bounds alongside.
        """
        if not self.exact_top_event and not getattr(self, "_fill_top_event", False):
            return
        summary = report.top_event
        if summary is None and not getattr(self, "_fill_top_event", False):
            return
        if summary is not None and summary.exact is not None:
            return
        exact = self._bdd_top_event(tree)
        if exact is None:
            return
        filled = TopEventSummary(exact=exact, backend="bdd")
        report.top_event = filled if summary is None else filled.merged_with(summary)
        previous = report.backends.get("top_event")
        report.backends["top_event"] = f"{previous}+bdd" if previous else "bdd"

    def _bdd_top_event(self, tree: FaultTree) -> Optional[float]:
        """Exact P(top) via the structure-keyed BDD; ``None`` when unavailable."""
        cache = self.session.artifacts
        structure_key = cache.structure_keys_for(tree)[tree.top_event]
        if structure_key in self._bdd_unavailable:
            self._pending_ptop.pop(id(tree), None)
            return None
        pending = self._pending_ptop.pop(id(tree), None)
        if pending is not None and pending[0] is tree:
            return pending[1]

        def build() -> BDD:
            manager = BDDManager(variable_order(tree, heuristic="dfs"))
            return manager.from_fault_tree(tree)

        try:
            function = cache.get_or_compute_subtree(
                tree, tree.top_event, ARTIFACT_SUBTREE_BDD, build
            )
            return probability_of_bdd(function, tree.probabilities())
        except (ReproError, MemoryError, RecursionError):
            self._bdd_unavailable.add(structure_key)
            return None

    def _evict_scenario_artifacts(self, base: FaultTree, patched: FaultTree) -> None:
        """Drop the scenario tree's whole-tree cache entries after analysis.

        Whole-tree artifacts are keyed by a probability-including hash that
        is unique to the scenario, so once its report is assembled they are
        dead weight — without eviction a long sweep grows the session cache
        by one seeded collection (plus backend artifacts) per scenario.  The
        shared *subtree* entries, which every later scenario reuses, are
        kept; so is everything belonging to the base tree (an identity
        scenario such as ``mission-time*1`` hashes equal to it).
        """
        artifacts = self.session.artifacts
        if artifacts.key_for(patched) != artifacts.key_for(base):
            # Memory-only eviction (include_backend=False): this reclaims the
            # dead per-scenario weight from the hot tier without paying disk
            # deletions per scenario or destroying store entries that a
            # future identical scenario could reuse.
            artifacts.invalidate(patched, include_subtrees=False, include_backend=False)


def run_sweep(
    tree: FaultTree,
    scenarios: Iterable[Scenario],
    *,
    analyses: Sequence[str] = DEFAULT_ANALYSES,
    backend: str = DEFAULT_BACKEND,
    incremental: bool = True,
    session: Optional[AnalysisSession] = None,
    top_k: int = 5,
    samples: int = 0,
    seed: int = 0,
    exact_top_event: bool = True,
) -> ScenarioReport:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    executor = SweepExecutor(
        session, incremental=incremental, backend=backend, exact_top_event=exact_top_event
    )
    return executor.run(
        tree, scenarios, analyses=analyses, top_k=top_k, samples=samples, seed=seed
    )
