"""Plain-text rendering of fault trees for the CLI and the examples.

Gates and events are drawn as an indented tree rooted at the top event;
basic events show their probabilities and MPMCS members are tagged, giving a
terminal-friendly approximation of the Fig. 2 visualisation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["render_tree"]


def render_tree(
    tree: FaultTree,
    *,
    highlight: Optional[Iterable[str]] = None,
    max_depth: Optional[int] = None,
) -> str:
    """Render ``tree`` as indented ASCII text.

    Shared sub-trees (DAG nodes referenced by several parents) are expanded at
    every reference but marked with ``(shared)`` after the first expansion so
    the output stays readable.
    """
    tree.validate()
    highlighted: Set[str] = set(highlight or ())
    lines: List[str] = []
    expanded: Set[str] = set()

    def label(name: str) -> str:
        if tree.is_event(name):
            event = tree.events[name]
            text = f"{name} [p={event.probability:g}]"
            if event.description:
                text += f" — {event.description}"
        else:
            gate = tree.gates[name]
            if gate.gate_type is GateType.VOTING:
                text = f"{name} ({gate.k}-of-{len(gate.children)})"
            else:
                text = f"{name} ({gate.gate_type.value.upper()})"
            if gate.description:
                text += f" — {gate.description}"
        if name in highlighted:
            text += "   << MPMCS"
        return text

    def visit(name: str, prefix: str, is_last: bool, depth: int) -> None:
        connector = "└─ " if is_last else "├─ "
        if not prefix and depth == 0:
            lines.append(label(name))
        else:
            lines.append(prefix + connector + label(name))
        if max_depth is not None and depth >= max_depth:
            return
        if tree.is_gate(name):
            if name in expanded:
                child_prefix = prefix + ("   " if is_last else "│  ")
                lines.append(child_prefix + "└─ (shared sub-tree, shown above)")
                return
            expanded.add(name)
            children = tree.gates[name].children
            child_prefix = prefix + ("   " if is_last or depth == 0 else "│  ")
            if depth == 0:
                child_prefix = "   " if is_last else "│  "
            for index, child in enumerate(children):
                visit(child, child_prefix, index == len(children) - 1, depth + 1)

    visit(tree.top_event, "", True, 0)
    return "\n".join(lines)
