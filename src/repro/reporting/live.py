"""Terminal rendering of live-monitoring streams.

One line per event, stable and grep-friendly — these feed ``repro monitor``
and ``repro watch``, which people leave running in a terminal (or pipe into
``tee``), so every line is self-contained: no cursor tricks, no colour.
All renderers take the *wire documents* (the dict forms streamed over SSE
and produced by :meth:`MonitorDelta.to_dict` / :meth:`Alert.to_dict`), so
local monitors and remote streams print identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "render_alert",
    "render_delta",
    "render_monitor_status",
    "render_scenario_progress",
]


def _fmt_prob(value: Optional[float]) -> str:
    return f"{value:.6g}" if value is not None else "n/a"


def _fmt_delta(value: Optional[float]) -> str:
    if value is None:
        return ""
    return f" ({value:+.3g})"


def _fmt_mpmcs(events: Any) -> str:
    if not events:
        return "{}"
    return "{" + ", ".join(str(event) for event in events) + "}"


def render_delta(document: Mapping[str, Any]) -> str:
    """One line for a monitor delta document."""
    marker = " *MPMCS*" if document.get("mpmcs_changed") else ""
    changed = document.get("changed_events") or []
    latency = document.get("latency_s")
    latency_text = f" [{latency * 1000:.1f}ms]" if latency is not None else ""
    return (
        f"#{document.get('seq', '?')} "
        f"P(top)={_fmt_prob(document.get('ptop'))}"
        f"{_fmt_delta(document.get('ptop_delta'))} "
        f"mpmcs={_fmt_mpmcs(document.get('mpmcs'))}{marker} "
        f"changed={','.join(changed) if changed else '-'}"
        f"{latency_text}"
    )


def render_alert(document: Mapping[str, Any]) -> str:
    """One line for an alert document; shouts so it stands out in a scroll."""
    value = document.get("value")
    value_text = f" value={_fmt_prob(value)}" if value is not None else ""
    return (
        f"ALERT [{document.get('rule', '?')}] seq={document.get('seq', '?')}"
        f"{value_text}: {document.get('message', '')}"
    )


def render_scenario_progress(document: Mapping[str, Any], *, count: int) -> str:
    """One line for a sweep progress (per-scenario) document."""
    total = document.get("total")
    position = f"{count}/{total}" if total else str(count)
    error = document.get("error")
    if error:
        return f"[{position}] {document.get('name', '?')}: FAILED: {error}"
    marker = " *MPMCS*" if document.get("mpmcs_changed") else ""
    return (
        f"[{position}] {document.get('name', '?')}: "
        f"P(top)={_fmt_prob(document.get('top_event'))}"
        f"{_fmt_delta(document.get('top_event_delta'))}"
        f"{marker}"
    )


def render_monitor_status(document: Mapping[str, Any]) -> List[str]:
    """Multi-line summary of a monitor status document."""
    lines = [
        f"monitor {document.get('name', '?')} on tree {document.get('tree', '?')} "
        f"({'running' if document.get('running') else 'stopped'})",
        f"  backend:  {document.get('backend', '?')}  "
        f"analyses: {', '.join(document.get('analyses', []))}",
        f"  updates:  {document.get('updates', 0)}  "
        f"alerts: {document.get('alerts', 0)}  "
        f"last seq: {document.get('last_seq', 0)}",
        f"  P(top):   {_fmt_prob(document.get('ptop'))}  "
        f"(base {_fmt_prob(document.get('base_ptop'))})",
        f"  MPMCS:    {_fmt_mpmcs(document.get('mpmcs'))}",
    ]
    rules = document.get("rules") or []
    if rules:
        shown = ", ".join(str(rule.get("rule", "?")) for rule in rules)
        lines.append(f"  rules:    {shown}")
    return lines
