"""One rendering entry point for every format, fed by an `AnalysisReport`.

The :mod:`repro.api` facade produces a single
:class:`~repro.api.report.AnalysisReport` regardless of which backend did the
work; :func:`render_report` turns that object into any of the library's
output formats, and :func:`write_report` picks the format from the file
suffix:

.. code-block:: python

    from repro.api import AnalysisSession
    from repro.reporting import render_report, write_report

    report = AnalysisSession().analyze(tree, ["mpmcs", "ranking", "importance", "spof"])
    print(render_report(report, "ascii"))        # terminal rendering
    write_report(report, "out/fps.html")          # self-contained HTML viewer
    write_report(report, "out/fps.json")          # unified machine-readable doc
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.api.report import AnalysisReport
from repro.exceptions import ReproError
from repro.reporting.ascii_art import render_tree
from repro.reporting.dot import to_dot
from repro.reporting.html import html_report
from repro.reporting.json_report import report_document
from repro.reporting.markdown import markdown_report

__all__ = ["FORMATS", "render_report", "write_report"]

#: Formats supported by :func:`render_report`.
FORMATS = ("json", "markdown", "html", "dot", "ascii")

#: File suffix -> format, used by :func:`write_report`.
_SUFFIX_FORMATS = {
    ".json": "json",
    ".md": "markdown",
    ".markdown": "markdown",
    ".html": "html",
    ".htm": "html",
    ".dot": "dot",
    ".gv": "dot",
    ".txt": "ascii",
}


def _require_mpmcs(report: AnalysisReport, fmt: str):
    result = report.mpmcs_result
    if result is None:
        raise ReproError(
            f"the {fmt!r} report format needs the 'mpmcs' analysis; "
            f"this report only contains {', '.join(report.analyses)}"
        )
    return result


def render_report(report: AnalysisReport, fmt: str = "json") -> str:
    """Render ``report`` in ``fmt`` (one of :data:`FORMATS`)."""
    fmt = fmt.strip().lower()
    if fmt == "json":
        return json.dumps(report_document(report), indent=2)
    if fmt == "markdown":
        return markdown_report(
            report.tree,
            _require_mpmcs(report, fmt),
            ranking=report.ranking,
            importance=report.importance,
            spofs=report.spof,
        )
    if fmt == "html":
        return html_report(report.tree, _require_mpmcs(report, fmt))
    if fmt == "dot":
        highlight = report.mpmcs.events if report.mpmcs is not None else ()
        return to_dot(report.tree, highlight=highlight)
    if fmt == "ascii":
        highlight = report.mpmcs.events if report.mpmcs is not None else ()
        return render_tree(report.tree, highlight=highlight)
    raise ReproError(f"unknown report format {fmt!r}; expected one of {', '.join(FORMATS)}")


def write_report(
    report: AnalysisReport,
    path: Union[str, Path],
    *,
    fmt: str = "",
) -> Path:
    """Write ``report`` to ``path``, inferring the format from the suffix.

    An explicit ``fmt`` overrides the inference; unknown suffixes default to
    the unified JSON document.
    """
    path = Path(path)
    chosen = fmt.strip().lower() or _SUFFIX_FORMATS.get(path.suffix.lower(), "json")
    text = render_report(report, chosen)
    path.write_text(text + ("" if text.endswith("\n") else "\n"), encoding="utf-8")
    return path
