"""One rendering entry point for every format, fed by an `AnalysisReport`.

The :mod:`repro.api` facade produces a single
:class:`~repro.api.report.AnalysisReport` regardless of which backend did the
work; :func:`render_report` turns that object into any of the library's
output formats, and :func:`write_report` picks the format from the file
suffix:

.. code-block:: python

    from repro.api import AnalysisSession
    from repro.reporting import render_report, write_report

    report = AnalysisSession().analyze(tree, ["mpmcs", "ranking", "importance", "spof"])
    print(render_report(report, "ascii"))        # terminal rendering
    write_report(report, "out/fps.html")          # self-contained HTML viewer
    write_report(report, "out/fps.json")          # unified machine-readable doc
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.api.report import AnalysisReport
from repro.exceptions import ReproError
from repro.reporting.ascii_art import render_tree
from repro.reporting.dot import to_dot
from repro.reporting.html import html_report
from repro.reporting.json_report import report_document
from repro.reporting.markdown import markdown_report
from repro.reporting.tables import scenario_delta_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenarios -> api)
    from repro.scenarios.report import ScenarioReport

__all__ = [
    "FORMATS",
    "SCENARIO_FORMATS",
    "render_profile",
    "render_report",
    "render_scenario_report",
    "write_report",
]

#: Formats supported by :func:`render_report`.
FORMATS = ("json", "markdown", "html", "dot", "ascii")

#: File suffix -> format, used by :func:`write_report`.
_SUFFIX_FORMATS = {
    ".json": "json",
    ".md": "markdown",
    ".markdown": "markdown",
    ".html": "html",
    ".htm": "html",
    ".dot": "dot",
    ".gv": "dot",
    ".txt": "ascii",
}


def _require_mpmcs(report: AnalysisReport, fmt: str):
    result = report.mpmcs_result
    if result is None:
        raise ReproError(
            f"the {fmt!r} report format needs the 'mpmcs' analysis; "
            f"this report only contains {', '.join(report.analyses)}"
        )
    return result


def render_report(report: AnalysisReport, fmt: str = "json") -> str:
    """Render ``report`` in ``fmt`` (one of :data:`FORMATS`)."""
    fmt = fmt.strip().lower()
    if fmt == "json":
        return json.dumps(report_document(report), indent=2)
    if fmt == "markdown":
        return markdown_report(
            report.tree,
            _require_mpmcs(report, fmt),
            ranking=report.ranking,
            importance=report.importance,
            spofs=report.spof,
        )
    if fmt == "html":
        return html_report(report.tree, _require_mpmcs(report, fmt))
    if fmt == "dot":
        highlight = report.mpmcs.events if report.mpmcs is not None else ()
        return to_dot(report.tree, highlight=highlight)
    if fmt == "ascii":
        highlight = report.mpmcs.events if report.mpmcs is not None else ()
        return render_tree(report.tree, highlight=highlight)
    raise ReproError(f"unknown report format {fmt!r}; expected one of {', '.join(FORMATS)}")


def render_profile(report: AnalysisReport) -> str:
    """Human-readable per-stage performance breakdown of one analysis run.

    Shows the stage timings (``encode_seconds`` — CNF/BDD/cut-set structure
    preparation, ``solve_seconds`` — search and enumeration) and the
    artifact-cache counters the run accumulated, so the effect of warm
    sessions and cached fragments is visible without running a benchmark.
    """
    profile = report.profile
    lines = ["performance profile:"]
    if not profile:
        lines.append("  (no profiling data recorded)")
        return "\n".join(lines)
    for key in ("encode_seconds", "solve_seconds"):
        if key in profile:
            stage = key.replace("_seconds", "")
            lines.append(f"  {stage:<12}: {profile[key]:.6f}s")
    for key in ("kernel", "warm_solves", "cache_hits", "cache_misses", "store_hits", "store_misses"):
        if key in profile:
            lines.append(f"  {key:<12}: {profile[key]}")
    extras = sorted(
        key
        for key in profile
        if key
        not in {
            "encode_seconds",
            "solve_seconds",
            "kernel",
            "warm_solves",
            "cache_hits",
            "cache_misses",
            "store_hits",
            "store_misses",
        }
    )
    for key in extras:
        lines.append(f"  {key:<12}: {profile[key]}")
    for backend, seconds in sorted(report.timings.items()):
        lines.append(f"  backend {backend}: {seconds:.6f}s")
    return "\n".join(lines)


#: Formats supported by :func:`render_scenario_report`.
SCENARIO_FORMATS = ("json", "markdown", "text")


def render_scenario_report(report: "ScenarioReport", fmt: str = "markdown", *, limit: int = 0) -> str:
    """Render a :class:`~repro.scenarios.ScenarioReport` delta table.

    ``"markdown"`` produces the per-scenario delta table, ``"json"`` the full
    machine-readable document (:meth:`ScenarioReport.to_dict`), and
    ``"text"`` a compact terminal summary: the table plus base values and the
    cache-reuse counters proving incremental re-analysis.
    """
    fmt = fmt.strip().lower()
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=2)
    if fmt == "markdown":
        return scenario_delta_table(report, limit=limit)
    if fmt == "text":
        lines = [
            f"tree     : {report.tree_name}",
            f"backend  : {report.backend}   "
            f"({'incremental' if report.incremental else 'naive'} sweep, "
            f"{len(report)} scenario(s), {report.total_time_s:.3f}s)",
        ]
        if report.base_top_event is not None:
            lines.append(f"base P(top) : {report.base_top_event:.6e}")
        if report.base_mpmcs_events is not None:
            lines.append(
                f"base MPMCS  : {{{', '.join(report.base_mpmcs_events)}}}"
                f"  p={report.base_mpmcs_probability:.6g}"
            )
        reuse = report.subtree_reuse
        lines.append(
            f"subtree cache: {reuse['hits']} hits / {reuse['misses']} misses"
        )
        lines.append("")
        lines.append(scenario_delta_table(report, limit=limit))
        return "\n".join(lines)
    raise ReproError(
        f"unknown scenario report format {fmt!r}; expected one of {', '.join(SCENARIO_FORMATS)}"
    )


def write_report(
    report: AnalysisReport,
    path: Union[str, Path],
    *,
    fmt: str = "",
) -> Path:
    """Write ``report`` to ``path``, inferring the format from the suffix.

    An explicit ``fmt`` overrides the inference; unknown suffixes default to
    the unified JSON document.
    """
    path = Path(path)
    chosen = fmt.strip().lower() or _SUFFIX_FORMATS.get(path.suffix.lower(), "json")
    text = render_report(report, chosen)
    path.write_text(text + ("" if text.endswith("\n") else "\n"), encoding="utf-8")
    return path
