"""Standalone HTML viewer — the browser-rendered half of paper Fig. 2.

MPMCS4FTA's JSON output feeds a browser page that draws the fault tree with
the MPMCS highlighted.  :func:`html_report` reproduces that artefact as a
single self-contained HTML file: an inline SVG drawing of the fault tree
(gates as boxes, basic events as ellipses, MPMCS members filled red) plus the
solution summary.  No external assets or JavaScript are required, so the file
can be archived next to the JSON report.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.pipeline import MPMCSResult
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["html_report", "write_html_report"]

_NODE_WIDTH = 150
_NODE_HEIGHT = 46
_LEVEL_HEIGHT = 110
_H_SPACING = 30
_MARGIN = 40


def _levels(tree: FaultTree) -> Dict[str, int]:
    """Distance of every node from the top event (top = level 0)."""
    levels: Dict[str, int] = {tree.top_event: 0}
    frontier = [tree.top_event]
    while frontier:
        next_frontier: List[str] = []
        for name in frontier:
            if not tree.is_gate(name):
                continue
            for child in tree.gates[name].children:
                level = levels[name] + 1
                if child not in levels or level > levels[child]:
                    levels[child] = level
                    next_frontier.append(child)
        frontier = next_frontier
    return levels


def _layout(tree: FaultTree) -> Tuple[Dict[str, Tuple[float, float]], float, float]:
    """Assign (x, y) centre coordinates to every node; returns positions and canvas size."""
    levels = _levels(tree)
    by_level: Dict[int, List[str]] = {}
    for name, level in levels.items():
        by_level.setdefault(level, []).append(name)
    for names in by_level.values():
        names.sort()

    max_per_level = max(len(names) for names in by_level.values())
    width = _MARGIN * 2 + max_per_level * (_NODE_WIDTH + _H_SPACING)
    height = _MARGIN * 2 + (max(by_level) + 1) * _LEVEL_HEIGHT

    positions: Dict[str, Tuple[float, float]] = {}
    for level, names in by_level.items():
        span = len(names) * (_NODE_WIDTH + _H_SPACING)
        start = (width - span) / 2 + (_NODE_WIDTH + _H_SPACING) / 2
        y = _MARGIN + level * _LEVEL_HEIGHT + _NODE_HEIGHT / 2
        for index, name in enumerate(names):
            positions[name] = (start + index * (_NODE_WIDTH + _H_SPACING), y)
    return positions, width, height


def _gate_label(tree: FaultTree, name: str) -> str:
    gate = tree.gates[name]
    if gate.gate_type is GateType.VOTING:
        return f"{gate.k}-of-{len(gate.children)}"
    return gate.gate_type.value.upper()


def _svg_fault_tree(tree: FaultTree, highlighted: set) -> str:
    positions, width, height = _layout(tree)
    parts: List[str] = [
        f'<svg viewBox="0 0 {width:.0f} {height:.0f}" xmlns="http://www.w3.org/2000/svg" '
        f'font-family="Helvetica, Arial, sans-serif" font-size="12">'
    ]

    # Edges first so nodes are drawn on top of them.
    for gate in tree.gates.values():
        x1, y1 = positions[gate.name]
        for child in gate.children:
            x2, y2 = positions[child]
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1 + _NODE_HEIGHT / 2:.1f}" '
                f'x2="{x2:.1f}" y2="{y2 - _NODE_HEIGHT / 2:.1f}" stroke="#777" />'
            )

    for name, (x, y) in positions.items():
        emphasised = name in highlighted
        if tree.is_gate(name):
            stroke = "#c0392b" if emphasised else "#2c3e50"
            stroke_width = 3 if name == tree.top_event else 1.5
            parts.append(
                f'<rect x="{x - _NODE_WIDTH / 2:.1f}" y="{y - _NODE_HEIGHT / 2:.1f}" '
                f'width="{_NODE_WIDTH}" height="{_NODE_HEIGHT}" rx="4" fill="#ecf0f1" '
                f'stroke="{stroke}" stroke-width="{stroke_width}" />'
            )
            label = f"{name} [{_gate_label(tree, name)}]"
            parts.append(
                f'<text x="{x:.1f}" y="{y + 4:.1f}" text-anchor="middle">{html.escape(label)}</text>'
            )
        else:
            event = tree.events[name]
            fill = "#f1948a" if emphasised else "#d6eaf8"
            stroke = "#c0392b" if emphasised else "#2471a3"
            parts.append(
                f'<ellipse cx="{x:.1f}" cy="{y:.1f}" rx="{_NODE_WIDTH / 2:.1f}" '
                f'ry="{_NODE_HEIGHT / 2:.1f}" fill="{fill}" stroke="{stroke}" stroke-width="2" />'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="middle">{html.escape(name)}</text>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{y + 14:.1f}" text-anchor="middle" fill="#555">'
                f"p={event.probability:g}</text>"
            )

    parts.append("</svg>")
    return "\n".join(parts)


def html_report(
    tree: FaultTree,
    result: MPMCSResult,
    *,
    title: Optional[str] = None,
) -> str:
    """Render a self-contained HTML page with the tree drawing and the MPMCS."""
    tree.validate()
    highlighted = set(result.events)
    svg = _svg_fault_tree(tree, highlighted)
    heading = html.escape(title or f"MPMCS analysis — {tree.name}")
    mpmcs_text = html.escape("{" + ", ".join(result.events) + "}")

    weight_rows = "\n".join(
        f"<tr><td>{html.escape(name)}</td><td>{tree.probability(name):g}</td>"
        f"<td>{weight:.5f}</td></tr>"
        for name, weight in sorted(result.weights.items())
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{heading}</title>
<style>
  body {{ font-family: Helvetica, Arial, sans-serif; margin: 2em; color: #222; }}
  h1 {{ font-size: 1.4em; }}
  table {{ border-collapse: collapse; margin: 1em 0; }}
  th, td {{ border: 1px solid #bbb; padding: 4px 10px; text-align: left; }}
  .mpmcs {{ color: #c0392b; font-weight: bold; }}
  .summary {{ background: #f8f9f9; padding: 1em; border: 1px solid #ddd; }}
  svg {{ width: 100%; height: auto; border: 1px solid #ddd; margin-top: 1em; }}
</style>
</head>
<body>
<h1>{heading}</h1>
<div class="summary">
  <p>Maximum Probability Minimal Cut Set:
     <span class="mpmcs">{mpmcs_text}</span>
     with joint probability <strong>{result.probability:.6g}</strong>
     (MaxSAT objective {result.cost:.5f}, engine {html.escape(result.engine or "-")}).</p>
</div>
<table>
  <thead><tr><th>MPMCS event</th><th>p(x<sub>i</sub>)</th><th>w<sub>i</sub> = -log p</th></tr></thead>
  <tbody>
{weight_rows}
  </tbody>
</table>
{svg}
</body>
</html>
"""


def write_html_report(
    tree: FaultTree,
    result: MPMCSResult,
    path: Union[str, Path],
    **kwargs: object,
) -> Path:
    """Write the HTML report to ``path`` and return the resolved path."""
    path = Path(path)
    path.write_text(html_report(tree, result, **kwargs), encoding="utf-8")
    return path
