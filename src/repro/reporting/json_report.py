"""JSON analysis report — the machine-readable equivalent of paper Fig. 2.

MPMCS4FTA runs on the command line and "outputs the solution in a JSON file
that is used to graphically display the fault tree and the MPMCS in a web
browser".  :func:`analysis_report` produces an equivalent document: the full
fault tree (nodes, gates, probabilities), the MPMCS with its joint
probability, the per-event ``-log`` weights (Table I), solver/engine
information and instance-size statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.api.report import AnalysisReport
from repro.core.pipeline import MPMCSResult
from repro.core.weights import log_weights
from repro.fta.serializers import to_json_document
from repro.fta.tree import FaultTree

__all__ = ["analysis_report", "report_document", "write_analysis_report"]

#: Report format version, bumped on breaking schema changes.
REPORT_VERSION = "1.0"

#: Version of the unified multi-analysis document (:func:`report_document`).
UNIFIED_REPORT_VERSION = "2.0"


def analysis_report(tree: FaultTree, result: MPMCSResult) -> Dict[str, Any]:
    """Build the analysis report document for ``tree`` and its MPMCS ``result``."""
    probabilities = tree.probabilities()
    weights = log_weights(probabilities)
    mpmcs_members = set(result.events)

    nodes = []
    for event in tree.events.values():
        nodes.append(
            {
                "name": event.name,
                "kind": "basic-event",
                "probability": event.probability,
                "weight": weights[event.name],
                "description": event.description,
                "in_mpmcs": event.name in mpmcs_members,
            }
        )
    for gate in tree.gates.values():
        nodes.append(
            {
                "name": gate.name,
                "kind": "gate",
                "type": gate.gate_type.value,
                "k": gate.k,
                "children": list(gate.children),
                "description": gate.description,
            }
        )

    return {
        "report_version": REPORT_VERSION,
        "tool": "repro-mpmcs4fta",
        "tree": to_json_document(tree),
        "nodes": nodes,
        "solution": {
            "mpmcs": list(result.events),
            "probability": result.probability,
            "cost": result.cost,
            "weights": dict(result.weights),
            "size": result.size,
        },
        "solver": {
            "engine": result.engine,
            "solve_time_s": result.solve_time,
            "total_time_s": result.total_time,
            "portfolio": _portfolio_section(result),
        },
        "instance": {
            "variables": result.num_vars,
            "hard_clauses": result.num_hard,
            "soft_clauses": result.num_soft,
            "auxiliary_variables": result.num_aux_vars,
        },
        "statistics": tree.statistics(),
    }


def _portfolio_section(result: MPMCSResult) -> Optional[Dict[str, Any]]:
    if result.portfolio is None:
        return None
    return {
        "winner": result.portfolio.winner,
        "engine_times_s": dict(result.portfolio.engine_times),
        "engine_statuses": dict(result.portfolio.engine_statuses),
        "total_time_s": result.portfolio.total_time,
    }


def report_document(report: AnalysisReport) -> Dict[str, Any]:
    """Unified JSON document for an :class:`~repro.api.report.AnalysisReport`.

    Contains the serialised fault tree, the tree statistics and one section
    per requested analysis (``report.to_dict()``).  When the report includes
    an MPMCS, the legacy Fig. 2-style ``solution`` / ``solver`` / ``instance``
    sections are embedded as well so existing consumers keep working.
    """
    document: Dict[str, Any] = {
        "report_version": UNIFIED_REPORT_VERSION,
        "tool": "repro-mpmcs4fta",
        "tree": to_json_document(report.tree),
        "statistics": report.tree.statistics(),
        "results": report.to_dict(),
    }
    result = report.mpmcs_result
    if result is not None:
        legacy = analysis_report(report.tree, result)
        document["solution"] = legacy["solution"]
        document["solver"] = legacy["solver"]
        document["instance"] = legacy["instance"]
    return document


def write_analysis_report(
    tree: FaultTree,
    result: MPMCSResult,
    path: Union[str, Path],
    *,
    indent: int = 2,
) -> Path:
    """Write the analysis report to ``path`` and return the resolved path."""
    path = Path(path)
    document = analysis_report(tree, result)
    path.write_text(json.dumps(document, indent=indent) + "\n", encoding="utf-8")
    return path
