"""Graphviz DOT export of fault trees with optional MPMCS highlighting.

The generated DOT text renders gates as boxes (labelled AND / OR / k-of-n),
basic events as ellipses annotated with their probabilities, and — when a
result is supplied — the MPMCS members filled in red, mirroring the visual
emphasis of the MPMCS4FTA browser view (paper Fig. 2).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["to_dot"]

_GATE_LABEL = {GateType.AND: "AND", GateType.OR: "OR"}


def to_dot(
    tree: FaultTree,
    *,
    highlight: Optional[Iterable[str]] = None,
    graph_name: str = "fault_tree",
    rankdir: str = "TB",
) -> str:
    """Serialise ``tree`` to Graphviz DOT text.

    Parameters
    ----------
    highlight:
        Event (or gate) names to emphasise — typically the MPMCS members.
    graph_name / rankdir:
        Cosmetic Graphviz attributes.
    """
    tree.validate()
    highlighted: Set[str] = set(highlight or ())
    lines = [
        f"digraph {_dot_id(graph_name)} {{",
        f"  rankdir={rankdir};",
        "  node [fontname=\"Helvetica\"];",
    ]

    for gate in tree.gates.values():
        if gate.gate_type is GateType.VOTING:
            label = f"{gate.name}\\n{gate.k}-of-{len(gate.children)}"
        else:
            label = f"{gate.name}\\n{_GATE_LABEL[gate.gate_type]}"
        attributes = [f'label="{label}"', "shape=box"]
        if gate.name == tree.top_event:
            attributes.append("style=bold")
        if gate.name in highlighted:
            attributes.append('color="red"')
        lines.append(f"  {_dot_id(gate.name)} [{', '.join(attributes)}];")

    for event in tree.events.values():
        label = f"{event.name}\\np={event.probability:g}"
        attributes = [f'label="{label}"', "shape=ellipse"]
        if event.name in highlighted:
            attributes.append('style=filled, fillcolor="indianred1", color="red"')
        lines.append(f"  {_dot_id(event.name)} [{', '.join(attributes)}];")

    for gate in tree.gates.values():
        for child in gate.children:
            lines.append(f"  {_dot_id(gate.name)} -> {_dot_id(child)};")

    lines.append("}")
    return "\n".join(lines) + "\n"


def _dot_id(name: str) -> str:
    """Quote a node identifier for DOT output."""
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'
