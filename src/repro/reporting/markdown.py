"""Full Markdown analysis report.

Combines, in one human-readable document, the pieces an analyst would want
after an MPMCS run: the tree statistics, the Table I-style weight table, the
MPMCS itself, an optional ranking of the top-k cut sets, importance measures,
single points of failure and the solver/portfolio information.  Used by the
CLI's ``report`` sub-command and by the examples.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.importance import ImportanceMeasures
from repro.core.pipeline import MPMCSResult
from repro.core.topk import RankedCutSet
from repro.fta.tree import FaultTree
from repro.reporting.tables import markdown_table, weights_table

__all__ = ["markdown_report", "write_markdown_report"]


def markdown_report(
    tree: FaultTree,
    result: MPMCSResult,
    *,
    ranking: Optional[Sequence[RankedCutSet]] = None,
    importance: Optional[Dict[str, ImportanceMeasures]] = None,
    spofs: Optional[Iterable[tuple]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a Markdown analysis report.

    Parameters
    ----------
    tree / result:
        The analysed fault tree and its MPMCS result.
    ranking:
        Optional top-k cut sets (from :func:`repro.core.topk.enumerate_mpmcs`).
    importance:
        Optional importance measures keyed by event name.
    spofs:
        Optional single points of failure as ``(event, probability)`` pairs.
    title:
        Report title; defaults to the tree name.
    """
    tree.validate()
    lines: List[str] = []
    lines.append(f"# MPMCS analysis — {title or tree.name}")
    lines.append("")

    statistics = tree.statistics()
    lines.append("## Fault tree")
    lines.append("")
    lines.append(
        markdown_table(
            ["Nodes", "Basic events", "Gates", "AND", "OR", "Voting", "Depth"],
            [[
                statistics["num_nodes"],
                statistics["num_basic_events"],
                statistics["num_gates"],
                statistics["num_and_gates"],
                statistics["num_or_gates"],
                statistics["num_voting_gates"],
                statistics["depth"],
            ]],
        )
    )
    lines.append("")

    lines.append("## Event probabilities and -log weights (Table I)")
    lines.append("")
    lines.append(weights_table(tree))
    lines.append("")

    lines.append("## Maximum Probability Minimal Cut Set")
    lines.append("")
    lines.append(f"* **MPMCS**: {{{', '.join(result.events)}}}")
    lines.append(f"* **Joint probability**: {result.probability:.6g}")
    lines.append(f"* **MaxSAT objective (-log cost)**: {result.cost:.6f}")
    lines.append(f"* **Cut set size**: {result.size}")
    lines.append(f"* **Winning engine**: {result.engine}")
    lines.append(f"* **Solve time**: {result.solve_time * 1000.0:.2f} ms")
    lines.append("")

    if ranking:
        lines.append("## Most probable minimal cut sets")
        lines.append("")
        rows = [
            [entry.rank, "{" + ", ".join(entry.events) + "}", f"{entry.probability:.6g}",
             f"{entry.cost:.4f}"]
            for entry in ranking
        ]
        lines.append(markdown_table(["Rank", "Cut set", "Probability", "-log cost"], rows))
        lines.append("")

    if importance:
        lines.append("## Importance measures")
        lines.append("")
        rows = []
        ordered = sorted(importance.values(), key=lambda m: -m.fussell_vesely)
        for measure in ordered:
            rows.append(
                [
                    measure.event,
                    f"{measure.probability:g}",
                    f"{measure.birnbaum:.4g}",
                    f"{measure.criticality:.4g}",
                    f"{measure.fussell_vesely:.4g}",
                    f"{measure.risk_achievement_worth:.4g}",
                    f"{measure.risk_reduction_worth:.4g}",
                ]
            )
        lines.append(
            markdown_table(
                ["Event", "p", "Birnbaum", "Criticality", "Fussell-Vesely", "RAW", "RRW"],
                rows,
            )
        )
        lines.append("")

    if spofs is not None:
        lines.append("## Single points of failure")
        lines.append("")
        spof_list = list(spofs)
        if spof_list:
            rows = [[name, f"{probability:g}"] for name, probability in spof_list]
            lines.append(markdown_table(["Event", "Probability"], rows))
        else:
            lines.append("None — no single basic event triggers the top event.")
        lines.append("")

    lines.append("## Solver")
    lines.append("")
    lines.append(
        markdown_table(
            ["Variables", "Hard clauses", "Soft clauses", "Auxiliary variables"],
            [[result.num_vars, result.num_hard, result.num_soft, result.num_aux_vars]],
        )
    )
    if result.portfolio is not None:
        lines.append("")
        lines.append(f"Portfolio winner: **{result.portfolio.winner}**")
        lines.append("")
        rows = [
            [name, result.portfolio.engine_statuses.get(name, "?"),
             f"{seconds * 1000.0:.2f} ms"]
            for name, seconds in sorted(result.portfolio.engine_times.items())
        ]
        lines.append(markdown_table(["Engine", "Status", "Time"], rows))
    lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    tree: FaultTree,
    result: MPMCSResult,
    path: Union[str, Path],
    **kwargs: object,
) -> Path:
    """Write the Markdown report to ``path`` and return the resolved path."""
    path = Path(path)
    path.write_text(markdown_report(tree, result, **kwargs), encoding="utf-8")
    return path
