"""Markdown table helpers, including the Table I reproduction.

:func:`weights_table` renders the probabilities and ``-log`` weights of a
fault tree's basic events in the layout of Table I of the paper; it is used by
benchmark E1 and the quickstart example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from repro.core.weights import log_weights
from repro.fta.tree import FaultTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenarios -> api -> reporting)
    from repro.scenarios.planner import ParetoFrontier
    from repro.scenarios.report import ScenarioReport

__all__ = ["frontier_table", "markdown_table", "scenario_delta_table", "weights_table"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple Markdown table (no alignment markers)."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def weights_table(tree: FaultTree, *, digits: int = 5) -> str:
    """Reproduce Table I: per-event probabilities and ``w_i = -log(p(x_i))``.

    Events are listed in name order; probabilities are shown as given and the
    weights rounded to ``digits`` decimal places (the paper prints five).
    """
    tree.validate()
    probabilities = tree.probabilities()
    weights = log_weights(probabilities)
    names = sorted(probabilities)
    headers = ["Probs."] + names
    prob_row = ["p(xi)"] + [f"{probabilities[name]:g}" for name in names]
    weight_row = ["wi"] + [f"{weights[name]:.{digits}f}" for name in names]
    return markdown_table(headers, [prob_row, weight_row])


def _signed(value: float) -> str:
    return f"{value:+.4e}"


def frontier_table(frontier: "ParetoFrontier") -> str:
    """Cost-vs-risk table of a :class:`~repro.scenarios.planner.ParetoFrontier`.

    One row per Pareto-optimal point: the spend, the purchased hardening
    actions, the residual MPMCS with its probability and delta against the
    base model, and the exact top-event probability under the selection.  The
    first row is always the base model (cost 0, nothing purchased).
    """
    headers = ["cost", "actions", "MPMCS", "P(MPMCS)", "ΔP(MPMCS)", "P(top)"]
    rows: List[Sequence[object]] = []
    for point in frontier.points:
        actions = ", ".join(action.label for action in point.selected) or "(base)"
        rows.append(
            [
                f"{point.cost:g}",
                actions,
                "{" + ", ".join(point.mpmcs) + "}",
                f"{point.mpmcs_probability:.4e}",
                _signed(point.mpmcs_probability - frontier.base_mpmcs_probability),
                f"{point.top_event:.4e}",
            ]
        )
    return markdown_table(headers, rows)


def scenario_delta_table(report: "ScenarioReport", *, limit: int = 0) -> str:
    """Base-vs-scenario delta table of a :class:`~repro.scenarios.ScenarioReport`.

    One row per scenario: top-event probability with its delta against the
    base model, the scenario's MPMCS with its probability delta, and a
    ``changed`` marker when the weakest link itself moved.  ``limit`` caps
    the number of rows (0 = all); failed scenarios render their error.
    """
    headers = ["scenario", "P(top)", "ΔP(top)", "MPMCS", "P(MPMCS)", "ΔP(MPMCS)", "changed"]
    rows: List[Sequence[object]] = []
    outcomes = report.outcomes[:limit] if limit > 0 else report.outcomes
    for outcome in outcomes:
        if not outcome.ok:
            rows.append([outcome.name, f"error: {outcome.error}", "", "", "", "", ""])
            continue
        rows.append(
            [
                outcome.name,
                f"{outcome.top_event:.4e}" if outcome.top_event is not None else "-",
                _signed(outcome.top_event_delta) if outcome.top_event_delta is not None else "-",
                "{" + ", ".join(outcome.mpmcs_events) + "}" if outcome.mpmcs_events else "-",
                (
                    f"{outcome.mpmcs_probability:.4e}"
                    if outcome.mpmcs_probability is not None
                    else "-"
                ),
                _signed(outcome.mpmcs_delta) if outcome.mpmcs_delta is not None else "-",
                "yes" if outcome.mpmcs_changed else "",
            ]
        )
    return markdown_table(headers, rows)
