"""Markdown table helpers, including the Table I reproduction.

:func:`weights_table` renders the probabilities and ``-log`` weights of a
fault tree's basic events in the layout of Table I of the paper; it is used by
benchmark E1 and the quickstart example.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.weights import log_weights
from repro.fta.tree import FaultTree

__all__ = ["markdown_table", "weights_table"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple Markdown table (no alignment markers)."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def weights_table(tree: FaultTree, *, digits: int = 5) -> str:
    """Reproduce Table I: per-event probabilities and ``w_i = -log(p(x_i))``.

    Events are listed in name order; probabilities are shown as given and the
    weights rounded to ``digits`` decimal places (the paper prints five).
    """
    tree.validate()
    probabilities = tree.probabilities()
    weights = log_weights(probabilities)
    names = sorted(probabilities)
    headers = ["Probs."] + names
    prob_row = ["p(xi)"] + [f"{probabilities[name]:g}" for name in names]
    weight_row = ["wi"] + [f"{weights[name]:.{digits}f}" for name in names]
    return markdown_table(headers, [prob_row, weight_row])
