"""Result reporting: JSON (Fig. 2 equivalent), Graphviz DOT, ASCII and Markdown.

MPMCS4FTA writes its solution to a JSON file that a browser-based viewer then
renders (paper Fig. 2).  This package reproduces the machine-readable half of
that pipeline and adds terminal-friendly renderings:

* :mod:`repro.reporting.json_report` — the analysis report document;
* :mod:`repro.reporting.dot`         — Graphviz DOT export with the MPMCS highlighted;
* :mod:`repro.reporting.ascii_art`   — plain-text tree rendering for the CLI;
* :mod:`repro.reporting.tables`      — Markdown tables (Table I reproduction);
* :mod:`repro.reporting.markdown`    — full Markdown analysis report;
* :mod:`repro.reporting.html`        — self-contained HTML/SVG viewer (the
  browser-rendered half of Fig. 2);
* :mod:`repro.reporting.unified`     — one entry point rendering a
  :class:`repro.api.AnalysisReport` in any of the formats above.
"""

from repro.reporting.json_report import analysis_report, report_document, write_analysis_report
from repro.reporting.dot import to_dot
from repro.reporting.ascii_art import render_tree
from repro.reporting.html import html_report, write_html_report
from repro.reporting.markdown import markdown_report, write_markdown_report
from repro.reporting.tables import (
    frontier_table,
    markdown_table,
    scenario_delta_table,
    weights_table,
)
from repro.reporting.unified import (
    FORMATS,
    SCENARIO_FORMATS,
    render_profile,
    render_report,
    render_scenario_report,
    write_report,
)

__all__ = [
    "FORMATS",
    "SCENARIO_FORMATS",
    "analysis_report",
    "html_report",
    "markdown_report",
    "frontier_table",
    "markdown_table",
    "render_profile",
    "render_report",
    "render_scenario_report",
    "render_tree",
    "report_document",
    "scenario_delta_table",
    "to_dot",
    "weights_table",
    "write_analysis_report",
    "write_html_report",
    "write_markdown_report",
    "write_report",
]
