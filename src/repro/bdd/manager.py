"""ROBDD manager.

A classical reduced ordered binary decision diagram implementation:

* nodes are integers; ``0`` and ``1`` are the terminal nodes;
* every internal node is a triple ``(level, low, high)`` stored in a unique
  table, so structurally equal functions share the same node (canonicity);
* Boolean operations are implemented through the ``ite`` (if-then-else)
  operator with a computed-table cache;
* fault trees and :mod:`repro.logic` formulas are compiled bottom-up.

The manager is written for clarity rather than raw speed: it comfortably
handles the fault trees used in the benchmarks (thousands of nodes with a
sensible variable order) while remaining easy to audit.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import BDDError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree
from repro.logic.formula import And, AtLeast, Const, Formula, Implies, Not, Or, Var, Xor

__all__ = ["BDDManager", "BDD"]

#: Terminal node identifiers.
FALSE_NODE = 0
TRUE_NODE = 1


class BDD:
    """A handle to a BDD function: a node within a :class:`BDDManager`."""

    __slots__ = ("manager", "node")

    def __init__(self, manager: "BDDManager", node: int) -> None:
        self.manager = manager
        self.node = node

    # Boolean operator sugar -------------------------------------------------------

    def __and__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager.apply_and(self.node, other.node))

    def __or__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager.apply_or(self.node, other.node))

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager.negate(self.node))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDD) and other.manager is self.manager and other.node == self.node
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def _check(self, other: "BDD") -> None:
        if other.manager is not self.manager:
            raise BDDError("cannot combine BDDs from different managers")

    # Queries ----------------------------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self.node == TRUE_NODE

    @property
    def is_false(self) -> bool:
        return self.node == FALSE_NODE

    def size(self) -> int:
        """Number of distinct internal nodes reachable from this function."""
        return self.manager.size(self.node)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function under a named variable assignment."""
        return self.manager.evaluate(self.node, assignment)


class BDDManager:
    """Unique-table based ROBDD manager with a fixed variable order."""

    def __init__(self, variable_order: Sequence[str]) -> None:
        if not variable_order:
            raise BDDError("variable order must contain at least one variable")
        if len(set(variable_order)) != len(variable_order):
            raise BDDError("variable order contains duplicates")
        # `ite` and the cut-set/probability passes recurse proportionally to the
        # number of variable levels; make sure deep orders do not hit CPython's
        # default recursion limit.
        required_limit = 4 * len(variable_order) + 1000
        if sys.getrecursionlimit() < required_limit:
            sys.setrecursionlimit(required_limit)
        self.order: Tuple[str, ...] = tuple(variable_order)
        self._level_of: Dict[str, int] = {name: i for i, name in enumerate(self.order)}

        # node id -> (level, low, high); ids 0 and 1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._neg_cache: Dict[int, int] = {}

    # -- node construction ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ever created (including both terminals)."""
        return len(self._nodes)

    def level_of(self, name: str) -> int:
        try:
            return self._level_of[name]
        except KeyError as exc:
            raise BDDError(f"variable {name!r} is not part of this manager's order") from exc

    def var_at_level(self, level: int) -> str:
        return self.order[level]

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def node_triple(self, node: int) -> Tuple[int, int, int]:
        """Return the ``(level, low, high)`` triple of an internal node."""
        if node in (FALSE_NODE, TRUE_NODE):
            raise BDDError("terminal nodes have no (level, low, high) triple")
        return self._nodes[node]

    def true(self) -> BDD:
        return BDD(self, TRUE_NODE)

    def false(self) -> BDD:
        return BDD(self, FALSE_NODE)

    def var(self, name: str) -> BDD:
        """The BDD of a single variable."""
        level = self.level_of(name)
        return BDD(self, self._make_node(level, FALSE_NODE, TRUE_NODE))

    # -- core operations ---------------------------------------------------------------

    def _level(self, node: int) -> int:
        if node in (FALSE_NODE, TRUE_NODE):
            return len(self.order)  # terminals sit below every variable level
        return self._nodes[node][0]

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """Return (low, high) cofactors of ``node`` with respect to ``level``."""
        if node in (FALSE_NODE, TRUE_NODE):
            return node, node
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the function ``(f ∧ g) ∨ (¬f ∧ h)``."""
        # Terminal cases.
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE and h == FALSE_NODE:
            return f

        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        level = min(self._level(f), self._level(g), self._level(h))
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        h_low, h_high = self._cofactors(h, level)
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        result = self._make_node(level, low, high)
        self._ite_cache[key] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE_NODE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE_NODE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def negate(self, f: int) -> int:
        if f == TRUE_NODE:
            return FALSE_NODE
        if f == FALSE_NODE:
            return TRUE_NODE
        cached = self._neg_cache.get(f)
        if cached is not None:
            return cached
        level, low, high = self._nodes[f]
        result = self._make_node(level, self.negate(low), self.negate(high))
        self._neg_cache[f] = result
        self._neg_cache[result] = f
        return result

    # -- compilation --------------------------------------------------------------------

    def from_formula(self, formula: Formula) -> BDD:
        """Compile a :class:`~repro.logic.formula.Formula` into a BDD."""
        cache: Dict[Formula, int] = {}
        return BDD(self, self._compile_formula(formula, cache))

    def _compile_formula(self, node: Formula, cache: Dict[Formula, int]) -> int:
        cached = cache.get(node)
        if cached is not None:
            return cached
        if isinstance(node, Const):
            result = TRUE_NODE if node.value else FALSE_NODE
        elif isinstance(node, Var):
            result = self.var(node.name).node
        elif isinstance(node, Not):
            result = self.negate(self._compile_formula(node.operand, cache))
        elif isinstance(node, And):
            result = TRUE_NODE
            for op in node.operands:
                result = self.apply_and(result, self._compile_formula(op, cache))
        elif isinstance(node, Or):
            result = FALSE_NODE
            for op in node.operands:
                result = self.apply_or(result, self._compile_formula(op, cache))
        elif isinstance(node, Implies):
            antecedent = self._compile_formula(node.antecedent, cache)
            consequent = self._compile_formula(node.consequent, cache)
            result = self.apply_or(self.negate(antecedent), consequent)
        elif isinstance(node, Xor):
            result = FALSE_NODE
            for op in node.operands:
                result = self.apply_xor(result, self._compile_formula(op, cache))
        elif isinstance(node, AtLeast):
            children = [self._compile_formula(op, cache) for op in node.operands]
            result = self._compile_threshold(node.k, children)
        else:  # pragma: no cover - defensive
            raise BDDError(f"unsupported formula node {type(node).__name__}")
        cache[node] = result
        return result

    def _compile_threshold(self, k: int, children: List[int]) -> int:
        """Compile "at least k of the children" over already-compiled child BDDs."""
        if k <= 0:
            return TRUE_NODE
        if k > len(children):
            return FALSE_NODE
        # counts[j] = BDD of "at least j+1 of the children processed so far".
        counts: List[int] = [FALSE_NODE] * k
        for child in children:
            new_counts = list(counts)
            for j in range(k - 1, -1, -1):
                at_least_j_before = counts[j - 1] if j > 0 else TRUE_NODE
                new_counts[j] = self.apply_or(counts[j], self.apply_and(child, at_least_j_before))
            counts = new_counts
        return counts[k - 1]

    def from_fault_tree(self, tree: FaultTree) -> BDD:
        """Compile a fault tree's structure function into a BDD."""
        tree.validate()
        compiled: Dict[str, int] = {}
        for name in tree.topological_order():
            if tree.is_event(name):
                compiled[name] = self.var(name).node
                continue
            gate = tree.gates[name]
            children = [compiled[child] for child in gate.children]
            if gate.gate_type is GateType.AND:
                result = TRUE_NODE
                for child in children:
                    result = self.apply_and(result, child)
            elif gate.gate_type is GateType.OR:
                result = FALSE_NODE
                for child in children:
                    result = self.apply_or(result, child)
            else:
                result = self._compile_threshold(gate.k or 1, children)
            compiled[name] = result
        return BDD(self, compiled[tree.top_event])

    # -- queries -------------------------------------------------------------------------

    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool:
        current = node
        while current not in (FALSE_NODE, TRUE_NODE):
            level, low, high = self._nodes[current]
            current = high if assignment.get(self.order[level], False) else low
        return current == TRUE_NODE

    def size(self, node: int) -> int:
        """Number of internal nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in (FALSE_NODE, TRUE_NODE) or current in seen:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.extend((low, high))
        return len(seen)
