"""Minimal cut set extraction from a BDD (Rauzy-style).

For a coherent (monotone) structure function, the minimal cut sets can be read
off the BDD with a bottom-up pass: at every node ``(x, low, high)`` the cut
sets are those of the low branch plus ``{x} ∪ c`` for every cut set ``c`` of
the high branch that is not already covered by the low branch.  A final
subsumption pass guarantees minimality even for non-coherent inputs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.analysis.cutsets import CutSetCollection, minimise_cut_sets
from repro.bdd.manager import BDD, BDDManager, FALSE_NODE, TRUE_NODE
from repro.bdd.ordering import variable_order
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = ["bdd_minimal_cut_sets", "cut_sets_of_bdd"]

#: Default cap on the number of cut sets collected before aborting.
DEFAULT_MAX_CUT_SETS = 500_000


def cut_sets_of_bdd(
    function: BDD,
    *,
    max_cut_sets: int = DEFAULT_MAX_CUT_SETS,
) -> List[FrozenSet[str]]:
    """Extract the minimal cut sets of a compiled BDD function."""
    manager = function.manager
    cache: Dict[int, List[FrozenSet[str]]] = {
        FALSE_NODE: [],
        TRUE_NODE: [frozenset()],
    }

    def visit(node: int) -> List[FrozenSet[str]]:
        cached = cache.get(node)
        if cached is not None:
            return cached
        level, low, high = manager.node_triple(node)
        var_name = manager.var_at_level(level)
        low_sets = visit(low)
        high_sets = visit(high)
        result: List[FrozenSet[str]] = list(low_sets)
        for cut in high_sets:
            candidate = cut | {var_name}
            if not any(existing <= candidate for existing in low_sets):
                result.append(candidate)
        if len(result) > max_cut_sets:
            raise AnalysisError(
                f"BDD cut-set extraction exceeded the limit of {max_cut_sets} sets"
            )
        cache[node] = result
        return result

    return minimise_cut_sets(visit(function.node))


def bdd_minimal_cut_sets(
    tree: FaultTree,
    *,
    heuristic: str = "dfs",
    max_cut_sets: int = DEFAULT_MAX_CUT_SETS,
) -> CutSetCollection:
    """Compile ``tree`` to a BDD and extract its minimal cut sets."""
    manager = BDDManager(variable_order(tree, heuristic=heuristic))
    function = manager.from_fault_tree(tree)
    cut_sets = cut_sets_of_bdd(function, max_cut_sets=max_cut_sets)
    return CutSetCollection(cut_sets=cut_sets, probabilities=tree.probabilities())
