"""Reduced Ordered Binary Decision Diagram (ROBDD) engine.

The paper's future work proposes comparing the MaxSAT formulation against
BDD-based techniques; this package implements that comparison path from
scratch:

* :mod:`repro.bdd.manager` — the ROBDD manager (unique table, computed-table
  memoisation, ``ite``/``apply``/``negate``, formula and fault-tree
  compilation).
* :mod:`repro.bdd.ordering` — variable-ordering heuristics.
* :mod:`repro.bdd.cutsets` — minimal cut set extraction (Rauzy-style).
* :mod:`repro.bdd.probability` — exact top-event probability by Shannon
  expansion, and the BDD-based MPMCS baseline used in benchmark E6.
"""

from repro.bdd.manager import BDD, BDDManager
from repro.bdd.ordering import variable_order
from repro.bdd.cutsets import bdd_minimal_cut_sets, cut_sets_of_bdd
from repro.bdd.probability import (
    bdd_mpmcs,
    mpmcs_of_bdd,
    probability_of_bdd,
    top_event_probability,
)

__all__ = [
    "BDD",
    "BDDManager",
    "bdd_minimal_cut_sets",
    "bdd_mpmcs",
    "cut_sets_of_bdd",
    "mpmcs_of_bdd",
    "probability_of_bdd",
    "top_event_probability",
    "variable_order",
]
