"""Quantitative queries over BDDs: exact top-event probability and MPMCS.

Two complementary algorithms, both linear in the number of BDD nodes:

* :func:`top_event_probability` — exact probability of the top event by
  Shannon expansion (``P(node) = p(x) * P(high) + (1 - p(x)) * P(low)``),
  independent basic events assumed.  This is the textbook BDD-based
  quantitative FTA the paper's survey references describe.
* :func:`bdd_mpmcs` — the Maximum Probability Minimal Cut Set computed
  directly on the BDD with dynamic programming: for every node, the best
  (highest-probability) way to reach the ``1`` terminal either avoids the
  node's variable (low branch, factor 1) or includes it (high branch, factor
  ``p(x)``).  Because the structure function is monotone and probabilities are
  at most 1, the optimal set of included variables is an inclusion-minimal cut
  set — the MPMCS.  This is the BDD-based baseline of benchmark E6 and the
  comparison the paper lists as future work.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.bdd.manager import BDD, BDDManager, FALSE_NODE, TRUE_NODE
from repro.bdd.ordering import variable_order
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = ["top_event_probability", "bdd_mpmcs"]


def top_event_probability(
    tree: FaultTree,
    *,
    heuristic: str = "dfs",
) -> float:
    """Exact top-event probability of ``tree`` via its BDD."""
    manager = BDDManager(variable_order(tree, heuristic=heuristic))
    function = manager.from_fault_tree(tree)
    return _probability(function, tree.probabilities())


def _probability(function: BDD, probabilities: Mapping[str, float]) -> float:
    manager = function.manager
    cache: Dict[int, float] = {FALSE_NODE: 0.0, TRUE_NODE: 1.0}

    def visit(node: int) -> float:
        cached = cache.get(node)
        if cached is not None:
            return cached
        level, low, high = manager.node_triple(node)
        name = manager.var_at_level(level)
        try:
            p = probabilities[name]
        except KeyError as exc:
            raise AnalysisError(f"no probability known for event {name!r}") from exc
        value = p * visit(high) + (1.0 - p) * visit(low)
        cache[node] = value
        return value

    return visit(function.node)


def bdd_mpmcs(
    tree: FaultTree,
    *,
    heuristic: str = "dfs",
) -> Tuple[Tuple[str, ...], float]:
    """Compute the MPMCS of ``tree`` directly on its BDD.

    Returns ``(sorted event tuple, probability)``.  Raises
    :class:`AnalysisError` when the top event cannot occur at all.
    """
    manager = BDDManager(variable_order(tree, heuristic=heuristic))
    function = manager.from_fault_tree(tree)
    probabilities = tree.probabilities()

    if function.is_false:
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set: the top event cannot occur")

    # best[node] = highest product of included-variable probabilities over all
    # paths from `node` to the TRUE terminal (None when TRUE is unreachable).
    best: Dict[int, Optional[float]] = {FALSE_NODE: None, TRUE_NODE: 1.0}

    def visit(node: int) -> Optional[float]:
        cached = best.get(node, "missing")
        if cached != "missing":
            return cached  # type: ignore[return-value]
        level, low, high = manager.node_triple(node)
        name = manager.var_at_level(level)
        low_best = visit(low)
        high_best = visit(high)
        candidates = []
        if low_best is not None:
            candidates.append(low_best)
        if high_best is not None:
            candidates.append(high_best * probabilities[name])
        value = max(candidates) if candidates else None
        best[node] = value
        return value

    top_value = visit(function.node)
    if top_value is None:  # pragma: no cover - is_false already caught this
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set")

    # Backtrack to extract the optimal variable set.
    members = []
    node = function.node
    while node not in (FALSE_NODE, TRUE_NODE):
        level, low, high = manager.node_triple(node)
        name = manager.var_at_level(level)
        low_best = best.get(low)
        high_best = best.get(high)
        include_value = high_best * probabilities[name] if high_best is not None else None
        if low_best is not None and (include_value is None or low_best >= include_value):
            node = low
        else:
            members.append(name)
            node = high

    probability = 1.0
    for name in members:
        probability *= probabilities[name]
    return tuple(sorted(members)), probability
