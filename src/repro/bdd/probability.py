"""Quantitative queries over BDDs: exact top-event probability and MPMCS.

Two complementary algorithms, both linear in the number of BDD nodes:

* :func:`top_event_probability` — exact probability of the top event by
  Shannon expansion (``P(node) = p(x) * P(high) + (1 - p(x)) * P(low)``),
  independent basic events assumed.  This is the textbook BDD-based
  quantitative FTA the paper's survey references describe.
* :func:`bdd_mpmcs` — the Maximum Probability Minimal Cut Set computed
  directly on the BDD with dynamic programming: for every node, the best
  (highest-probability) way to reach the ``1`` terminal either avoids the
  node's variable (low branch, factor 1) or includes it (high branch, factor
  ``p(x)``).  Because the structure function is monotone and probabilities are
  at most 1, the optimal set of included variables is an inclusion-minimal cut
  set — the MPMCS.  This is the BDD-based baseline of benchmark E6 and the
  comparison the paper lists as future work.

Both queries are also available on an already-compiled function
(:func:`probability_of_bdd`, :func:`mpmcs_of_bdd`) so callers holding a cached
BDD — e.g. the :mod:`repro.api` artifact cache — can avoid recompiling the
tree for every query.

Tie-breaking
------------
When several minimal cut sets share the maximum probability, the dynamic
programme breaks ties canonically: the smallest cut set wins, and among equal
sizes the lexicographically smallest sorted event tuple.  This matches the
ordering of :meth:`repro.analysis.cutsets.CutSetCollection.ranked`, so the
BDD backend, MOCUS, brute force and the (canonicalised) MaxSAT pipeline all
return the identical MPMCS on ties — cross-backend equality checks stay
reproducible.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bdd.manager import BDD, BDDManager, FALSE_NODE, TRUE_NODE
from repro.bdd.ordering import variable_order
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = [
    "FLAT_FORM_CACHE_LIMIT",
    "FlatBDD",
    "FlatFormCache",
    "bdd_mpmcs",
    "flatten_bdd",
    "mpmcs_of_bdd",
    "probability_of_bdd",
    "top_event_probability",
]

#: Default bound on memoised :class:`FlatBDD` forms per BDD manager.  Flat
#: forms are proportional in size to their diagram, and long-lived monitors /
#: services compile many transient functions through one manager — an
#: unbounded memo is a slow leak there.  256 diagrams is far beyond any
#: working set a sweep or monitor batch touches.
FLAT_FORM_CACHE_LIMIT = 256


class FlatFormCache:
    """LRU memo of :class:`FlatBDD` forms, keyed by hash-consed root node.

    Lives on the owning :class:`~repro.bdd.manager.BDDManager` (created on
    first :func:`flatten_bdd` call).  Reports its effectiveness the same way
    :meth:`repro.api.cache.ArtifactCache.stats` does: cumulative ``hits`` /
    ``misses`` / ``evictions`` next to the current ``entries``/``limit``.
    """

    __slots__ = ("limit", "hits", "misses", "evictions", "_entries")

    def __init__(self, limit: int = FLAT_FORM_CACHE_LIMIT) -> None:
        if limit < 1:
            raise AnalysisError(f"flat-form cache limit must be at least 1, got {limit}")
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[int, FlatBDD]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node: int) -> Optional[FlatBDD]:
        flat = self._entries.get(node)
        if flat is None:
            self.misses += 1
            return None
        self._entries.move_to_end(node)
        self.hits += 1
        return flat

    def put(self, node: int, flat: FlatBDD) -> None:
        self._entries[node] = flat
        self._entries.move_to_end(node)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus current occupancy (ArtifactCache-style)."""
        return {
            "entries": len(self._entries),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class FlatBDD:
    """A compiled BDD function as flat topologically-ordered node arrays.

    Node ids are remapped to a compact range: ``0`` is the FALSE terminal,
    ``1`` the TRUE terminal, and internal nodes occupy ``2 .. 1 + n`` in
    children-first (topological) order, the root last.  A single forward pass
    over the internal nodes therefore evaluates the function — this is the
    form the :mod:`repro.kernels` batch evaluators consume, and what the
    recursive :func:`probability_of_bdd` walk is rewritten on top of.

    ``events`` lists the distinct variable names the function mentions;
    ``var_index[i]``, ``low[i]`` and ``high[i]`` describe internal node
    ``2 + i``: its variable (an index into ``events``) and its two children
    (compact node ids).
    """

    events: Tuple[str, ...]
    var_index: array  # signed 64-bit ints, one per internal node
    low: array
    high: array
    root: int  # compact id of the function's root node

    @property
    def num_nodes(self) -> int:
        """Total node count including the two terminals."""
        return 2 + len(self.var_index)

    def probability_rows(
        self, probability_maps: Sequence[Mapping[str, float]]
    ) -> List[List[float]]:
        """Per-scenario probability rows in ``events`` order.

        Raises :class:`AnalysisError` when a scenario is missing a
        probability for one of the function's events — the same error the
        scalar walk raises.
        """
        rows: List[List[float]] = []
        for probabilities in probability_maps:
            row: List[float] = []
            for name in self.events:
                try:
                    row.append(probabilities[name])
                except KeyError as exc:
                    raise AnalysisError(
                        f"no probability known for event {name!r}"
                    ) from exc
            rows.append(row)
        return rows


def flatten_bdd(function: BDD) -> FlatBDD:
    """Export ``function`` as a :class:`FlatBDD` node-array form.

    The result is memoised on the owning :class:`BDDManager` keyed by the
    root node (BDD nodes are hash-consed and immutable, so the flat form of
    a given root never changes), making repeated batch evaluations of a
    cached function cheap.  The memo is a :class:`FlatFormCache` — an LRU
    bounded at :data:`FLAT_FORM_CACHE_LIMIT` forms — so long-lived managers
    that compile many functions do not accumulate flat forms without limit.
    """
    manager = function.manager
    cache: FlatFormCache = getattr(manager, "_flat_forms", None)  # type: ignore[assignment]
    if cache is None:
        cache = FlatFormCache()
        manager._flat_forms = cache  # type: ignore[attr-defined]
    cached = cache.get(function.node)
    if cached is not None:
        return cached

    # Children-first topological order via iterative post-order DFS.
    compact: Dict[int, int] = {FALSE_NODE: 0, TRUE_NODE: 1}
    event_index: Dict[str, int] = {}
    var_index = array("q")
    low_arr = array("q")
    high_arr = array("q")
    if function.node not in compact:
        stack: List[Tuple[int, bool]] = [(function.node, False)]
        while stack:
            node, expanded = stack.pop()
            if node in compact:
                continue
            level, low, high = manager.node_triple(node)
            if not expanded:
                stack.append((node, True))
                if high not in compact:
                    stack.append((high, False))
                if low not in compact:
                    stack.append((low, False))
                continue
            name = manager.var_at_level(level)
            index = event_index.setdefault(name, len(event_index))
            var_index.append(index)
            low_arr.append(compact[low])
            high_arr.append(compact[high])
            compact[node] = len(compact)

    flat = FlatBDD(
        events=tuple(event_index),
        var_index=var_index,
        low=low_arr,
        high=high_arr,
        root=compact[function.node],
    )
    cache.put(function.node, flat)
    return flat


def top_event_probability(
    tree: FaultTree,
    *,
    heuristic: str = "dfs",
) -> float:
    """Exact top-event probability of ``tree`` via its BDD."""
    manager = BDDManager(variable_order(tree, heuristic=heuristic))
    function = manager.from_fault_tree(tree)
    return probability_of_bdd(function, tree.probabilities())


def probability_of_bdd(function: BDD, probabilities: Mapping[str, float]) -> float:
    """Exact probability of an already-compiled BDD function.

    A single forward pass over the :func:`flatten_bdd` node arrays: children
    come before parents, so ``P(node) = p * P(high) + (1 - p) * P(low)`` can
    be evaluated iteratively (no recursion limit on deep BDDs).  The
    per-node arithmetic is identical to the batch kernels in
    :mod:`repro.kernels.bdd_eval`, keeping scalar and batched results
    bit-for-bit equal.
    """
    flat = flatten_bdd(function)
    row = flat.probability_rows((probabilities,))[0]
    values = [0.0, 1.0]
    append = values.append
    for index, lo, hi in zip(flat.var_index, flat.low, flat.high):
        p = row[index]
        append(p * values[hi] + (1.0 - p) * values[lo])
    return values[flat.root]


# A DP entry is the best cut set reachable from a node: (probability, sorted
# event tuple), or None when the TRUE terminal is unreachable.
_Best = Optional[Tuple[float, Tuple[str, ...]]]


def _better(a: _Best, b: _Best) -> _Best:
    """The canonically better of two candidate cut sets.

    Higher probability wins; ties go to the smaller set, then to the
    lexicographically smaller sorted event tuple — the same order
    :meth:`CutSetCollection.ranked` uses.
    """
    if a is None:
        return b
    if b is None:
        return a
    key_a = (-a[0], len(a[1]), a[1])
    key_b = (-b[0], len(b[1]), b[1])
    return a if key_a <= key_b else b


def mpmcs_of_bdd(
    function: BDD, probabilities: Mapping[str, float]
) -> Tuple[Tuple[str, ...], float]:
    """MPMCS of an already-compiled BDD function.

    Returns ``(sorted event tuple, probability)``; raises
    :class:`AnalysisError` when the function is unsatisfiable (no cut set).
    """
    if function.is_false:
        raise AnalysisError("BDD function is constant false: the top event cannot occur")

    manager = function.manager
    best: Dict[int, _Best] = {FALSE_NODE: None, TRUE_NODE: (1.0, ())}

    def visit(node: int) -> _Best:
        if node in best:
            return best[node]
        level, low, high = manager.node_triple(node)
        name = manager.var_at_level(level)
        try:
            p = probabilities[name]
        except KeyError as exc:
            raise AnalysisError(f"no probability known for event {name!r}") from exc
        low_best = visit(low)
        high_best = visit(high)
        include: _Best = None
        if high_best is not None:
            include = (
                high_best[0] * p,
                tuple(sorted(high_best[1] + (name,))),
            )
        value = _better(low_best, include)
        best[node] = value
        return value

    top = visit(function.node)
    if top is None:  # pragma: no cover - is_false already caught this
        raise AnalysisError("BDD function has no path to the TRUE terminal")
    probability, members = top[0], top[1]
    return members, probability


def bdd_mpmcs(
    tree: FaultTree,
    *,
    heuristic: str = "dfs",
) -> Tuple[Tuple[str, ...], float]:
    """Compute the MPMCS of ``tree`` directly on its BDD.

    Returns ``(sorted event tuple, probability)``.  Raises
    :class:`AnalysisError` when the top event cannot occur at all.
    """
    manager = BDDManager(variable_order(tree, heuristic=heuristic))
    function = manager.from_fault_tree(tree)
    if function.is_false:
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set: the top event cannot occur")
    return mpmcs_of_bdd(function, tree.probabilities())
