"""Variable-ordering heuristics for the BDD engine.

BDD size is notoriously sensitive to the variable order.  Two standard static
heuristics are provided (plus pass-through of explicit orders):

* ``"dfs"`` — depth-first (first-occurrence) order over the fault tree, the
  classical choice for fault trees because it keeps related events adjacent;
* ``"frequency"`` — events sorted by how many gates reference them (most
  shared first), which often helps on DAG-shaped models;
* ``"alphabetical"`` — deterministic fallback used in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import BDDError
from repro.fta.tree import FaultTree

__all__ = ["variable_order"]

_HEURISTICS = ("dfs", "frequency", "alphabetical")


def variable_order(
    tree: FaultTree,
    *,
    heuristic: str = "dfs",
    explicit: Optional[Sequence[str]] = None,
) -> Tuple[str, ...]:
    """Return a variable (basic event) order for building ``tree``'s BDD."""
    tree.validate()
    if explicit is not None:
        explicit = tuple(explicit)
        missing = set(tree.events_reachable_from_top()) - set(explicit)
        if missing:
            raise BDDError(f"explicit order is missing events: {sorted(missing)}")
        return explicit

    if heuristic == "dfs":
        order: List[str] = []
        seen = set()
        for name in tree.reachable_from(tree.top_event):
            if tree.is_event(name) and name not in seen:
                seen.add(name)
                order.append(name)
        return tuple(order)

    if heuristic == "frequency":
        counts: Dict[str, int] = {name: 0 for name in tree.events_reachable_from_top()}
        for gate in tree.gates.values():
            for child in gate.children:
                if child in counts:
                    counts[child] += 1
        return tuple(sorted(counts, key=lambda name: (-counts[name], name)))

    if heuristic == "alphabetical":
        return tuple(sorted(tree.events_reachable_from_top()))

    raise BDDError(f"unknown ordering heuristic {heuristic!r}; expected one of {_HEURISTICS}")
