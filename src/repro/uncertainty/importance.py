"""Uncertainty importance: which inputs drive the output uncertainty.

The standard PRA approach is a rank-correlation measure: the Spearman
correlation between the sampled probability of each basic event and the
sampled top-event probability.  Events whose epistemic uncertainty has no
influence on the output get a correlation near zero; events driving the output
uncertainty get values near one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.numerics import np, require_numpy

from repro.exceptions import AnalysisError
from repro.uncertainty.propagation import UncertaintyResult

__all__ = ["UncertaintyImportance", "uncertainty_importance", "spearman_correlation"]


def spearman_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation between two 1-D sample arrays.

    Returns 0.0 when either array is constant (no ranks to correlate), which is
    the convention that makes point-estimate inputs report zero importance.
    """
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("samples must be 1-D arrays of equal length")
    if x.size < 2:
        raise AnalysisError("at least two samples are required")
    if np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    # Average ranks for ties, then Pearson correlation of the ranks.
    x_ranks = _average_ranks(x)
    y_ranks = _average_ranks(y)
    x_centred = x_ranks - x_ranks.mean()
    y_centred = y_ranks - y_ranks.mean()
    denominator = float(np.sqrt(np.sum(x_centred**2) * np.sum(y_centred**2)))
    if denominator == 0.0:
        return 0.0
    return float(np.sum(x_centred * y_centred) / denominator)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties replaced by their average rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average the ranks of tied groups.
    sorted_values = values[order]
    index = 0
    while index < values.size:
        stop = index
        while stop + 1 < values.size and sorted_values[stop + 1] == sorted_values[index]:
            stop += 1
        if stop > index:
            ranks[order[index : stop + 1]] = ranks[order[index : stop + 1]].mean()
        index = stop + 1
    return ranks


@dataclass(frozen=True)
class UncertaintyImportance:
    """Uncertainty importance of one basic event."""

    event: str
    spearman: float

    @property
    def magnitude(self) -> float:
        """Absolute correlation, used for ranking."""
        return abs(self.spearman)


def uncertainty_importance(
    result: UncertaintyResult,
    *,
    events: Optional[Sequence[str]] = None,
    target: str = "top-event",
) -> List[UncertaintyImportance]:
    """Rank basic events by how much their uncertainty drives the output.

    Parameters
    ----------
    result:
        A propagation result carrying the raw input and output samples.
    events:
        Restrict the ranking to these events (default: all sampled events).
    target:
        ``"top-event"`` (default) correlates against the top-event probability
        samples; ``"mpmcs"`` correlates against the MPMCS probability samples.
    """
    require_numpy("uncertainty importance ranking")
    if target == "top-event":
        output = result.top_event_samples
    elif target == "mpmcs":
        output = result.mpmcs_probability_samples
    else:
        raise AnalysisError(f"unknown target {target!r}; expected 'top-event' or 'mpmcs'")
    if output is None:
        raise AnalysisError("the propagation result does not carry raw samples")

    selected = list(events) if events is not None else sorted(result.event_samples)
    measures: List[UncertaintyImportance] = []
    for name in selected:
        try:
            samples = result.event_samples[name]
        except KeyError as exc:
            raise AnalysisError(f"no samples recorded for event {name!r}") from exc
        measures.append(
            UncertaintyImportance(event=name, spearman=spearman_correlation(samples, output))
        )
    measures.sort(key=lambda measure: (-measure.magnitude, measure.event))
    return measures
