"""Monte Carlo propagation of basic-event uncertainty through a fault tree.

The analysis enumerates the minimal cut sets once (the structure does not
depend on the sampled probabilities) and then evaluates, for every Monte Carlo
sample of the basic-event probabilities,

* the top-event probability (min-cut upper bound, rare-event approximation or
  inclusion–exclusion), and
* the probability of every minimal cut set, from which the per-sample MPMCS is
  identified.

Besides percentile bands for both quantities, the result reports how often
each cut set was the MPMCS — a direct measure of how robust the paper's
optimum is to epistemic uncertainty in the input probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.numerics import np, require_numpy

from repro.analysis.cutsets import CutSetCollection
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.topevent import exact_top_event_probability
from repro.bdd.cutsets import bdd_minimal_cut_sets
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.uncertainty.distributions import PointEstimate, UncertainProbability

__all__ = ["SampleSummary", "UncertaintyResult", "propagate_uncertainty"]

#: Default percentiles reported by :func:`propagate_uncertainty`.
DEFAULT_PERCENTILES = (5.0, 50.0, 95.0)


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a sampled quantity."""

    mean: float
    std: float
    minimum: float
    maximum: float
    percentiles: Dict[float, float]

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, percentiles: Sequence[float]
    ) -> "SampleSummary":
        """Build a summary from a 1-D sample array."""
        if samples.size == 0:
            raise AnalysisError("cannot summarise an empty sample array")
        values = np.percentile(samples, list(percentiles))
        return cls(
            mean=float(np.mean(samples)),
            std=float(np.std(samples, ddof=1)) if samples.size > 1 else 0.0,
            minimum=float(np.min(samples)),
            maximum=float(np.max(samples)),
            percentiles={float(q): float(v) for q, v in zip(percentiles, values)},
        )


@dataclass
class UncertaintyResult:
    """Outcome of a Monte Carlo uncertainty propagation.

    Attributes
    ----------
    tree_name / num_samples / seed / method:
        Provenance of the study.
    top_event:
        Summary of the sampled top-event probability.
    mpmcs_probability:
        Summary of the sampled MPMCS probability (the probability of whichever
        cut set is most probable *in that sample*).
    mpmcs_frequencies:
        For each minimal cut set, the fraction of samples in which it was the
        MPMCS; sorted by decreasing frequency.  A single entry close to 1.0
        means the paper's point-estimate optimum is robust to the input
        uncertainty.
    point_estimate_mpmcs:
        The MPMCS at the point-estimate (mean) probabilities, for reference.
    event_samples:
        The raw probability samples per basic event (used by the uncertainty
        importance analysis).
    top_event_samples / mpmcs_probability_samples:
        The raw output samples.
    """

    tree_name: str
    num_samples: int
    seed: Optional[int]
    method: str
    top_event: SampleSummary
    mpmcs_probability: SampleSummary
    mpmcs_frequencies: List[Tuple[Tuple[str, ...], float]]
    point_estimate_mpmcs: Tuple[str, ...]
    event_samples: Dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    top_event_samples: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    mpmcs_probability_samples: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def mpmcs_identity_stability(self) -> float:
        """Frequency of the most common MPMCS identity (1.0 = fully stable)."""
        if not self.mpmcs_frequencies:
            raise AnalysisError("no MPMCS frequency data available")
        return self.mpmcs_frequencies[0][1]

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form used by the CLI and the JSON report."""
        return {
            "tree": self.tree_name,
            "samples": self.num_samples,
            "seed": self.seed,
            "method": self.method,
            "top_event": {
                "mean": self.top_event.mean,
                "std": self.top_event.std,
                "percentiles": {str(k): v for k, v in self.top_event.percentiles.items()},
            },
            "mpmcs_probability": {
                "mean": self.mpmcs_probability.mean,
                "std": self.mpmcs_probability.std,
                "percentiles": {
                    str(k): v for k, v in self.mpmcs_probability.percentiles.items()
                },
            },
            "mpmcs_frequencies": [
                {"cut_set": list(cut_set), "frequency": frequency}
                for cut_set, frequency in self.mpmcs_frequencies
            ],
            "point_estimate_mpmcs": list(self.point_estimate_mpmcs),
        }


def _cut_sets_of(
    tree: FaultTree, *, algorithm: str, max_candidates: int
) -> CutSetCollection:
    if algorithm == "mocus":
        return mocus_minimal_cut_sets(tree, max_candidates=max_candidates)
    if algorithm == "bdd":
        return bdd_minimal_cut_sets(tree)
    raise AnalysisError(f"unknown cut-set algorithm {algorithm!r}; expected 'mocus' or 'bdd'")


def _top_event_samples(
    cut_set_probabilities: np.ndarray, method: str, sample_matrix: np.ndarray,
    cut_sets: List[Tuple[str, ...]], event_index: Dict[str, int],
) -> np.ndarray:
    """Per-sample top-event probability from per-cut-set probability samples."""
    if method == "rare-event":
        return np.minimum(cut_set_probabilities.sum(axis=0), 1.0)
    if method == "min-cut-upper-bound":
        return 1.0 - np.prod(1.0 - cut_set_probabilities, axis=0)
    if method == "exact":
        num_samples = cut_set_probabilities.shape[1]
        values = np.empty(num_samples)
        for index in range(num_samples):
            probabilities = {
                name: float(sample_matrix[event_index[name], index]) for name in event_index
            }
            values[index] = exact_top_event_probability(cut_sets, probabilities)
        return values
    raise AnalysisError(
        f"unknown method {method!r}; expected 'exact', 'rare-event' or 'min-cut-upper-bound'"
    )


def propagate_uncertainty(
    tree: FaultTree,
    uncertainties: Mapping[str, UncertainProbability],
    *,
    num_samples: int = 2000,
    seed: Optional[int] = 2020,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    method: str = "min-cut-upper-bound",
    cut_set_algorithm: str = "mocus",
    max_candidates: int = 200_000,
) -> UncertaintyResult:
    """Propagate epistemic uncertainty on basic events through ``tree``.

    Parameters
    ----------
    tree:
        The fault tree to analyse (validated first).
    uncertainties:
        Mapping of basic event name to its uncertainty distribution.  Events
        not covered keep their point-estimate probability from the tree.
    num_samples:
        Number of Monte Carlo samples (at least 2).
    seed:
        Seed for the random generator (``None`` for a non-deterministic run).
    percentiles:
        Percentiles reported in the summaries.
    method:
        Per-sample top-event combination: ``"min-cut-upper-bound"`` (default),
        ``"rare-event"`` or ``"exact"`` (inclusion–exclusion; slow, intended
        for small trees).
    cut_set_algorithm / max_candidates:
        How the minimal cut sets are enumerated (once, before sampling).
    """
    require_numpy("uncertainty propagation (propagate_uncertainty)")
    tree.validate()
    if num_samples < 2:
        raise AnalysisError(f"at least 2 samples are required, got {num_samples}")
    for name in uncertainties:
        if not tree.is_event(name):
            raise AnalysisError(f"unknown basic event {name!r} in uncertainty specification")
        if not isinstance(uncertainties[name], UncertainProbability):
            raise AnalysisError(
                f"uncertainty for {name!r} must be an UncertainProbability, "
                f"got {type(uncertainties[name]).__name__}"
            )

    collection = _cut_sets_of(tree, algorithm=cut_set_algorithm, max_candidates=max_candidates)
    cut_sets = collection.to_sorted_tuples()
    if not cut_sets:
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set")

    event_names = sorted(tree.events)
    event_index = {name: position for position, name in enumerate(event_names)}
    distributions: Dict[str, UncertainProbability] = {}
    for name in event_names:
        distributions[name] = uncertainties.get(name, PointEstimate(tree.probability(name)))

    rng = np.random.default_rng(seed)
    sample_matrix = np.empty((len(event_names), num_samples))
    for name in event_names:
        sample_matrix[event_index[name]] = distributions[name].sample(rng, num_samples)

    # probability of each cut set in each sample: product over member rows.
    cut_set_probabilities = np.empty((len(cut_sets), num_samples))
    for row, cut_set in enumerate(cut_sets):
        rows = [event_index[name] for name in cut_set]
        cut_set_probabilities[row] = np.prod(sample_matrix[rows, :], axis=0)

    top_samples = _top_event_samples(
        cut_set_probabilities, method, sample_matrix, cut_sets, event_index
    )
    mpmcs_rows = np.argmax(cut_set_probabilities, axis=0)
    mpmcs_samples = cut_set_probabilities[mpmcs_rows, np.arange(num_samples)]

    counts = np.bincount(mpmcs_rows, minlength=len(cut_sets))
    frequencies = [
        (cut_sets[row], float(count) / num_samples)
        for row, count in enumerate(counts)
        if count > 0
    ]
    frequencies.sort(key=lambda item: (-item[1], item[0]))

    point_probabilities = {name: distributions[name].mean() for name in event_names}
    point_products = [
        float(np.prod([point_probabilities[name] for name in cut_set])) for cut_set in cut_sets
    ]
    point_mpmcs = cut_sets[int(np.argmax(point_products))]

    return UncertaintyResult(
        tree_name=tree.name,
        num_samples=num_samples,
        seed=seed,
        method=method,
        top_event=SampleSummary.from_samples(top_samples, percentiles),
        mpmcs_probability=SampleSummary.from_samples(mpmcs_samples, percentiles),
        mpmcs_frequencies=frequencies,
        point_estimate_mpmcs=point_mpmcs,
        event_samples={name: sample_matrix[event_index[name]] for name in event_names},
        top_event_samples=top_samples,
        mpmcs_probability_samples=mpmcs_samples,
    )
