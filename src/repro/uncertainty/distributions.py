"""Probability distributions describing epistemic uncertainty on basic events.

Every distribution produces samples that are valid basic-event probabilities,
i.e. values in the half-open interval ``(0, 1]`` (samples are clamped to a
small positive floor, mirroring what PRA tools do when a sampled probability
underflows).  Sampling uses :class:`numpy.random.Generator` so studies are
reproducible from a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.numerics import np

from repro.exceptions import ProbabilityError

__all__ = [
    "UncertainProbability",
    "PointEstimate",
    "LognormalUncertainty",
    "BetaUncertainty",
    "UniformUncertainty",
    "TriangularUncertainty",
    "PROBABILITY_FLOOR",
]

#: Smallest probability a sample may take (samples below are clamped up).
PROBABILITY_FLOOR = 1e-15

#: z-score of the 95th percentile; error factors are conventionally defined as
#: the ratio between the 95th percentile and the median of a lognormal.
_Z95 = 1.6448536269514722


def _clip(samples: np.ndarray) -> np.ndarray:
    """Clamp samples into the valid probability range ``(0, 1]``."""
    return np.clip(samples, PROBABILITY_FLOOR, 1.0)


class UncertainProbability:
    """Interface shared by every epistemic-uncertainty distribution."""

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` probability samples (shape ``(size,)``, values in (0, 1])."""
        raise NotImplementedError

    def mean(self) -> float:
        """Mean of the distribution (before clamping)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        raise NotImplementedError


@dataclass(frozen=True)
class PointEstimate(UncertainProbability):
    """A degenerate distribution: the probability is known exactly."""

    probability: float

    def __post_init__(self) -> None:
        p = self.probability
        if not isinstance(p, (int, float)) or isinstance(p, bool):
            raise ProbabilityError(f"probability must be a number, got {type(p).__name__}")
        if not math.isfinite(p) or not 0.0 < p <= 1.0:
            raise ProbabilityError(f"probability must lie in (0, 1], got {p}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.probability)

    def mean(self) -> float:
        return self.probability

    def describe(self) -> str:
        return f"point estimate {self.probability:g}"


@dataclass(frozen=True)
class LognormalUncertainty(UncertainProbability):
    """Lognormal distribution parameterised by its median and error factor.

    The error factor ``EF`` is the conventional PRA parameter: the ratio of
    the 95th percentile to the median, so ``sigma = ln(EF) / 1.645``.
    """

    median: float
    error_factor: float

    def __post_init__(self) -> None:
        if not 0.0 < self.median <= 1.0 or not math.isfinite(self.median):
            raise ProbabilityError(f"median must lie in (0, 1], got {self.median}")
        if self.error_factor < 1.0 or not math.isfinite(self.error_factor):
            raise ProbabilityError(
                f"error factor must be at least 1, got {self.error_factor}"
            )

    @property
    def sigma(self) -> float:
        """Log-space standard deviation implied by the error factor."""
        return math.log(self.error_factor) / _Z95

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        samples = rng.lognormal(mean=math.log(self.median), sigma=self.sigma, size=size)
        return _clip(samples)

    def mean(self) -> float:
        return self.median * math.exp(self.sigma**2 / 2.0)

    def percentile(self, q: float) -> float:
        """Analytic percentile of the (unclamped) lognormal, ``q`` in (0, 100)."""
        if not 0.0 < q < 100.0:
            raise ProbabilityError(f"percentile must lie in (0, 100), got {q}")
        from scipy.stats import norm

        return self.median * math.exp(self.sigma * norm.ppf(q / 100.0))

    def describe(self) -> str:
        return f"lognormal, median {self.median:g}, EF {self.error_factor:g}"


@dataclass(frozen=True)
class BetaUncertainty(UncertainProbability):
    """Beta distribution — the natural conjugate model for demand probabilities."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0 or not math.isfinite(self.alpha):
            raise ProbabilityError(f"alpha must be positive, got {self.alpha}")
        if self.beta <= 0.0 or not math.isfinite(self.beta):
            raise ProbabilityError(f"beta must be positive, got {self.beta}")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return _clip(rng.beta(self.alpha, self.beta, size=size))

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def describe(self) -> str:
        return f"beta({self.alpha:g}, {self.beta:g})"


@dataclass(frozen=True)
class UniformUncertainty(UncertainProbability):
    """Uniform distribution over a probability interval ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low < self.high <= 1.0:
            raise ProbabilityError(
                f"uniform bounds must satisfy 0 <= low < high <= 1, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return _clip(rng.uniform(self.low, self.high, size=size))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def describe(self) -> str:
        return f"uniform [{self.low:g}, {self.high:g}]"


@dataclass(frozen=True)
class TriangularUncertainty(UncertainProbability):
    """Triangular distribution over ``[low, high]`` with the given mode."""

    low: float
    mode: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.mode <= self.high <= 1.0 or self.low == self.high:
            raise ProbabilityError(
                "triangular bounds must satisfy 0 <= low <= mode <= high <= 1 with low < high, "
                f"got ({self.low}, {self.mode}, {self.high})"
            )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return _clip(rng.triangular(self.low, self.mode, self.high, size=size))

    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def describe(self) -> str:
        return f"triangular ({self.low:g}, {self.mode:g}, {self.high:g})"
