"""Epistemic uncertainty propagation for fault-tree analyses.

The probabilities attached to basic events (Table I of the paper) are point
estimates; in probabilistic risk assessment practice they carry epistemic
uncertainty, usually expressed as a distribution (a lognormal with an error
factor, a beta, a uniform range, ...).  This package propagates those
distributions through the fault tree by Monte Carlo sampling and reports

* the resulting distribution of the top-event probability (mean, standard
  deviation, arbitrary percentiles),
* the distribution of the MPMCS probability and — more importantly — how
  often each minimal cut set *is* the MPMCS across samples (the identity of
  the paper's optimum is itself uncertain when probabilities are uncertain),
* uncertainty importance: which event's epistemic uncertainty drives the
  output uncertainty (Spearman rank correlation between input and output
  samples).

The structural work (minimal cut set enumeration) is done once; every Monte
Carlo sample only re-evaluates probabilities, so the analysis scales to
thousands of samples on mid-size trees.
"""

from repro.uncertainty.distributions import (
    BetaUncertainty,
    LognormalUncertainty,
    PointEstimate,
    TriangularUncertainty,
    UncertainProbability,
    UniformUncertainty,
)
from repro.uncertainty.importance import UncertaintyImportance, uncertainty_importance
from repro.uncertainty.propagation import (
    UncertaintyResult,
    propagate_uncertainty,
)

__all__ = [
    "BetaUncertainty",
    "LognormalUncertainty",
    "PointEstimate",
    "TriangularUncertainty",
    "UncertainProbability",
    "UncertaintyImportance",
    "UncertaintyResult",
    "UniformUncertainty",
    "propagate_uncertainty",
    "uncertainty_importance",
]
