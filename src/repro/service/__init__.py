"""``repro.service`` — persistent artifacts, job queue and analysis service.

The missing layer between the :mod:`repro.api` facade and a deployable tool:

* a **persistent, content-addressed artifact store**
  (:class:`~repro.service.store.DiskArtifactStore`) plugging into
  :class:`~repro.api.cache.ArtifactCache` as its second tier, so cut sets,
  CNF encodings and BDDs computed by one process are reused by the next —
  across restarts and across concurrent workers;
* a **job queue and worker pool** (:mod:`repro.service.jobs`,
  :mod:`repro.service.workers`) accepting analysis, batch, scenario-sweep
  and Pareto-frontier jobs, with sweeps partitioned over a process pool
  whose workers share artifacts through the disk store
  (:func:`run_parallel_sweep`);
* a **dependency-free HTTP/JSON front end** (:mod:`repro.service.http`,
  built on :mod:`http.server`) to submit trees and sweeps, poll job status
  and fetch finished reports, plus the matching ``repro serve`` /
  ``repro submit`` / ``repro jobs`` CLI subcommands;
* **resumable campaigns** (:mod:`repro.campaigns`, re-exported here): a
  declarative stage DAG over the job queue whose per-chunk completion
  ledger lives in the same disk store, so a killed service resumes a
  campaign exactly where it stopped (``POST /campaigns``,
  ``repro campaign run/status/resume``).

Quickstart:

.. code-block:: python

    from repro.service import AnalysisService, ServiceClient, serve

    service = AnalysisService(store_path="/tmp/repro-store", workers=2)
    server = serve(service, host="127.0.0.1", port=0)   # port 0: ephemeral
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
    job = client.submit_analyze(tree_document, analyses=["mpmcs", "top_event"])
    report = client.wait(job["id"])["result"]
"""

from repro.campaigns import CampaignOutcome, CampaignRunner, CampaignSpec, run_campaign
from repro.service.jobs import CONTROL_PRIORITY, Job, JobQueue, JobStatus
from repro.service.store import DiskArtifactStore
from repro.service.workers import (
    JobRunner,
    WorkerPool,
    merge_scenario_reports,
    run_parallel_sweep,
)
from repro.service.http import AnalysisService, ServiceClient, serve

__all__ = [
    "AnalysisService",
    "CONTROL_PRIORITY",
    "CampaignOutcome",
    "CampaignRunner",
    "CampaignSpec",
    "DiskArtifactStore",
    "Job",
    "JobQueue",
    "JobRunner",
    "JobStatus",
    "ServiceClient",
    "WorkerPool",
    "merge_scenario_reports",
    "run_campaign",
    "run_parallel_sweep",
    "serve",
]
