"""In-process job queue for the analysis service.

A :class:`Job` is one unit of submitted work — a single-tree analysis, a
batch of trees, or a whole scenario sweep — described by a JSON-serialisable
payload and resolved to a JSON-serialisable result, so the same objects flow
unchanged through the HTTP layer.  :class:`JobQueue` is the thread-safe FIFO
the :class:`~repro.service.workers.WorkerPool` drains: submission never
blocks, claiming blocks with an optional timeout, and every state transition
(``queued -> running -> done | failed``, or ``queued -> cancelled``) is
recorded with timestamps for the status endpoints.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.exceptions import ReproError

__all__ = ["Job", "JobError", "JobQueue", "JobStatus", "JOB_KINDS"]

#: Work types the service understands (see :mod:`repro.service.workers`).
JOB_KINDS = ("analyze", "batch", "sweep", "frontier")


class JobError(ReproError):
    """Invalid job submission or an operation on a job in the wrong state."""


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class Job:
    """One submitted unit of work and its lifecycle record."""

    id: str
    kind: str
    payload: Dict[str, Any]
    status: JobStatus = JobStatus.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_dict(self, *, include_result: bool = False) -> Dict[str, Any]:
        """JSON-ready status document (results are fetched separately by default)."""
        document: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_result:
            document["result"] = self.result
        return document


class JobQueue:
    """Thread-safe FIFO of :class:`Job` objects with a status ledger.

    Finished jobs stay queryable until ``max_finished`` older ones push them
    out, so a polling client always has a window to collect its result.
    """

    def __init__(self, *, max_finished: int = 256) -> None:
        if max_finished < 1:
            raise JobError(f"max_finished must be at least 1, got {max_finished}")
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._job_done = threading.Condition(self._lock)
        self._pending: Deque[str] = deque()
        self._jobs: "Dict[str, Job]" = {}
        self._finished_order: Deque[str] = deque()
        self._max_finished = max_finished
        self._next_id = 0
        self._closed = False

    # -- submission -------------------------------------------------------------------

    def submit(self, kind: str, payload: Dict[str, Any]) -> Job:
        """Enqueue a new job and return its ledger entry."""
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; expected one of {', '.join(JOB_KINDS)}")
        with self._lock:
            if self._closed:
                raise JobError("the job queue is closed")
            self._next_id += 1
            job = Job(id=f"job-{self._next_id:06d}", kind=kind, payload=payload)
            self._jobs[job.id] = job
            self._pending.append(job.id)
            self._not_empty.notify()
            return job

    # -- worker side ------------------------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the oldest queued job and mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``) and returns
        ``None`` on timeout or once the queue is closed and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._pending:
                    job = self._jobs.get(self._pending.popleft())
                    if job is None or job.status is not JobStatus.QUEUED:
                        # Cancelled while waiting — possibly already trimmed
                        # from the ledger by _remember_finished.
                        continue
                    job.status = JobStatus.RUNNING
                    job.started_at = time.time()
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def finish(self, job_id: str, result: Dict[str, Any]) -> Job:
        """Resolve a running job successfully."""
        return self._settle(job_id, JobStatus.DONE, result=result)

    def fail(self, job_id: str, error: str) -> Job:
        """Resolve a running job with an error message."""
        return self._settle(job_id, JobStatus.FAILED, error=error)

    def _settle(
        self,
        job_id: str,
        status: JobStatus,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Job:
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.RUNNING:
                raise JobError(f"job {job_id} is {job.status.value}, not running")
            job.status = status
            job.result = result
            job.error = error
            job.finished_at = time.time()
            self._remember_finished(job.id)
            self._job_done.notify_all()
            return job

    # -- client side ------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._require(job_id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job that has not started yet."""
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.QUEUED:
                raise JobError(f"job {job_id} is {job.status.value}; only queued jobs cancel")
            job.status = JobStatus.CANCELLED
            job.finished_at = time.time()
            self._remember_finished(job.id)
            self._job_done.notify_all()
            return job

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or the timeout passes)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            job = self._require(job_id)
            while not job.status.terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._job_done.wait(remaining)
            return job

    def jobs(self) -> List[Job]:
        """Every job still in the ledger, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            counts = {status.value: 0 for status in JobStatus}
            for job in self._jobs.values():
                counts[job.status.value] += 1
            counts["total"] = len(self._jobs)
            return counts

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting submissions and wake blocked :meth:`claim` calls."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    # -- internals (callers hold the lock) --------------------------------------------

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job id {job_id!r}")
        return job

    def _remember_finished(self, job_id: str) -> None:
        self._finished_order.append(job_id)
        while len(self._finished_order) > self._max_finished:
            stale = self._finished_order.popleft()
            self._jobs.pop(stale, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
