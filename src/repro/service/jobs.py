"""In-process job queue for the analysis service.

A :class:`Job` is one unit of submitted work — a single-tree analysis, a
batch of trees, a whole scenario sweep, or a campaign orchestration job —
described by a JSON-serialisable payload and resolved to a JSON-serialisable
result, so the same objects flow unchanged through the HTTP layer.
:class:`JobQueue` is the thread-safe queue the
:class:`~repro.service.workers.WorkerPool` drains: submission never blocks,
claiming blocks with an optional timeout, and every state transition
(``queued -> running -> done | failed | cancelled``, or
``queued -> cancelled``) is recorded with timestamps for the status
endpoints.

Claiming is **priority-ordered**: jobs with a higher ``priority`` are claimed
before lower ones, and jobs of equal priority are claimed strictly FIFO.
Campaign control-plane jobs are submitted above the default priority so a
queue full of bulk sweep chunks never starves orchestration.

Cancellation covers *running* jobs cooperatively: :meth:`JobQueue.cancel` on
a running job sets the job's :attr:`Job.cancel_event`, which the
:class:`~repro.service.workers.JobRunner` polls (and forwards into the
analysis engines' ``stop_check`` hook); the worker then settles the job as
``cancelled`` at the next check point.  Per-job ``timeout`` uses the same
mechanism — a timed-out job lands in ``failed`` with a distinguishable
``timed out after …`` reason.
"""

from __future__ import annotations

import enum
import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.monitoring.events import EventBuffer
from repro.observability.metrics import get_metrics

__all__ = [
    "CONTROL_PRIORITY",
    "Job",
    "JobCancelled",
    "JobError",
    "JobQueue",
    "JobStatus",
    "JobTimeout",
    "JOB_KINDS",
]

#: Work types the service understands (see :mod:`repro.service.workers`).
JOB_KINDS = ("analyze", "batch", "sweep", "frontier", "campaign")

#: Priority used for campaign control-plane jobs: above the default ``0`` of
#: bulk work, so orchestration is claimed ahead of a backlog of chunk jobs.
CONTROL_PRIORITY = 10


class JobError(ReproError):
    """Invalid job submission or an operation on a job in the wrong state."""


class JobCancelled(JobError):
    """Raised inside a worker when a running job's cancellation fired."""


class JobTimeout(JobError):
    """Raised inside a worker when a running job exceeded its time budget."""


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class Job:
    """One submitted unit of work and its lifecycle record."""

    id: str
    kind: str
    payload: Dict[str, Any]
    status: JobStatus = JobStatus.QUEUED
    priority: int = 0
    timeout: Optional[float] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Cooperative-cancellation flag shared with the executing worker; set by
    #: :meth:`JobQueue.cancel` while the job is running.
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Serialized span tree recorded by the worker that executed the job
    #: (see :mod:`repro.observability.trace`); served by
    #: ``GET /jobs/<id>/trace`` once the job is terminal.
    trace: Optional[Dict[str, Any]] = field(default=None, repr=False)
    #: Live progress stream: workers append per-scenario/per-chunk events
    #: while the job runs, ``GET /sweeps/<id>/stream`` replays and follows
    #: them as Server-Sent Events.  Closed by the queue when the job settles,
    #: which is what terminates attached streams.
    progress: EventBuffer = field(default_factory=EventBuffer, repr=False)

    @property
    def cancel_requested(self) -> bool:
        return self.cancel_event.is_set()

    def to_dict(self, *, include_result: bool = False) -> Dict[str, Any]:
        """JSON-ready status document (results are fetched separately by default)."""
        document: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status.value,
            "priority": self.priority,
            "timeout": self.timeout,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_result:
            document["result"] = self.result
        return document


class JobQueue:
    """Thread-safe priority queue of :class:`Job` objects with a status ledger.

    Claiming order is highest ``priority`` first, FIFO within one priority.
    Finished jobs stay queryable until ``max_finished`` older ones push them
    out, so a polling client always has a window to collect its result.
    """

    def __init__(self, *, max_finished: int = 256) -> None:
        if max_finished < 1:
            raise JobError(f"max_finished must be at least 1, got {max_finished}")
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._job_done = threading.Condition(self._lock)
        # Min-heap of (-priority, submission sequence, job id): the heap pops
        # the highest priority first and, within one priority, the smallest
        # sequence number — strict FIFO.
        self._pending: List[Tuple[int, int, str]] = []
        self._jobs: "Dict[str, Job]" = {}
        self._finished_order: List[str] = []
        self._max_finished = max_finished
        self._next_id = 0
        self._next_seq = 0
        self._closed = False
        # Publish zeroed gauges immediately: scrapes see the queue families
        # from service start, not only after the first job transition.
        self._update_gauges()

    # -- submission -------------------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: Dict[str, Any],
        *,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> Job:
        """Enqueue a new job and return its ledger entry.

        ``priority`` orders claiming (higher first); ``timeout`` bounds the
        job's running time (enforced cooperatively by the worker).
        """
        if kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {kind!r}; expected one of {', '.join(JOB_KINDS)}")
        if timeout is not None and timeout <= 0:
            raise JobError(f"job timeout must be positive, got {timeout!r}")
        with self._lock:
            if self._closed:
                raise JobError("the job queue is closed")
            self._next_id += 1
            job = Job(
                id=f"job-{self._next_id:06d}",
                kind=kind,
                payload=payload,
                priority=priority,
                timeout=timeout,
            )
            self._jobs[job.id] = job
            self._next_seq += 1
            heapq.heappush(self._pending, (-priority, self._next_seq, job.id))
            registry = get_metrics()
            registry.inc("repro_jobs_submitted_total", kind=kind)
            self._update_gauges()
            self._not_empty.notify()
            return job

    # -- worker side ------------------------------------------------------------------

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job and mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``) and returns
        ``None`` on timeout or once the queue is closed and drained.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._pending:
                    _, _, job_id = heapq.heappop(self._pending)
                    job = self._jobs.get(job_id)
                    if job is None or job.status is not JobStatus.QUEUED:
                        # Cancelled while waiting — possibly already trimmed
                        # from the ledger by _remember_finished.
                        continue
                    job.status = JobStatus.RUNNING
                    job.started_at = time.time()
                    get_metrics().observe(
                        "repro_queue_claim_latency_seconds",
                        max(0.0, job.started_at - job.submitted_at),
                        kind=job.kind,
                    )
                    self._update_gauges()
                    return job
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def finish(self, job_id: str, result: Dict[str, Any]) -> Job:
        """Resolve a running job successfully."""
        return self._settle(job_id, JobStatus.DONE, result=result)

    def fail(self, job_id: str, error: str) -> Job:
        """Resolve a running job with an error message."""
        return self._settle(job_id, JobStatus.FAILED, error=error)

    def finish_cancelled(self, job_id: str) -> Job:
        """Settle a running job whose cooperative cancellation took effect."""
        return self._settle(job_id, JobStatus.CANCELLED)

    def _settle(
        self,
        job_id: str,
        status: JobStatus,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Job:
        with self._lock:
            job = self._require(job_id)
            if job.status is not JobStatus.RUNNING:
                raise JobError(f"job {job_id} is {job.status.value}, not running")
            job.status = status
            job.result = result
            job.error = error
            job.finished_at = time.time()
            # The final "end" frame is what tells a streaming client the job
            # settled (a bare close is indistinguishable from a dropped
            # connection, which clients answer by reconnecting forever).
            job.progress.append("end", {"job": job.id, "status": status.value})
            job.progress.close()
            get_metrics().inc(
                "repro_jobs_completed_total", kind=job.kind, status=status.value
            )
            self._remember_finished(job.id)
            self._update_gauges()
            self._job_done.notify_all()
            return job

    # -- client side ------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._require(job_id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job immediately, or a running one cooperatively.

        A queued job settles as ``cancelled`` right away and is never handed
        to a worker.  A *running* job cannot be stopped preemptively — its
        worker may be deep inside a solver — so cancellation is requested via
        :attr:`Job.cancel_event`; the worker polls it (the analysis engines'
        ``stop_check`` hook) and settles the job as ``cancelled`` at the next
        check point.  The returned job still reads ``running`` in that case;
        observe the transition through :meth:`wait` or :meth:`get`.  Jobs
        already in a terminal state raise :class:`JobError`.
        """
        with self._lock:
            job = self._require(job_id)
            if job.status is JobStatus.QUEUED:
                job.status = JobStatus.CANCELLED
                job.finished_at = time.time()
                job.progress.append("end", {"job": job.id, "status": "cancelled"})
                job.progress.close()
                get_metrics().inc(
                    "repro_jobs_completed_total", kind=job.kind, status="cancelled"
                )
                self._remember_finished(job.id)
                self._update_gauges()
                self._job_done.notify_all()
                return job
            if job.status is JobStatus.RUNNING:
                job.cancel_event.set()
                return job
            raise JobError(
                f"job {job_id} is already {job.status.value}; nothing to cancel"
            )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or the timeout passes)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            job = self._require(job_id)
            while not job.status.terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._job_done.wait(remaining)
            return job

    def jobs(self) -> List[Job]:
        """Every job still in the ledger, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            counts = {status.value: 0 for status in JobStatus}
            for job in self._jobs.values():
                counts[job.status.value] += 1
            counts["total"] = len(self._jobs)
            return counts

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting submissions and wake blocked :meth:`claim` calls."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    # -- internals (callers hold the lock) --------------------------------------------

    def _queued_count(self) -> int:
        return sum(1 for job in self._jobs.values() if job.status is JobStatus.QUEUED)

    def _update_gauges(self) -> None:
        """Refresh the queue-depth and per-state job-count gauges.

        Counts every state on every transition (the ledger is bounded by
        ``max_finished``, so this stays O(hundreds)): terminal counts must
        *decrease* when old jobs are trimmed, which an incremental +1/-1
        scheme would miss.
        """
        counts = {status: 0 for status in JobStatus}
        for job in self._jobs.values():
            counts[job.status] += 1
        registry = get_metrics()
        registry.set_gauge("repro_queue_depth", counts[JobStatus.QUEUED])
        for status, count in counts.items():
            registry.set_gauge("repro_jobs_by_state", count, state=status.value)

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job id {job_id!r}")
        return job

    def _remember_finished(self, job_id: str) -> None:
        self._finished_order.append(job_id)
        while len(self._finished_order) > self._max_finished:
            stale = self._finished_order.pop(0)
            self._jobs.pop(stale, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
