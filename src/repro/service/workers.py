"""Job execution: worker pool, and scenario sweeps partitioned over processes.

Two layers live here:

* :func:`run_parallel_sweep` delivers the ROADMAP's "parallel sweeps" item:
  the scenario grid is split into contiguous chunks, each chunk runs through
  an ordinary :class:`~repro.scenarios.sweep.SweepExecutor` in its own
  process, and the per-worker sessions share artifacts through one
  :class:`~repro.service.store.DiskArtifactStore` instead of one in-memory
  cache — subtree cut sets and structure-keyed BDDs computed by any worker
  (or a previous run) are disk hits for every other worker.  The merged
  :class:`~repro.scenarios.report.ScenarioReport` is canonically identical
  to a sequential run over the same grid
  (:meth:`~repro.scenarios.report.ScenarioReport.to_canonical_dict`).
* :class:`JobRunner` / :class:`WorkerPool` execute the queued jobs of
  :class:`~repro.service.jobs.JobQueue`: each pool thread owns a runner with
  a persistent store-backed :class:`~repro.api.session.AnalysisSession`, so
  repeated jobs over structurally similar trees get warmer and warmer.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.cache import ArtifactCache
from repro.api.report import AnalysisRequest
from repro.api.session import AnalysisSession
from repro.exceptions import ReproError
from repro.fta.parsers.json_format import parse_json_document
from repro.fta.tree import FaultTree
from repro.reliability.assignment import ReliabilityAssignment
from repro.scenarios.planner import HardeningAction, pareto_frontier, validate_actions
from repro.scenarios.report import ScenarioReport
from repro.scenarios.scenario import Scenario
from repro.scenarios.serialization import (
    actions_from_spec,
    assignment_from_documents,
    scenarios_from_spec,
)
from repro.scenarios.sweep import DEFAULT_ANALYSES, DEFAULT_BACKEND, SweepExecutor
from repro.service.jobs import Job, JobError, JobQueue
from repro.service.store import DiskArtifactStore, open_store

__all__ = [
    "JobRunner",
    "WorkerPool",
    "decode_frontier_payload",
    "decode_sweep_payload",
    "merge_scenario_reports",
    "run_parallel_sweep",
]

#: Frontier methods accepted over the wire.
_FRONTIER_METHODS = ("auto", "exact", "greedy")


def _materialised_tree(
    payload: Dict[str, Any]
) -> Tuple[FaultTree, Optional[ReliabilityAssignment], Optional[float]]:
    """Decode the payload's tree, materialising reliability models if present.

    A payload may carry a ``models`` section (event name -> tagged failure
    model document) plus a ``mission_time``; the analysed tree is then the
    :class:`~repro.reliability.assignment.ReliabilityAssignment` frozen at
    that time, and the assignment is returned alongside so maintenance
    scenarios can bind to it.
    """
    document = payload.get("tree")
    if not isinstance(document, dict):
        raise JobError("job payload needs a 'tree' JSON document")
    tree = parse_json_document(document)
    raw_time = payload.get("mission_time")
    mission_time: Optional[float] = None
    if raw_time is not None:
        if not isinstance(raw_time, (int, float)) or isinstance(raw_time, bool):
            raise JobError(f"'mission_time' must be a number, got {raw_time!r}")
        mission_time = float(raw_time)
    models = payload.get("models")
    if models is None:
        return tree, None, mission_time
    if mission_time is None:
        raise JobError("a payload with 'models' needs a numeric 'mission_time'")
    assignment = assignment_from_documents(tree, models)
    return assignment.tree_at(mission_time), assignment, mission_time


def decode_sweep_payload(
    payload: Dict[str, Any]
) -> Tuple[FaultTree, List[Scenario]]:
    """Decode (and thereby fully validate) a sweep job payload.

    Shared by :meth:`JobRunner.execute` and the HTTP submit path: running it
    at submission time turns malformed trees, patches and specs into
    immediate HTTP 400s instead of per-scenario failures mid-job.
    """
    tree, assignment, mission_time = _materialised_tree(payload)
    spec = payload.get("scenarios")
    if spec is None:
        raise JobError("sweep job payload needs a 'scenarios' list or family spec")
    scenarios = scenarios_from_spec(
        spec, assignment=assignment, mission_time=mission_time
    )
    return tree, scenarios


def decode_frontier_payload(
    payload: Dict[str, Any]
) -> Tuple[FaultTree, List[HardeningAction], Dict[str, Any]]:
    """Decode (and thereby fully validate) a frontier job payload."""
    tree, _, _ = _materialised_tree(payload)
    actions = actions_from_spec(payload.get("actions"))
    validate_actions(tree, actions)
    method = payload.get("method", "auto")
    if method not in _FRONTIER_METHODS:
        raise JobError(
            f"unknown frontier method {method!r}; expected one of "
            f"{', '.join(_FRONTIER_METHODS)}"
        )
    precision = payload.get("precision", 10**6)
    if not isinstance(precision, int) or isinstance(precision, bool) or precision < 1:
        raise JobError(f"'precision' must be a positive integer, got {precision!r}")
    return tree, actions, {"method": method, "precision": precision}


def _merge_cache_stats(parts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum per-worker :meth:`ArtifactCache.stats` snapshots field-wise."""
    merged: Dict[str, Any] = {
        "entries": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "by_kind": {},
    }
    for part in parts:
        for counter in ("entries", "hits", "misses", "evictions", "store_hits", "store_misses"):
            if counter in part:
                merged[counter] = merged.get(counter, 0) + part[counter]
        for kind, counters in part.get("by_kind", {}).items():
            slot = merged["by_kind"].setdefault(kind, {})
            for counter, value in counters.items():
                slot[counter] = slot.get(counter, 0) + value
    return merged


def merge_scenario_reports(reports: Sequence[ScenarioReport]) -> ScenarioReport:
    """Merge per-chunk sweep reports (in chunk order) into one report.

    Every chunk analysed the same base tree with the same configuration, so
    the base sections are interchangeable; the first report contributes them,
    the outcomes concatenate in order, and the cache statistics sum.
    """
    if not reports:
        raise ReproError("cannot merge an empty list of scenario reports")
    head = reports[0]
    merged = ScenarioReport(
        tree_name=head.tree_name,
        analyses=head.analyses,
        backend=head.backend,
        incremental=head.incremental,
        base=head.base,
        base_top_event=head.base_top_event,
        base_mpmcs_events=head.base_mpmcs_events,
        base_mpmcs_probability=head.base_mpmcs_probability,
    )
    for report in reports:
        merged.outcomes.extend(report.outcomes)
    merged.cache_stats = _merge_cache_stats([report.cache_stats for report in reports])
    merged.total_time_s = sum(report.total_time_s for report in reports)
    return merged


def _partition(items: Sequence[Any], parts: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``parts`` contiguous, order-preserving chunks."""
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    chunks: List[Sequence[Any]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _sweep_chunk(
    payload: Tuple[int, FaultTree, Sequence[Scenario], Dict[str, Any]]
) -> Tuple[int, ScenarioReport]:
    """Process-pool worker: run one scenario chunk with a store-backed session."""
    index, tree, scenarios, config = payload
    cache = ArtifactCache(
        max_entries=config.get("cache_max_entries"),
        backend=open_store(config.get("store_path")),
    )
    executor = SweepExecutor(
        AnalysisSession(cache=cache),
        incremental=config.get("incremental", True),
        backend=config.get("backend", DEFAULT_BACKEND),
        exact_top_event=config.get("exact_top_event", True),
    )
    report = executor.run(
        tree,
        scenarios,
        analyses=config.get("analyses", DEFAULT_ANALYSES),
        top_k=config.get("top_k", 5),
        samples=config.get("samples", 0),
        seed=config.get("seed", 0),
    )
    return index, report


def run_parallel_sweep(
    tree: FaultTree,
    scenarios: Sequence[Scenario],
    *,
    workers: int,
    store_path: Optional[str] = None,
    analyses: Sequence[str] = DEFAULT_ANALYSES,
    backend: str = DEFAULT_BACKEND,
    incremental: bool = True,
    exact_top_event: bool = True,
    top_k: int = 5,
    samples: int = 0,
    seed: int = 0,
    cache_max_entries: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
) -> ScenarioReport:
    """Evaluate a scenario sweep partitioned over ``workers`` processes.

    Results are canonically identical to the sequential
    :class:`SweepExecutor` on the same grid — compare
    :meth:`ScenarioReport.to_canonical_dict` — because every chunk runs the
    unmodified sequential executor; parallelism only changes *where* the
    scenarios run and lets artifacts flow through the shared ``store_path``
    instead of one in-memory cache.  ``workers <= 1`` (or a platform without
    subprocess support) degrades to one in-process sequential sweep over a
    store-backed session.
    """
    scenario_list = list(scenarios)
    started = time.perf_counter()
    config = {
        "store_path": store_path,
        "analyses": tuple(analyses),
        "backend": backend,
        "incremental": incremental,
        "exact_top_event": exact_top_event,
        "top_k": top_k,
        "samples": samples,
        "seed": seed,
        "cache_max_entries": cache_max_entries,
    }

    if workers > 1 and len(scenario_list) > 1:
        if store_path is not None:
            # Warm the store with the base analysis before fanning out: on a
            # cold store every chunk would otherwise race through the same
            # expensive base computation (subtree cut sets, BDD) and N-1 of
            # the results would be discarded by the merge.  On a warm store
            # this pass is almost entirely disk hits.
            warm_cache = ArtifactCache(
                max_entries=cache_max_entries, backend=open_store(store_path)
            )
            SweepExecutor(
                AnalysisSession(cache=warm_cache),
                incremental=incremental,
                backend=backend,
                exact_top_event=exact_top_event,
            ).run(tree, [], analyses=analyses, top_k=top_k, samples=samples, seed=seed)
        chunks = _partition(scenario_list, workers)
        payloads = [(index, tree, chunk, config) for index, chunk in enumerate(chunks)]
        try:
            # Spawn, not fork: the service calls this from worker threads, and
            # forking a multithreaded process can deadlock a child on a lock
            # some other thread held at fork time (CPython 3.12+ deprecates
            # exactly that).  The interpreter-startup cost per worker is
            # amortised over the chunk.
            with ProcessPoolExecutor(
                max_workers=len(chunks),
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                parts = sorted(pool.map(_sweep_chunk, payloads), key=lambda item: item[0])
        except (OSError, BrokenProcessPool):
            # Degrade to the sequential path below.  This fires when workers
            # cannot come up at all — sandboxes without subprocess support
            # (OSError), interactive/stdin ``__main__`` contexts that spawn
            # cannot re-import (BrokenProcessPool at startup) — and also if
            # the pool breaks mid-run (e.g. an OOM-killed worker): completed
            # chunk work is then discarded and the grid re-runs in-process,
            # trading wall-clock for a correct, complete report.  Analysis
            # errors never surface as either type (per-scenario failures are
            # captured in the outcomes).
            parts = None
        if parts is not None:
            merged = merge_scenario_reports([report for _, report in parts])
            merged.total_time_s = time.perf_counter() - started
            return merged

    if session is None:
        cache = ArtifactCache(
            max_entries=cache_max_entries, backend=open_store(store_path)
        )
        session = AnalysisSession(cache=cache)
    executor = SweepExecutor(
        session, incremental=incremental, backend=backend, exact_top_event=exact_top_event
    )
    return executor.run(
        tree, scenario_list, analyses=analyses, top_k=top_k, samples=samples, seed=seed
    )


class JobRunner:
    """Executes queued jobs against a persistent store-backed session.

    One runner per worker thread: the session (and its memory cache tier) is
    reused across jobs, while the disk store shares artifacts with every
    other runner, process and past service run.
    """

    def __init__(
        self,
        *,
        store_path: Optional[str] = None,
        store: Optional[DiskArtifactStore] = None,
        cache_max_entries: Optional[int] = None,
        sweep_workers: int = 0,
        mode: str = "thread",
    ) -> None:
        if store is None:
            store = open_store(store_path)
        elif store_path is None:
            store_path = str(store.root)
        self.store_path = store_path
        self.cache_max_entries = cache_max_entries
        self.sweep_workers = sweep_workers
        self.session = AnalysisSession(
            mode=mode,
            cache=ArtifactCache(max_entries=cache_max_entries, backend=store),
        )

    # -- payload decoding -------------------------------------------------------------

    @staticmethod
    def _tree_from(payload: Dict[str, Any]) -> FaultTree:
        document = payload.get("tree")
        if not isinstance(document, dict):
            raise JobError("job payload needs a 'tree' JSON document")
        return parse_json_document(document)

    @staticmethod
    def _request_from(payload: Dict[str, Any]) -> AnalysisRequest:
        # The job payload is a superset of the request document (extra keys
        # like "tree" are ignored by from_dict), so the wire decode is the
        # report module's own inverse — one place defines the fields.
        return AnalysisRequest.from_dict(payload)

    # -- job kinds --------------------------------------------------------------------

    def execute(self, job: Job) -> Dict[str, Any]:
        """Run one claimed job and return its JSON-serialisable result."""
        if job.kind == "analyze":
            return self._run_analyze(job.payload)
        if job.kind == "batch":
            return self._run_batch(job.payload)
        if job.kind == "sweep":
            return self._run_sweep(job.payload)
        if job.kind == "frontier":
            return self._run_frontier(job.payload)
        raise JobError(f"unknown job kind {job.kind!r}")

    def _run_analyze(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tree = self._tree_from(payload)
        report = self.session.run(tree, self._request_from(payload))
        return {"kind": "analyze", "tree": tree.name, "report": report.to_dict()}

    def _run_batch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        documents = payload.get("trees")
        if not isinstance(documents, list) or not documents:
            raise JobError("batch job payload needs a non-empty 'trees' list")
        request = self._request_from(payload)
        items: List[Dict[str, Any]] = []
        for index, document in enumerate(documents):
            try:
                tree = parse_json_document(document)
                report = self.session.run(tree, request)
                items.append(
                    {"index": index, "tree": tree.name, "ok": True, "report": report.to_dict()}
                )
            except Exception as exc:  # noqa: BLE001 - failures are data in a batch
                name = document.get("name", f"#{index}") if isinstance(document, dict) else f"#{index}"
                items.append({"index": index, "tree": name, "ok": False, "error": str(exc)})
        return {
            "kind": "batch",
            "num_ok": sum(1 for item in items if item["ok"]),
            "items": items,
        }

    def _run_sweep(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tree, scenarios = decode_sweep_payload(payload)
        # A missing/zero workers field means "use the service default" (the
        # CLI always sends the key, with 0 when the user did not choose).
        workers = int(payload.get("workers") or 0) or self.sweep_workers
        report = run_parallel_sweep(
            tree,
            scenarios,
            workers=workers,
            store_path=self.store_path,
            analyses=tuple(payload.get("analyses", DEFAULT_ANALYSES)),
            backend=payload.get("backend", DEFAULT_BACKEND),
            incremental=bool(payload.get("incremental", True)),
            exact_top_event=bool(payload.get("exact_top_event", True)),
            top_k=int(payload.get("top_k", 5)),
            samples=int(payload.get("samples", 0)),
            seed=int(payload.get("seed", 0)),
            cache_max_entries=self.cache_max_entries,
            session=self.session if workers <= 1 else None,
        )
        return {
            "kind": "sweep",
            "tree": tree.name,
            "workers": workers,
            "num_scenarios": len(report),
            "report": report.to_dict(),
        }

    def _run_frontier(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tree, actions, options = decode_frontier_payload(payload)
        frontier = pareto_frontier(
            tree,
            actions,
            method=options["method"],
            precision=options["precision"],
            cache=self.session.artifacts,
        )
        return {
            "kind": "frontier",
            "tree": tree.name,
            "method": frontier.method,
            "num_points": len(frontier),
            "frontier": frontier.to_dict(),
        }


class WorkerPool:
    """Threads draining a :class:`JobQueue`, one :class:`JobRunner` each.

    Analysis is CPU-bound pure Python, so thread-level parallelism mostly
    provides job-level concurrency (a long sweep does not block a quick
    status-probe analysis); true parallel compute comes from the process
    fan-out inside sweep jobs (``workers`` in the sweep payload) and the
    MaxSAT portfolio's own process mode.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        workers: int = 2,
        store_path: Optional[str] = None,
        store: Optional[DiskArtifactStore] = None,
        cache_max_entries: Optional[int] = None,
        sweep_workers: int = 0,
        poll_interval: float = 0.2,
    ) -> None:
        if workers < 1:
            raise JobError(f"worker pool needs at least one worker, got {workers}")
        self.queue = queue
        self.num_workers = workers
        # One store handle shared by every runner (and the service's health
        # view): the handle is just counters + path mapping, and sharing it
        # makes its statistics reflect the whole pool.
        self._runner_config = {
            "store_path": store_path,
            "store": store if store is not None else open_store(store_path),
            "cache_max_entries": cache_max_entries,
            "sweep_workers": sweep_workers,
        }
        self._poll_interval = poll_interval
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    def start(self) -> "WorkerPool":
        if self._threads:
            raise JobError("worker pool already started")
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _worker_loop(self) -> None:
        runner = JobRunner(**self._runner_config)
        while not self._stop.is_set():
            job = self.queue.claim(timeout=self._poll_interval)
            if job is None:
                continue
            try:
                result = runner.execute(job)
            except Exception as exc:  # noqa: BLE001 - job failures are results
                self.queue.fail(job.id, str(exc))
            else:
                self.queue.finish(job.id, result)

    def stop(self, *, timeout: float = 5.0) -> None:
        """Stop accepting work and join the worker threads."""
        self._stop.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
