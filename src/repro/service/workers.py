"""Job execution: worker pool, and scenario sweeps routed through campaigns.

Two layers live here:

* :func:`run_parallel_sweep` delivers the ROADMAP's "parallel sweeps" item.
  Internally it is a **one-stage campaign**: the scenario grid becomes a
  single ``sweep`` stage of a :class:`~repro.campaigns.spec.CampaignSpec`,
  and the :class:`~repro.campaigns.runner.CampaignRunner` chunks it, fans the
  chunks over spawn processes, persists every finished chunk in the
  completion ledger of the shared
  :class:`~repro.service.store.DiskArtifactStore`, and merges in chunk order.
  One execution path serves the standalone helper, the ``sweep`` job kind and
  full campaign jobs; the merged
  :class:`~repro.scenarios.report.ScenarioReport` stays canonically identical
  to a sequential run over the same grid
  (:meth:`~repro.scenarios.report.ScenarioReport.to_canonical_dict`).
* :class:`JobRunner` / :class:`WorkerPool` execute the queued jobs of
  :class:`~repro.service.jobs.JobQueue`: each pool thread owns a runner with
  a persistent store-backed :class:`~repro.api.session.AnalysisSession`, so
  repeated jobs over structurally similar trees get warmer and warmer.
  Runners enforce the queue's cooperative cancellation and per-job timeouts:
  a :class:`_JobGuard` is polled at scenario/chunk boundaries (and wired into
  the MaxSAT portfolio's engine ``stop_check`` hook), so a cancelled job
  settles as ``cancelled`` and a timed-out one fails with a distinguishable
  ``timed out after …`` reason.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.cache import ArtifactCache
from repro.api.report import AnalysisRequest
from repro.api.session import AnalysisSession
from repro.campaigns.runner import (
    CampaignOutcome,
    CampaignRunner,
    materialise_tree,
    merge_scenario_reports,
)
from repro.campaigns.spec import CampaignError, CampaignSpec, StageSpec
from repro.exceptions import ReproError
from repro.fta.parsers.json_format import parse_json_document
from repro.fta.serializers import to_json_document
from repro.fta.tree import FaultTree
from repro.observability.log import log_event
from repro.observability.trace import Tracer, use_tracer
from repro.reliability.assignment import ReliabilityAssignment
from repro.scenarios.planner import HardeningAction, pareto_frontier, validate_actions
from repro.scenarios.report import ScenarioReport
from repro.scenarios.scenario import Scenario
from repro.scenarios.serialization import actions_from_spec, scenarios_from_spec
from repro.scenarios.sweep import DEFAULT_ANALYSES, DEFAULT_BACKEND
from repro.service.jobs import Job, JobCancelled, JobError, JobQueue, JobTimeout
from repro.service.store import DiskArtifactStore, open_store

__all__ = [
    "JobRunner",
    "WorkerPool",
    "decode_campaign_payload",
    "decode_frontier_payload",
    "decode_sweep_payload",
    "merge_scenario_reports",
    "run_parallel_sweep",
]

#: Frontier methods accepted over the wire.
_FRONTIER_METHODS = ("auto", "exact", "greedy")


def _materialised_tree(
    payload: Dict[str, Any]
) -> Tuple[FaultTree, Optional[ReliabilityAssignment], Optional[float]]:
    """Decode the payload's tree, materialising reliability models if present.

    Thin wrapper over :func:`repro.campaigns.runner.materialise_tree` mapping
    its errors onto :class:`JobError` (the HTTP 400 vocabulary).
    """
    try:
        return materialise_tree(
            payload.get("tree"), payload.get("models"), payload.get("mission_time")
        )
    except CampaignError as exc:
        raise JobError(str(exc).replace("campaign", "job payload", 1)) from exc


def decode_sweep_payload(
    payload: Dict[str, Any]
) -> Tuple[FaultTree, List[Scenario]]:
    """Decode (and thereby fully validate) a sweep job payload.

    Shared by :meth:`JobRunner.execute` and the HTTP submit path: running it
    at submission time turns malformed trees, patches and specs into
    immediate HTTP 400s instead of per-scenario failures mid-job.
    """
    tree, assignment, mission_time = _materialised_tree(payload)
    spec = payload.get("scenarios")
    if spec is None:
        raise JobError("sweep job payload needs a 'scenarios' list or family spec")
    scenarios = scenarios_from_spec(
        spec, assignment=assignment, mission_time=mission_time
    )
    return tree, scenarios


def decode_frontier_payload(
    payload: Dict[str, Any]
) -> Tuple[FaultTree, List[HardeningAction], Dict[str, Any]]:
    """Decode (and thereby fully validate) a frontier job payload."""
    tree, _, _ = _materialised_tree(payload)
    actions = actions_from_spec(payload.get("actions"))
    validate_actions(tree, actions)
    method = payload.get("method", "auto")
    if method not in _FRONTIER_METHODS:
        raise JobError(
            f"unknown frontier method {method!r}; expected one of "
            f"{', '.join(_FRONTIER_METHODS)}"
        )
    precision = payload.get("precision", 10**6)
    if not isinstance(precision, int) or isinstance(precision, bool) or precision < 1:
        raise JobError(f"'precision' must be a positive integer, got {precision!r}")
    return tree, actions, {"method": method, "precision": precision}


def decode_campaign_payload(payload: Dict[str, Any]) -> CampaignSpec:
    """Decode (and thereby fully validate) a campaign job payload.

    The payload carries the campaign spec document under ``spec`` (or is the
    spec document itself, for convenience).  Decoding validates the DAG, the
    tree and — stage by stage — every scenario/action document, so malformed
    campaigns are immediate HTTP 400s.
    """
    document = payload.get("spec", payload)
    try:
        spec = CampaignSpec.from_dict(document)
    except CampaignError as exc:
        raise JobError(str(exc)) from exc
    tree, assignment, mission_time = materialise_tree(
        spec.tree, spec.models, spec.mission_time
    )
    for stage in spec.stages:
        if stage.kind == "sweep":
            raw = stage.payload.get("scenarios")
            if raw is None:
                raise JobError(
                    f"sweep stage {stage.name!r} needs a 'scenarios' list or family spec"
                )
            scenarios_from_spec(raw, assignment=assignment, mission_time=mission_time)
        elif stage.kind == "frontier":
            actions = actions_from_spec(stage.payload.get("actions"))
            validate_actions(tree, actions)
            method = stage.payload.get("method", "auto")
            if method not in _FRONTIER_METHODS:
                raise JobError(
                    f"stage {stage.name!r}: unknown frontier method {method!r}; "
                    f"expected one of {', '.join(_FRONTIER_METHODS)}"
                )
    return spec


def _partition(items: Sequence[Any], parts: int) -> List[Sequence[Any]]:
    """Split ``items`` into at most ``parts`` contiguous, order-preserving chunks."""
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    chunks: List[Sequence[Any]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def run_parallel_sweep(
    tree: FaultTree,
    scenarios: Sequence[Scenario],
    *,
    workers: int,
    store_path: Optional[str] = None,
    analyses: Sequence[str] = DEFAULT_ANALYSES,
    backend: str = DEFAULT_BACKEND,
    incremental: bool = True,
    exact_top_event: bool = True,
    top_k: int = 5,
    samples: int = 0,
    seed: int = 0,
    cache_max_entries: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    stop_check: Optional[Any] = None,
    on_outcome: Optional[Any] = None,
) -> ScenarioReport:
    """Evaluate a scenario sweep partitioned over ``workers`` processes.

    Internally this is a **one-stage campaign**: the grid becomes a single
    ``sweep`` stage, chunked into at most ``workers`` contiguous slices, each
    executed through the unmodified sequential
    :class:`~repro.scenarios.sweep.SweepExecutor` (in spawn worker processes
    when ``workers > 1``, in-process otherwise).  Each worker's executor
    applies the full batched fast path to its own slice — one
    :meth:`~repro.scenarios.sweep.SweepExecutor.precompute_top_events` BDD
    pass and one
    :meth:`~repro.scenarios.sweep.SweepExecutor.precompute_rerank` MaxSAT
    re-rank batch per structure, per chunk.  With a ``store_path`` every
    finished chunk is persisted in the campaign completion ledger, so an
    identical sweep — same tree, configuration and scenarios — resumes from
    the ledger instead of recomputing, and a sweep killed mid-run only redoes
    its unfinished chunks.

    Results are canonically identical to the sequential executor on the same
    grid — compare :meth:`ScenarioReport.to_canonical_dict` — whether chunks
    were computed or replayed from the ledger.  ``workers <= 1`` (or a
    platform without subprocess support) degrades to in-process execution
    over a store-backed session.  Scenarios without a JSON wire form (live
    bound maintenance patches) run unledgered: everything still executes and
    merges, nothing persists.

    ``stop_check`` is a zero-argument callable polled at scenario and chunk
    boundaries; aborting is done by raising from it.  ``on_outcome`` is the
    campaign runner's per-scenario progress hook (at-least-once delivery;
    see :class:`~repro.campaigns.runner.CampaignRunner`): the service uses it
    to stream partial sweep results while the job runs.
    """
    scenario_list = list(scenarios)
    started = time.perf_counter()

    tree_document: Optional[Dict[str, Any]]
    try:
        tree_document = to_json_document(tree)
    except ReproError:
        # No faithful tree document means no trustworthy content addresses:
        # run the campaign without a store so nothing mis-keyed persists.
        tree_document = None

    fan_out = workers if len(scenario_list) > 1 else 0
    if scenario_list and fan_out > 1:
        chunk_count = min(fan_out, len(scenario_list))
        chunk_size = -(-len(scenario_list) // chunk_count)  # ceil division
    else:
        chunk_size = 0  # one chunk
    spec = CampaignSpec(
        name=f"parallel-sweep-{tree.name}",
        tree=tree_document if tree_document is not None else {"name": tree.name},
        stages=(
            StageSpec(name="sweep", kind="sweep", payload={"chunk_size": chunk_size}),
        ),
        analyses=tuple(analyses),
        backend=backend,
        incremental=incremental,
        exact_top_event=exact_top_event,
        top_k=top_k,
        samples=samples,
        seed=seed,
        workers=fan_out,
    )
    runner = CampaignRunner(
        store_path=store_path if tree_document is not None else None,
        session=session,
        cache_max_entries=cache_max_entries,
        stop_check=stop_check,
        on_outcome=on_outcome,
    )
    outcome = runner.run(spec, tree=tree, scenario_overrides={"sweep": scenario_list})
    report = outcome.report()
    if report is None:  # pragma: no cover - a sweep stage always yields a report
        raise ReproError("parallel sweep produced no report")
    report.total_time_s = time.perf_counter() - started
    return report


class _JobGuard:
    """Cancellation/timeout guard for one running job.

    Callable form (``guard()`` -> bool) feeds the MaxSAT portfolio's engine
    ``stop_check`` hook; :meth:`check` is the raising form polled at
    scenario/chunk boundaries.  Timeouts are measured from the job's claim
    time, so queue wait does not count against the budget.
    """

    def __init__(self, job: Job) -> None:
        self.job = job
        started = job.started_at if job.started_at is not None else time.time()
        self.deadline = started + job.timeout if job.timeout is not None else None

    def expired(self) -> bool:
        return self.deadline is not None and time.time() > self.deadline

    def __call__(self) -> bool:
        return self.job.cancel_event.is_set() or self.expired()

    def check(self) -> None:
        if self.job.cancel_event.is_set():
            raise JobCancelled(f"job {self.job.id} was cancelled")
        if self.expired():
            raise JobTimeout(f"timed out after {self.job.timeout:g}s")


class JobRunner:
    """Executes queued jobs against a persistent store-backed session.

    One runner per worker thread: the session (and its memory cache tier) is
    reused across jobs, while the disk store shares artifacts with every
    other runner, process and past service run.
    """

    def __init__(
        self,
        *,
        store_path: Optional[str] = None,
        store: Optional[DiskArtifactStore] = None,
        cache_max_entries: Optional[int] = None,
        sweep_workers: int = 0,
        mode: str = "thread",
    ) -> None:
        if store is None:
            store = open_store(store_path)
        elif store_path is None:
            store_path = str(store.root)
        self.store = store
        self.store_path = store_path
        self.cache_max_entries = cache_max_entries
        self.sweep_workers = sweep_workers
        self.session = AnalysisSession(
            mode=mode,
            cache=ArtifactCache(max_entries=cache_max_entries, backend=store),
        )

    # -- payload decoding -------------------------------------------------------------

    @staticmethod
    def _tree_from(payload: Dict[str, Any]) -> FaultTree:
        document = payload.get("tree")
        if not isinstance(document, dict):
            raise JobError("job payload needs a 'tree' JSON document")
        return parse_json_document(document)

    @staticmethod
    def _request_from(payload: Dict[str, Any]) -> AnalysisRequest:
        # The job payload is a superset of the request document (extra keys
        # like "tree" are ignored by from_dict), so the wire decode is the
        # report module's own inverse — one place defines the fields.
        return AnalysisRequest.from_dict(payload)

    # -- job kinds --------------------------------------------------------------------

    def execute(self, job: Job) -> Dict[str, Any]:
        """Run one claimed job and return its JSON-serialisable result.

        The job's cancellation/timeout guard is active for the whole run:
        wired into the session's MaxSAT portfolio (engine ``stop_check``) and
        polled at scenario/chunk boundaries by the sweep and campaign paths.
        :class:`JobCancelled` / :class:`JobTimeout` escape to the worker
        loop, which settles the job accordingly.

        The whole run executes under a fresh per-job :class:`Tracer`; the
        resulting span tree is attached to ``job.trace`` even when the job
        fails, so ``GET /jobs/<id>/trace`` covers error postmortems too.
        """
        guard = _JobGuard(job)
        portfolio = getattr(self.session.solver, "portfolio", None)
        if portfolio is not None:
            portfolio.external_stop = guard
        tracer = Tracer()
        try:
            with use_tracer(tracer), tracer.span(
                f"job:{job.kind}", job_id=job.id
            ):
                guard.check()
                if job.kind == "analyze":
                    return self._run_analyze(job.payload)
                if job.kind == "batch":
                    return self._run_batch(job.payload, guard)
                if job.kind == "sweep":
                    return self._run_sweep(job.payload, guard, progress=job.progress)
                if job.kind == "frontier":
                    return self._run_frontier(job.payload)
                if job.kind == "campaign":
                    return self._run_campaign(job.payload, guard)
                raise JobError(f"unknown job kind {job.kind!r}")
        finally:
            job.trace = tracer.to_dict()
            if portfolio is not None:
                portfolio.external_stop = None

    def _run_analyze(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tree = self._tree_from(payload)
        report = self.session.run(tree, self._request_from(payload))
        return {"kind": "analyze", "tree": tree.name, "report": report.to_dict()}

    def _run_batch(
        self, payload: Dict[str, Any], guard: Optional[_JobGuard] = None
    ) -> Dict[str, Any]:
        documents = payload.get("trees")
        if not isinstance(documents, list) or not documents:
            raise JobError("batch job payload needs a non-empty 'trees' list")
        request = self._request_from(payload)
        items: List[Dict[str, Any]] = []
        for index, document in enumerate(documents):
            # Outside the per-item handler: cancellation aborts the batch, it
            # is never recorded as one failed tree.
            if guard is not None:
                guard.check()
            try:
                tree = parse_json_document(document)
                report = self.session.run(tree, request)
                items.append(
                    {"index": index, "tree": tree.name, "ok": True, "report": report.to_dict()}
                )
            except (JobCancelled, JobTimeout):
                raise
            except Exception as exc:  # noqa: BLE001 - failures are data in a batch
                name = document.get("name", f"#{index}") if isinstance(document, dict) else f"#{index}"
                log_event(
                    "service.workers",
                    "batch_item_failed",
                    index=index,
                    tree=name,
                    error=str(exc),
                )
                items.append({"index": index, "tree": name, "ok": False, "error": str(exc)})
        return {
            "kind": "batch",
            "num_ok": sum(1 for item in items if item["ok"]),
            "items": items,
        }

    def _run_sweep(
        self,
        payload: Dict[str, Any],
        guard: Optional[_JobGuard] = None,
        progress: Optional[Any] = None,
    ) -> Dict[str, Any]:
        tree, scenarios = decode_sweep_payload(payload)
        # A missing/zero workers field means "use the service default" (the
        # CLI always sends the key, with 0 when the user did not choose).
        workers = int(payload.get("workers") or 0) or self.sweep_workers
        on_outcome = None
        if progress is not None:
            total = len(scenarios)

            def on_outcome(outcome: Any) -> None:
                # The buffer closes when the job settles; a replayed chunk
                # racing a cancellation must not crash the worker over a
                # progress frame nobody can receive anymore.
                if not progress.closed:
                    document = outcome.to_dict()
                    document["total"] = total
                    progress.append("scenario", document)

        report = run_parallel_sweep(
            tree,
            scenarios,
            workers=workers,
            store_path=self.store_path,
            analyses=tuple(payload.get("analyses", DEFAULT_ANALYSES)),
            backend=payload.get("backend", DEFAULT_BACKEND),
            incremental=bool(payload.get("incremental", True)),
            exact_top_event=bool(payload.get("exact_top_event", True)),
            top_k=int(payload.get("top_k", 5)),
            samples=int(payload.get("samples", 0)),
            seed=int(payload.get("seed", 0)),
            cache_max_entries=self.cache_max_entries,
            session=self.session if workers <= 1 else None,
            stop_check=guard.check if guard is not None else None,
            on_outcome=on_outcome,
        )
        return {
            "kind": "sweep",
            "tree": tree.name,
            "workers": workers,
            "num_scenarios": len(report),
            "report": report.to_dict(),
        }

    def _run_frontier(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tree, actions, options = decode_frontier_payload(payload)
        frontier = pareto_frontier(
            tree,
            actions,
            method=options["method"],
            precision=options["precision"],
            cache=self.session.artifacts,
        )
        return {
            "kind": "frontier",
            "tree": tree.name,
            "method": frontier.method,
            "num_points": len(frontier),
            "frontier": frontier.to_dict(),
        }

    def _run_campaign(
        self, payload: Dict[str, Any], guard: Optional[_JobGuard] = None
    ) -> Dict[str, Any]:
        spec = decode_campaign_payload(payload)
        runner = CampaignRunner(
            store=self.store,
            store_path=self.store_path,
            session=self.session,
            cache_max_entries=self.cache_max_entries,
            stop_check=guard.check if guard is not None else None,
        )
        outcome: CampaignOutcome = runner.run(spec)
        document = outcome.to_dict()
        document["kind"] = "campaign"
        document["result"] = outcome.result_document()
        return document


class WorkerPool:
    """Threads draining a :class:`JobQueue`, one :class:`JobRunner` each.

    Analysis is CPU-bound pure Python, so thread-level parallelism mostly
    provides job-level concurrency (a long sweep does not block a quick
    status-probe analysis); true parallel compute comes from the process
    fan-out inside sweep/campaign jobs (``workers`` in the payload) and the
    MaxSAT portfolio's own process mode.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        workers: int = 2,
        store_path: Optional[str] = None,
        store: Optional[DiskArtifactStore] = None,
        cache_max_entries: Optional[int] = None,
        sweep_workers: int = 0,
        poll_interval: float = 0.2,
    ) -> None:
        if workers < 1:
            raise JobError(f"worker pool needs at least one worker, got {workers}")
        self.queue = queue
        self.num_workers = workers
        # One store handle shared by every runner (and the service's health
        # view): the handle is just counters + path mapping, and sharing it
        # makes its statistics reflect the whole pool.
        self._runner_config = {
            "store_path": store_path,
            "store": store if store is not None else open_store(store_path),
            "cache_max_entries": cache_max_entries,
            "sweep_workers": sweep_workers,
        }
        self._poll_interval = poll_interval
        self._threads: List[threading.Thread] = []
        self._runners: List[JobRunner] = []
        self._runners_lock = threading.Lock()
        self._stop = threading.Event()

    def start(self) -> "WorkerPool":
        if self._threads:
            raise JobError("worker pool already started")
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _worker_loop(self) -> None:
        runner = JobRunner(**self._runner_config)
        with self._runners_lock:
            self._runners.append(runner)
        while not self._stop.is_set():
            job = self.queue.claim(timeout=self._poll_interval)
            if job is None:
                continue
            try:
                result = runner.execute(job)
            except JobCancelled:
                log_event("service.workers", "job_cancelled", job=job.id, kind=job.kind)
                self.queue.finish_cancelled(job.id)
            except JobTimeout as exc:
                log_event(
                    "service.workers",
                    "job_timed_out",
                    job=job.id,
                    kind=job.kind,
                    error=str(exc),
                )
                self.queue.fail(job.id, str(exc))
            except Exception as exc:  # noqa: BLE001 - job failures are results
                # An engine interrupted by the guard surfaces as a generic
                # solver error; attribute it to the cancellation/timeout that
                # actually caused it.
                if job.cancel_event.is_set():
                    log_event(
                        "service.workers", "job_cancelled", job=job.id, kind=job.kind
                    )
                    self.queue.finish_cancelled(job.id)
                elif (
                    job.timeout is not None
                    and job.started_at is not None
                    and time.time() > job.started_at + job.timeout
                ):
                    log_event(
                        "service.workers", "job_timed_out", job=job.id, kind=job.kind
                    )
                    self.queue.fail(job.id, f"timed out after {job.timeout:g}s")
                else:
                    log_event(
                        "service.workers",
                        "job_failed",
                        job=job.id,
                        kind=job.kind,
                        error=str(exc),
                    )
                    self.queue.fail(job.id, str(exc))
            else:
                self.queue.finish(job.id, result)

    def cache_stats(self) -> Dict[str, Any]:
        """Merged artifact-cache statistics across every runner in the pool.

        Counters (including the per-kind ``store_hits``/``store_misses`` of
        store-backed sessions) sum field-wise, so the ``/health`` document
        shows fleet-wide cache effectiveness rather than one thread's view.
        """
        with self._runners_lock:
            parts = [runner.session.artifacts.stats() for runner in self._runners]
        from repro.campaigns.runner import _merge_cache_stats

        return _merge_cache_stats(parts)

    def stop(self, *, timeout: float = 5.0) -> None:
        """Stop accepting work and join the worker threads."""
        self._stop.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
