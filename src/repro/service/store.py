"""Persistent, content-addressed artifact store shared between processes.

:class:`DiskArtifactStore` implements the
:class:`~repro.api.cache.ArtifactStoreBackend` protocol over a directory
tree, so an :class:`~repro.api.cache.ArtifactCache` constructed with
``backend=DiskArtifactStore(path)`` transparently reuses every artifact any
earlier (or concurrent) process computed for a structurally identical
(sub)tree.

Design points:

* **Content addressing.**  Entries live at
  ``<root>/v<FORMAT_VERSION>/<kind-slug>/<hh>/<hash>.art`` where ``hash`` is
  the cache's own structural / subtree-structure key.  Identical keys imply
  identical values (the keys are content hashes over everything that
  influences the artifact), so concurrent writers racing on one entry are
  benign — whichever atomic rename lands last installs the same bytes.
* **Atomic writes.**  Every entry is written to a unique temporary file in
  the destination directory and published with :func:`os.replace`; a reader
  can never observe a half-written entry under its final name, and a crashed
  writer leaves only a ``*.tmp*`` file that is ignored (and swept by
  :meth:`sweep_temp_files`).
* **Versioned format with integrity checks.**  Each file carries a magic
  tag, a format version and a SHA-256 digest of the pickled payload.  A torn,
  truncated or bit-flipped entry fails verification, is treated as a miss and
  is deleted so it cannot poison later readers.  Bumping
  :data:`FORMAT_VERSION` retires old entries wholesale (they live under a
  different version directory) instead of misreading them.
* **Best-effort durability.**  ``store`` never raises on unpicklable values
  or filesystem trouble — the memory tier still holds the artifact and the
  analysis proceeds; the failure is only counted (``errors`` /
  ``skipped_unpicklable`` in :meth:`stats`).
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import re
import struct
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.api.cache import ARTIFACT_CAMPAIGN_LEDGER, ArtifactStoreBackend
from repro.observability.log import log_event
from repro.observability.metrics import get_metrics

__all__ = ["DiskArtifactStore", "FORMAT_VERSION", "MAGIC", "open_store"]

#: Magic tag opening every artifact file.
MAGIC = b"RPROART1"
#: On-disk format version; bump to orphan (not misread) old entries.
FORMAT_VERSION = 1

#: Header layout after the magic: format version, payload length, SHA-256
#: digest of the payload.  Fixed-size so verification reads are trivial.
_HEADER = struct.Struct(">IQ32s")

_SLUG_RE = re.compile(r"[^a-z0-9_-]+")


def _kind_slug(kind: str) -> str:
    """Filesystem-safe directory name for an artifact kind."""
    slug = _SLUG_RE.sub("-", kind.lower()).strip("-")
    return slug or "unknown"


class DiskArtifactStore(ArtifactStoreBackend):
    """Disk-backed second tier for :class:`~repro.api.cache.ArtifactCache`.

    Parameters
    ----------
    root:
        Directory holding the store (created on demand).  Multiple processes
        may point at the same root concurrently.
    protocol:
        Pickle protocol for payloads; defaults to
        :data:`pickle.HIGHEST_PROTOCOL`.
    fsync:
        When true, fsync every entry before publishing it.  Off by default —
        the store is a cache: losing an entry on power failure only costs a
        recomputation, while fsync per artifact costs milliseconds each.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        protocol: int = pickle.HIGHEST_PROTOCOL,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.protocol = protocol
        self.fsync = fsync
        self._version_dir = self.root / f"v{FORMAT_VERSION}"
        self._version_dir.mkdir(parents=True, exist_ok=True)
        # The store deserialises pickles, so its directory is a trust
        # boundary: anyone who can write it can execute code in every
        # process that reads it.  Keep it private to the owning user
        # (best effort — e.g. FAT filesystems have no mode bits).
        try:
            os.chmod(self.root, 0o700)
        except OSError:
            pass
        self._entries_memo: Optional[Tuple[float, int]] = None
        # One handle is shared by every worker thread (the pool deliberately
        # shares it so the statistics cover the whole service), so the memo's
        # read-modify-write updates need a lock to not lose counts.
        self._memo_lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "loads": 0,
            "load_hits": 0,
            "load_misses": 0,
            "writes": 0,
            "corrupt_dropped": 0,
            "skipped_unpicklable": 0,
            "errors": 0,
            "gc_runs": 0,
            "gc_removed": 0,
            "gc_removed_bytes": 0,
            "gc_protected": 0,
        }

    # -- key -> path mapping ----------------------------------------------------------

    def path_for(self, key_hash: str, kind: str) -> Path:
        """The on-disk location of the entry for ``(key_hash, kind)``."""
        return self._version_dir / _kind_slug(kind) / key_hash[:2] / f"{key_hash}.art"

    # -- ArtifactStoreBackend protocol ------------------------------------------------

    def load(self, key_hash: str, kind: str) -> Tuple[bool, Any]:
        """Read and verify one entry; corrupt entries count as misses and are dropped."""
        self._counters["loads"] += 1
        registry = get_metrics()
        registry.inc("repro_store_reads_total", kind=kind)
        path = self.path_for(key_hash, kind)
        try:
            blob = path.read_bytes()
        except OSError:
            self._counters["load_misses"] += 1
            return False, None
        value, ok = self._decode(blob)
        if not ok:
            self._counters["corrupt_dropped"] += 1
            self._counters["load_misses"] += 1
            registry.inc("repro_store_dropped_entries_total", reason="corrupt", kind=kind)
            log_event(
                "service.store",
                "corrupt_entry_dropped",
                kind=kind,
                key=key_hash,
                path=str(path),
            )
            self._unlink_quietly(path)
            return False, None
        self._counters["load_hits"] += 1
        return True, value

    def discard(self, key_hash: str) -> int:
        """Remove every kind stored under ``key_hash``; returns the count.

        Backs :meth:`ArtifactCache.invalidate` for store-backed caches; the
        scan is one glob per kind directory, not a full store walk.
        """
        removed = 0
        for path in self._version_dir.glob(f"*/{key_hash[:2]}/{key_hash}.art"):
            self._unlink_quietly(path)
            removed += 1
        return removed

    def store(self, key_hash: str, kind: str, value: Any) -> None:
        """Atomically persist one entry; never raises (best-effort tier)."""
        registry = get_metrics()
        try:
            payload = pickle.dumps(value, protocol=self.protocol)
        except Exception as exc:  # noqa: BLE001 - unpicklable artifacts are skipped
            self._counters["skipped_unpicklable"] += 1
            registry.inc(
                "repro_store_dropped_entries_total", reason="unpicklable", kind=kind
            )
            log_event(
                "service.store",
                "unpicklable_entry_skipped",
                kind=kind,
                key=key_hash,
                error=type(exc).__name__,
            )
            return
        blob = self._encode(payload)
        path = self.path_for(key_hash, kind)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key_hash[:8]}.", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    if self.fsync:
                        handle.flush()
                        os.fsync(handle.fileno())
                # Keep the memoised entry count fresh under heavy writing: a
                # brand-new entry bumps the count in place (overwrites leave
                # it unchanged).  The existence check, the publishing rename
                # and the bump form one critical section so two threads
                # racing on the same new key cannot both count it; the memo's
                # timestamp is deliberately untouched so the periodic full
                # recount still reconciles entries written by *other*
                # processes sharing the store directory.
                with self._memo_lock:
                    existed = path.is_file()
                    os.replace(temp_name, path)
                    if not existed and self._entries_memo is not None:
                        self._entries_memo = (
                            self._entries_memo[0],
                            self._entries_memo[1] + 1,
                        )
            except BaseException:
                self._unlink_quietly(Path(temp_name))
                raise
            self._counters["writes"] += 1
            registry.inc("repro_store_writes_total", kind=kind)
        except OSError as exc:
            self._counters["errors"] += 1
            registry.inc(
                "repro_store_dropped_entries_total", reason="io_error", kind=kind
            )
            log_event(
                "service.store",
                "write_failed",
                kind=kind,
                key=key_hash,
                error=type(exc).__name__,
            )

    # -- wire format ------------------------------------------------------------------

    def _encode(self, payload: bytes) -> bytes:
        digest = hashlib.sha256(payload).digest()
        buffer = io.BytesIO()
        buffer.write(MAGIC)
        buffer.write(_HEADER.pack(FORMAT_VERSION, len(payload), digest))
        buffer.write(payload)
        return buffer.getvalue()

    @staticmethod
    def _decode(blob: bytes) -> Tuple[Any, bool]:
        """``(value, ok)``; ``ok`` is false for torn/corrupt/foreign content."""
        header_end = len(MAGIC) + _HEADER.size
        if len(blob) < header_end or not blob.startswith(MAGIC):
            return None, False
        version, length, digest = _HEADER.unpack_from(blob, len(MAGIC))
        payload = blob[header_end:]
        if version != FORMAT_VERSION or len(payload) != length:
            return None, False
        if hashlib.sha256(payload).digest() != digest:
            return None, False
        try:
            return pickle.loads(payload), True
        except Exception:  # obs-exempt: load() logs and counts corrupt_dropped
            return None, False

    # -- maintenance ------------------------------------------------------------------

    def __contains__(self, key: Tuple[str, str]) -> bool:
        key_hash, kind = key
        return self.path_for(key_hash, kind).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _entry_paths(self) -> Iterator[Path]:
        yield from self._version_dir.glob("*/*/*.art")

    def _unlink_quietly(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def sweep_temp_files(self) -> int:
        """Remove temporary files abandoned by crashed writers; returns the count."""
        removed = 0
        for leftover in self._version_dir.glob("*/*/.*.tmp*"):
            self._unlink_quietly(leftover)
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry of the current format version; returns the count."""
        removed = 0
        for path in list(self._entry_paths()):
            self._unlink_quietly(path)
            removed += 1
        return removed

    def _protected_ledger_paths(self) -> "set[Path]":
        """Campaign-ledger entries that :meth:`gc` must never evict.

        Evicting the completion ledger of a campaign that is still running
        (or was killed mid-run and will be resumed) would silently turn its
        resume into a full recomputation, so every ledger record — chunk and
        state alike — of a campaign whose state is not terminal is protected.
        A campaign with no readable state record is treated as non-terminal:
        the conservative default keeps a crashed-before-first-state-write
        campaign resumable.
        """
        ledger_dir = self._version_dir / _kind_slug(ARTIFACT_CAMPAIGN_LEDGER)
        records: "list[Tuple[Path, Dict[str, Any]]]" = []
        status_by_campaign: Dict[str, str] = {}
        for path in ledger_dir.glob("*/*.art"):
            try:
                blob = path.read_bytes()
            except OSError:
                continue
            value, ok = self._decode(blob)
            if not ok or not isinstance(value, dict):
                continue  # corrupt/foreign: not protected, normal gc applies
            campaign = value.get("campaign")
            if not isinstance(campaign, str):
                continue
            records.append((path, value))
            if "spec" in value and isinstance(value.get("status"), str):
                status_by_campaign[campaign] = value["status"]
        terminal = ("done", "failed")
        return {
            path
            for path, value in records
            if status_by_campaign.get(value["campaign"]) not in terminal
        }

    def gc(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
    ) -> Dict[str, int]:
        """Evict entries by age and/or total size; returns a removal summary.

        ``max_age_s`` drops every entry older than that many seconds (by
        mtime — an overwrite refreshes it).  ``max_bytes`` then evicts
        oldest-first until the store fits the budget.  Both are optional and
        compose; calling with neither is a no-op.  Ledger entries of
        non-terminal campaigns are never evicted (see
        :meth:`_protected_ledger_paths`) — they are the resume state of
        in-flight work, not reproducible cache content.  Eviction totals
        accumulate in :meth:`stats` (``gc_removed``, ``gc_removed_bytes``,
        ``gc_protected``).
        """
        now = time.time()
        removed = 0
        removed_bytes = 0
        protected_kept = 0
        protected = self._protected_ledger_paths() if (
            max_bytes is not None or max_age_s is not None
        ) else set()

        entries: "list[Tuple[float, int, Path]]" = []
        for path in self._entry_paths():
            try:
                info = path.stat()
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))

        survivors: "list[Tuple[float, int, Path]]" = []
        for mtime, size, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                if path in protected:
                    protected_kept += 1
                    survivors.append((mtime, size, path))
                    continue
                self._unlink_quietly(path)
                removed += 1
                removed_bytes += size
                continue
            survivors.append((mtime, size, path))

        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            for mtime, size, path in sorted(survivors):
                if total <= max_bytes:
                    break
                if path in protected:
                    protected_kept += 1
                    continue
                self._unlink_quietly(path)
                removed += 1
                removed_bytes += size
                total -= size

        with self._memo_lock:
            self._entries_memo = None  # force a recount at the next stats()
            self._counters["gc_runs"] += 1
            self._counters["gc_removed"] += removed
            self._counters["gc_removed_bytes"] += removed_bytes
            self._counters["gc_protected"] += protected_kept
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "protected": protected_kept,
        }

    def size_bytes(self) -> int:
        """Total payload bytes currently on disk (entries of this version)."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    #: How long a counted on-disk entry total stays fresh in :meth:`stats`.
    ENTRIES_MEMO_TTL_S = 15.0

    def stats(self) -> Dict[str, Any]:
        """Process-local operation counters plus the on-disk entry count.

        Counting entries walks the store directory (O(entries)); the count is
        memoised for :data:`ENTRIES_MEMO_TTL_S` so a monitoring loop polling
        ``/health`` does not turn into a continuous filesystem scan.  Writes
        of *new* entries through this handle bump the memoised count in place
        (see :meth:`store`), so ``entries`` stays accurate during heavy
        writing; entries created by other processes appear at the next
        TTL-driven recount.
        """
        now = time.monotonic()
        with self._memo_lock:
            memo = self._entries_memo
        if memo is None or now - memo[0] > self.ENTRIES_MEMO_TTL_S:
            # len(self) walks the directory: keep it outside the lock, and
            # re-check on publication so a racing recount is not regressed.
            memo = (now, len(self))
            with self._memo_lock:
                if self._entries_memo is None or self._entries_memo[0] < now:
                    self._entries_memo = memo
                memo = self._entries_memo
        stats: Dict[str, Any] = dict(self._counters)
        stats["entries"] = memo[1]
        stats["root"] = str(self.root)
        stats["format_version"] = FORMAT_VERSION
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskArtifactStore(root={str(self.root)!r})"


def open_store(path: "Optional[str | os.PathLike[str]]") -> Optional[DiskArtifactStore]:
    """``DiskArtifactStore(path)`` or ``None`` when no path is configured."""
    return DiskArtifactStore(path) if path is not None else None
