"""Dependency-free HTTP/JSON front end for the analysis service.

Built on :class:`http.server.ThreadingHTTPServer` — no web framework, in
keeping with the library's pure-standard-library policy.  The wire format is
exactly the job payload/result vocabulary of :mod:`repro.service.workers`,
so anything expressible through the Python API is expressible over HTTP:

====== ========================== ==============================================
Method Path                       Meaning
====== ========================== ==============================================
GET    ``/health``                liveness + queue and store statistics
GET    ``/backends``              registered analysis backends and capabilities
POST   ``/analyze``               submit a single-tree analysis job
POST   ``/batch``                 submit a many-trees batch job
POST   ``/sweep``                 submit a scenario sweep job
POST   ``/frontier``              submit a Pareto-frontier mitigation-planning job
POST   ``/campaigns``             submit (or resume) a resumable campaign
GET    ``/campaigns``             list known campaigns and their states
GET    ``/campaigns/<id>``        campaign status with per-stage chunk progress
GET    ``/campaigns/<id>/result`` the finished campaign's result (409 until done)
POST   ``/campaigns/<id>/resume`` resubmit a campaign by id (resumes from ledger)
GET    ``/jobs``                  list jobs in the ledger
GET    ``/jobs/<id>``             one job's status document
GET    ``/jobs/<id>/result``      the finished job's result (409 until done)
POST   ``/jobs/<id>/cancel``      cancel a queued job, or request cooperative
                                  cancellation of a running one
GET    ``/sweeps/<id>/stream``    SSE stream of a sweep job's per-scenario
                                  progress (``Last-Event-ID`` replays)
POST   ``/monitor``               start the live tree monitor (409 if running)
GET    ``/monitor``               monitor status document (404 if none)
GET    ``/monitor/alerts``        the monitor's alert ledger
GET    ``/monitor/stream``        SSE stream of monitor deltas and alerts
POST   ``/monitor/stop``          stop the running monitor
====== ========================== ==============================================

The two ``/…/stream`` endpoints speak ``text/event-stream``
(:mod:`repro.monitoring.sse`): every frame carries the strictly-increasing
buffer id, so a client reconnecting with ``Last-Event-ID`` receives exactly
the events it missed.  Streams end with an ``end`` event when the source
(monitor or job) finishes.

Campaign identity is content-addressed (the id is a hash of the canonical
spec document), so ``POST /campaigns`` with a spec whose campaign already ran
— fully or partially — resumes it from the completion ledger instead of
recomputing; ``/campaigns/<id>/resume`` does the same by id alone, using the
spec persisted in the ledger's state record (it therefore works even after a
service restart).

Submissions return ``202 Accepted`` with the job status document; pass
``"wait": true`` (optionally ``"timeout": seconds``) in the body to block
until the job settles and receive the result inline (``200``).

:class:`ServiceClient` is the matching :mod:`urllib`-based client used by the
``repro submit`` / ``repro jobs`` CLI subcommands, the tests and the demo.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union
from urllib.parse import urlsplit

from repro.api.registry import available_backends
from repro.campaigns.ledger import campaign_state
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.exceptions import ReproError
from repro.fta.parsers.json_format import parse_json_document
from repro.fta.serializers import to_json_document
from repro.fta.tree import FaultTree
from repro.monitoring.events import EventBuffer
from repro.monitoring.feeds import feed_from_spec
from repro.monitoring.monitor import TreeMonitor
from repro.monitoring.sse import SSEClient, format_sse
from repro.observability.log import log_event
from repro.observability.metrics import enable_metrics
from repro.scenarios.serialization import monitor_rules_from_spec
from repro.scenarios.sweep import DEFAULT_ANALYSES
from repro.service.jobs import CONTROL_PRIORITY, Job, JobError, JobQueue, JobStatus
from repro.service.store import open_store
from repro.service.workers import (
    WorkerPool,
    decode_campaign_payload,
    decode_frontier_payload,
    decode_sweep_payload,
)

__all__ = ["AnalysisService", "ServiceClient", "ServiceError", "serve"]

#: Refuse request bodies larger than this (a tree document of this size is
#: far beyond anything the analyses handle anyway).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceError(ReproError):
    """Client-side error talking to the analysis service."""


class AnalysisService:
    """The deployable unit: job queue + worker pool + shared disk store.

    Parameters
    ----------
    store_path:
        Directory of the shared :class:`~repro.service.store.DiskArtifactStore`;
        ``None`` runs with in-memory caches only (artifacts die with the
        process).
    workers:
        Worker *threads* draining the job queue (job-level concurrency).
    sweep_workers:
        Default process fan-out for sweep jobs that do not specify their own
        ``workers``; ``0`` keeps sweeps in-process.
    cache_max_entries:
        LRU bound for each runner's in-memory cache tier.
    """

    def __init__(
        self,
        *,
        store_path: Optional[str] = None,
        workers: int = 2,
        sweep_workers: int = 0,
        cache_max_entries: Optional[int] = None,
        max_finished: int = 256,
    ) -> None:
        self.store_path = store_path
        # The service path is observability-enabled by default: a real
        # process-wide registry backs ``GET /metrics`` out of the box, while
        # plain-library users keep the zero-cost no-op default.
        self.metrics = enable_metrics()
        self.queue = JobQueue(max_finished=max_finished)
        self._store_view = open_store(store_path)
        self.pool = WorkerPool(
            self.queue,
            workers=workers,
            store_path=store_path,
            store=self._store_view,
            cache_max_entries=cache_max_entries,
            sweep_workers=sweep_workers,
        )
        self.started_at = time.time()
        self._started = False
        # Campaign id -> {"name", "spec", "jobs": [...]} for campaigns seen by
        # *this* process; campaigns from earlier runs are reachable through
        # the ledger's state records in the store.
        self._campaigns: Dict[str, Dict[str, Any]] = {}
        self._campaigns_lock = threading.Lock()
        # The service hosts at most one live monitor at a time (it pins a
        # warm solver session and a BDD); POST /monitor while one runs is 409.
        self._monitor: Optional[TreeMonitor] = None
        self._monitor_lock = threading.Lock()

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> "AnalysisService":
        if not self._started:
            self.pool.start()
            self._started = True
        return self

    def stop(self) -> None:
        with self._monitor_lock:
            monitor = self._monitor
        if monitor is not None and monitor.running:
            monitor.stop()
        if self._started:
            self.pool.stop()
            self._started = False

    # -- operations (shared by HTTP handler and direct Python use) --------------------

    def submit(self, kind: str, payload: Dict[str, Any]) -> Job:
        """Validate the payload early and enqueue the job.

        Sweep and frontier payloads are *fully decoded* here — tree, patch
        parameters, family specs, reliability models, hardening actions — so
        a malformed submission is rejected with an immediate HTTP 400 instead
        of failing later, once per scenario, in a worker.  (The decoded
        objects are discarded; workers decode again from the queued JSON.)
        """
        if kind in ("analyze", "sweep", "frontier") and not isinstance(
            payload.get("tree"), dict
        ):
            raise JobError(f"{kind} payload needs a 'tree' JSON document")
        if kind == "sweep":
            decode_sweep_payload(payload)
        if kind == "frontier":
            decode_frontier_payload(payload)
        if kind == "batch" and not isinstance(payload.get("trees"), list):
            raise JobError("batch payload needs a 'trees' list of JSON documents")
        return self.queue.submit(kind, payload)

    # -- campaigns --------------------------------------------------------------------

    def submit_campaign(self, payload: Dict[str, Any]) -> Tuple[Job, str]:
        """Validate a campaign spec and enqueue its orchestration job.

        The job runs at :data:`~repro.service.jobs.CONTROL_PRIORITY`, above
        the default priority of bulk work, so a backlog of sweep jobs never
        starves campaign orchestration.  Submitting a spec whose campaign
        already has ledger state *is* a resume — identity is content-based.
        """
        spec = decode_campaign_payload(payload)
        campaign_id = spec.campaign_id()
        job = self.queue.submit(
            "campaign", {"spec": spec.to_dict()}, priority=CONTROL_PRIORITY
        )
        with self._campaigns_lock:
            entry = self._campaigns.setdefault(
                campaign_id, {"name": spec.name, "spec": spec.to_dict(), "jobs": []}
            )
            entry["jobs"].append(job.id)
        return job, campaign_id

    def _campaign_spec(self, campaign_id: str) -> CampaignSpec:
        """Resolve a campaign id to its spec — registry first, then ledger."""
        with self._campaigns_lock:
            entry = self._campaigns.get(campaign_id)
        if entry is not None:
            return CampaignSpec.from_dict(entry["spec"])
        state = campaign_state(self._store_view, campaign_id)
        if state is not None and isinstance(state.get("spec"), dict):
            return CampaignSpec.from_dict(state["spec"])
        raise JobError(f"unknown campaign id {campaign_id!r}")

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        """Ledger-derived status document with per-stage chunk progress."""
        spec = self._campaign_spec(campaign_id)
        runner = CampaignRunner(store=self._store_view)
        document = runner.status(spec)
        with self._campaigns_lock:
            entry = self._campaigns.get(campaign_id)
            document["jobs"] = list(entry["jobs"]) if entry is not None else []
        return document

    def campaign_result(self, campaign_id: str) -> Optional[Dict[str, Any]]:
        """The finished campaign's result document from the ledger, or ``None``."""
        self._campaign_spec(campaign_id)  # 404 for unknown ids
        state = campaign_state(self._store_view, campaign_id)
        if state is not None and state.get("status") == "done":
            return state.get("result")
        return None

    def resume_campaign(self, campaign_id: str) -> Tuple[Job, str]:
        """Resubmit a campaign by id; the ledger supplies completed chunks."""
        spec = self._campaign_spec(campaign_id)
        return self.submit_campaign({"spec": spec.to_dict()})

    def campaigns(self) -> List[Dict[str, Any]]:
        """Every campaign this process has seen, with its current ledger state."""
        with self._campaigns_lock:
            known = {
                campaign_id: dict(entry) for campaign_id, entry in self._campaigns.items()
            }
        documents: List[Dict[str, Any]] = []
        for campaign_id, entry in sorted(known.items()):
            state = campaign_state(self._store_view, campaign_id)
            documents.append(
                {
                    "campaign": campaign_id,
                    "name": entry["name"],
                    "status": (state or {}).get("status", "unknown"),
                    "jobs": list(entry["jobs"]),
                }
            )
        return documents

    # -- live monitoring --------------------------------------------------------------

    def start_monitor(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Build and start a :class:`TreeMonitor` from the request payload.

        Payload shape::

            {"tree": <tree document>,
             "feed": {"type": "synthetic" | "file" | "http", ...},
             "rules": [<rule documents>],          # optional
             "backend": "maxsat", "analyses": [...], "top_k": 5,
             "max_updates": 500, "include_reports": false,
             "webhook_url": "https://...", "batch_size": 1}

        The monitor runs on its own daemon thread (plus a staleness-watchdog
        thread when the rules ask for one), re-analysing through a
        store-backed session so its artifacts and alert ledger persist.
        """
        tree_document = payload.get("tree")
        if not isinstance(tree_document, dict):
            raise JobError("monitor payload needs a 'tree' JSON document")
        feed_spec = payload.get("feed")
        if not isinstance(feed_spec, dict):
            raise JobError("monitor payload needs a 'feed' spec object")
        max_updates = payload.get("max_updates")
        if max_updates is not None and (
            not isinstance(max_updates, int)
            or isinstance(max_updates, bool)
            or max_updates < 1
        ):
            raise JobError(f"'max_updates' must be a positive integer, got {max_updates!r}")
        batch_size = payload.get("batch_size", 1)
        if not isinstance(batch_size, int) or isinstance(batch_size, bool) or batch_size < 1:
            raise JobError(f"'batch_size' must be a positive integer, got {batch_size!r}")
        webhook_url = payload.get("webhook_url")
        if webhook_url is not None and not isinstance(webhook_url, str):
            raise JobError(f"'webhook_url' must be a string, got {webhook_url!r}")
        tree = parse_json_document(tree_document)
        rules = monitor_rules_from_spec(payload.get("rules"))
        with self._monitor_lock:
            if self._monitor is not None and self._monitor.running:
                raise JobError("a monitor is already running; POST /monitor/stop first")
            monitor = TreeMonitor(
                tree,
                backend=payload.get("backend", "maxsat"),
                analyses=tuple(payload.get("analyses", DEFAULT_ANALYSES)),
                top_k=int(payload.get("top_k", 5)),
                rules=rules,
                store=self._store_view,
                include_reports=bool(payload.get("include_reports", False)),
                buffer_size=int(payload.get("buffer_size", 4096)),
                webhook_url=webhook_url,
            )
            feed = feed_from_spec(feed_spec, tree=tree)
            monitor.start(feed, max_updates=max_updates, batch_size=batch_size)
            self._monitor = monitor
        log_event(
            "service.http",
            "monitor_started",
            tree=tree.name,
            feed=feed_spec.get("type"),
            rules=len(rules),
        )
        return monitor.status()

    def _require_monitor(self) -> TreeMonitor:
        with self._monitor_lock:
            monitor = self._monitor
        if monitor is None:
            raise JobError("no monitor is running")
        return monitor

    def monitor_status(self) -> Dict[str, Any]:
        return self._require_monitor().status()

    def monitor_alerts(self) -> List[Dict[str, Any]]:
        return self._require_monitor().engine.ledger()

    def monitor_events(self) -> EventBuffer:
        return self._require_monitor().events

    def stop_monitor(self) -> Dict[str, Any]:
        monitor = self._require_monitor()
        monitor.stop()
        log_event("service.http", "monitor_stopped", tree=monitor.tree.name)
        return monitor.status()

    def sweep_progress(self, job_id: str) -> EventBuffer:
        """The progress buffer behind ``GET /sweeps/<id>/stream``."""
        return self.queue.get(job_id).progress

    def health(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "workers": self.pool.num_workers,
            "jobs": self.queue.stats(),
            # Merged across every runner: includes per-kind store_hits /
            # store_misses for store-backed sessions, so hit *rates* are
            # visible next to the store's entry counts.
            "cache": self.pool.cache_stats(),
        }
        if self._store_view is not None:
            document["store"] = self._store_view.stats()
        return document

    def metrics_text(self) -> str:
        """The process-wide registry in Prometheus text exposition format."""
        return self.metrics.render_prometheus()

    def job_trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The span tree recorded for a terminal job, or ``None`` if absent."""
        job = self.queue.get(job_id)
        if not job.status.terminal:
            return None
        return job.trace

    @staticmethod
    def backends() -> Dict[str, List[str]]:
        return {
            name: sorted(cls.capabilities())
            for name, cls in available_backends().items()
        }


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto an :class:`AnalysisService` instance."""

    service: AnalysisService  # injected by _handler_for
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; the CLI announces the endpoint once

    def _send_json(self, status: int, document: Dict[str, Any]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, *, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            # The oversize body is rejected *unread*; close the connection so
            # a keep-alive client cannot desynchronise on the leftover bytes.
            self.close_connection = True
            raise JobError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            document = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise JobError("request body must be a JSON object")
        return document

    # -- routing ----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path == "/health":
                self._send_json(200, self.service.health())
            elif path == "/metrics":
                self._send_text(
                    200,
                    self.service.metrics_text(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/backends":
                self._send_json(200, {"backends": self.service.backends()})
            elif path == "/jobs":
                self._send_json(
                    200, {"jobs": [job.to_dict() for job in self.service.queue.jobs()]}
                )
            elif path.startswith("/jobs/") and path.endswith("/result"):
                self._get_result(path[len("/jobs/") : -len("/result")])
            elif path.startswith("/jobs/") and path.endswith("/trace"):
                self._get_trace(path[len("/jobs/") : -len("/trace")])
            elif path.startswith("/jobs/"):
                job = self.service.queue.get(path[len("/jobs/") :])
                self._send_json(200, {"job": job.to_dict()})
            elif path.startswith("/sweeps/") and path.endswith("/stream"):
                job_id = path[len("/sweeps/") : -len("/stream")]
                self._stream_buffer(self.service.sweep_progress(job_id))
            elif path == "/monitor":
                self._send_json(200, {"monitor": self.service.monitor_status()})
            elif path == "/monitor/alerts":
                self._send_json(200, {"alerts": self.service.monitor_alerts()})
            elif path == "/monitor/stream":
                self._stream_buffer(self.service.monitor_events())
            elif path == "/campaigns":
                self._send_json(200, {"campaigns": self.service.campaigns()})
            elif path.startswith("/campaigns/") and path.endswith("/result"):
                campaign_id = path[len("/campaigns/") : -len("/result")]
                result = self.service.campaign_result(campaign_id)
                if result is None:
                    self._error(409, f"campaign {campaign_id} has no result yet")
                else:
                    self._send_json(200, {"result": result})
            elif path.startswith("/campaigns/"):
                campaign_id = path[len("/campaigns/") :]
                self._send_json(200, {"campaign": self.service.campaign_status(campaign_id)})
            else:
                self._error(404, f"unknown path {path!r}")
        except JobError as exc:
            self._error(404 if self._is_not_found(exc) else 400, str(exc))

    @staticmethod
    def _is_not_found(exc: JobError) -> bool:
        message = str(exc)
        return (
            "unknown job id" in message
            or "unknown campaign id" in message
            or "no monitor is running" in message
        )

    @staticmethod
    def _is_conflict(exc: JobError) -> bool:
        return "already running" in str(exc)

    # -- streaming --------------------------------------------------------------------

    def _stream_buffer(
        self, buffer: EventBuffer, *, poll_interval_s: float = 0.25
    ) -> None:
        """Serve one :class:`EventBuffer` as a ``text/event-stream`` response.

        Honours ``Last-Event-ID`` (replay starts after it), follows the
        buffer live, and ends the response once the buffer is closed and
        drained — the final frame a client sees is the source's ``end``
        event.  A vanished client (broken pipe) terminates the stream
        silently; the buffer itself is untouched, so reconnection resumes.
        """
        header = self.headers.get("Last-Event-ID")
        try:
            last_id = int(header) if header else 0
        except ValueError:
            raise JobError(f"Last-Event-ID must be an integer, got {header!r}")
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # No Content-Length: the stream is delimited by connection close, so
        # this keep-alive connection cannot be reused afterwards.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            while True:
                events, closed = buffer.wait_for(last_id, timeout=poll_interval_s)
                for event in events:
                    self.wfile.write(format_sse(event))
                    last_id = event.id
                if events:
                    self.wfile.flush()
                elif closed:
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; nothing to clean up

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path in ("/analyze", "/batch", "/sweep", "/frontier"):
                self._submit(path.lstrip("/"))
            elif path.startswith("/jobs/") and path.endswith("/cancel"):
                job = self.service.queue.cancel(path[len("/jobs/") : -len("/cancel")])
                self._send_json(200, {"job": job.to_dict()})
            elif path == "/campaigns":
                self._submit_campaign()
            elif path.startswith("/campaigns/") and path.endswith("/resume"):
                campaign_id = path[len("/campaigns/") : -len("/resume")]
                job, campaign_id = self.service.resume_campaign(campaign_id)
                self._send_json(202, {"job": job.to_dict(), "campaign": campaign_id})
            elif path == "/monitor":
                payload = self._read_body()
                self._send_json(202, {"monitor": self.service.start_monitor(payload)})
            elif path == "/monitor/stop":
                self._send_json(200, {"monitor": self.service.stop_monitor()})
            else:
                self._error(404, f"unknown path {path!r}")
        except JobError as exc:
            if self._is_not_found(exc):
                self._error(404, str(exc))
            elif self._is_conflict(exc):
                self._error(409, str(exc))
            else:
                self._error(400, str(exc))
        except ReproError as exc:
            self._error(400, str(exc))

    # -- handlers ---------------------------------------------------------------------

    def _submit(self, kind: str) -> None:
        payload = self._read_body()
        wait = bool(payload.pop("wait", False))
        # Validate the timeout *before* enqueueing: failing afterwards would
        # drop the connection while leaving an orphan job the client never
        # learns the id of.
        raw_timeout = payload.pop("timeout", None)
        try:
            timeout = float(raw_timeout) if raw_timeout is not None else None
        except (TypeError, ValueError) as exc:
            raise JobError(f"'timeout' must be a number, got {raw_timeout!r}") from exc
        job = self.service.submit(kind, payload)
        if not wait:
            self._send_json(202, {"job": job.to_dict()})
            return
        job = self.service.queue.wait(job.id, timeout=timeout)
        status = 200 if job.status.terminal else 202
        self._send_json(status, {"job": job.to_dict(include_result=True)})

    def _submit_campaign(self) -> None:
        payload = self._read_body()
        wait = bool(payload.pop("wait", False))
        raw_timeout = payload.pop("timeout", None)
        try:
            timeout = float(raw_timeout) if raw_timeout is not None else None
        except (TypeError, ValueError) as exc:
            raise JobError(f"'timeout' must be a number, got {raw_timeout!r}") from exc
        job, campaign_id = self.service.submit_campaign(payload)
        if not wait:
            self._send_json(202, {"job": job.to_dict(), "campaign": campaign_id})
            return
        job = self.service.queue.wait(job.id, timeout=timeout)
        status = 200 if job.status.terminal else 202
        self._send_json(
            status, {"job": job.to_dict(include_result=True), "campaign": campaign_id}
        )

    def _get_result(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if job.status is JobStatus.DONE:
            self._send_json(200, {"job": job.to_dict(include_result=True)})
        elif job.status is JobStatus.FAILED:
            self._send_json(200, {"job": job.to_dict(include_result=True)})
        else:
            self._error(409, f"job {job_id} is {job.status.value}; no result yet")

    def _get_trace(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if not job.status.terminal:
            self._error(409, f"job {job_id} is {job.status.value}; no trace yet")
        elif job.trace is None:
            # e.g. cancelled while still queued: no worker ever ran it.
            self._error(409, f"job {job_id} recorded no trace")
        else:
            self._send_json(200, {"job": job_id, "trace": job.trace})


def _handler_for(service: AnalysisService) -> Type[_ServiceRequestHandler]:
    return type(
        "BoundServiceRequestHandler", (_ServiceRequestHandler,), {"service": service}
    )


def serve(
    service: AnalysisService,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    background: bool = True,
    start_workers: bool = True,
) -> ThreadingHTTPServer:
    """Start the worker pool and the HTTP server; returns the live server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_port``).  With ``background=True`` (default) the accept
    loop runs on a daemon thread and the call returns immediately — shut down
    with ``server.shutdown()`` followed by ``service.stop()``.  With
    ``background=False`` the caller owns the accept loop
    (``server.serve_forever()``), which is what the ``repro serve`` CLI does.
    """
    server = ThreadingHTTPServer((host, port), _handler_for(service))
    if start_workers:
        service.start()
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-service-http", daemon=True
        )
        thread.start()
    return server


class ServiceClient:
    """Minimal :mod:`urllib`-based client for the service endpoints."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport --------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception as parse_exc:  # noqa: BLE001 - best-effort detail extraction
                log_event(
                    "service.http",
                    "error_detail_unparseable",
                    method=method,
                    path=path,
                    status=exc.code,
                    error=type(parse_exc).__name__,
                )
                detail = ""
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}: {detail or exc.reason}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc.reason}") from exc

    @staticmethod
    def _tree_document(tree: Union[FaultTree, Dict[str, Any]]) -> Dict[str, Any]:
        return to_json_document(tree) if isinstance(tree, FaultTree) else tree

    # -- endpoints --------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def backends(self) -> Dict[str, List[str]]:
        return self._request("GET", "/backends")["backends"]

    def submit_analyze(
        self, tree: Union[FaultTree, Dict[str, Any]], **options: Any
    ) -> Dict[str, Any]:
        payload = {"tree": self._tree_document(tree), **options}
        return self._request("POST", "/analyze", payload)["job"]

    def submit_sweep(
        self,
        tree: Union[FaultTree, Dict[str, Any]],
        scenarios: Union[Sequence[Dict[str, Any]], Dict[str, Any]],
        **options: Any,
    ) -> Dict[str, Any]:
        payload = {"tree": self._tree_document(tree), "scenarios": scenarios, **options}
        return self._request("POST", "/sweep", payload)["job"]

    def submit_batch(
        self, trees: Sequence[Union[FaultTree, Dict[str, Any]]], **options: Any
    ) -> Dict[str, Any]:
        payload = {"trees": [self._tree_document(tree) for tree in trees], **options}
        return self._request("POST", "/batch", payload)["job"]

    def submit_frontier(
        self,
        tree: Union[FaultTree, Dict[str, Any]],
        actions: Sequence[Dict[str, Any]],
        **options: Any,
    ) -> Dict[str, Any]:
        payload = {
            "tree": self._tree_document(tree),
            "actions": list(actions),
            **options,
        }
        return self._request("POST", "/frontier", payload)["job"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")["job"]

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The span tree of a terminal job (409 -> ServiceError until then)."""
        return self._request("GET", f"/jobs/{job_id}/trace")["trace"]

    def metrics_text(self) -> str:
        """Scrape ``GET /metrics`` and return the raw Prometheus text."""
        request = urllib.request.Request(f"{self.base_url}/metrics", method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc.reason}") from exc

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def submit_campaign(
        self, spec: Union["CampaignSpec", Dict[str, Any]], **options: Any
    ) -> Dict[str, Any]:
        """Submit a campaign spec; returns ``{"job": ..., "campaign": <id>}``."""
        document = spec.to_dict() if isinstance(spec, CampaignSpec) else spec
        payload = {"spec": document, **options}
        return self._request("POST", "/campaigns", payload)

    def campaigns(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/campaigns")["campaigns"]

    def campaign(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")["campaign"]

    def campaign_result(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}/result")["result"]

    def resume_campaign(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/campaigns/{campaign_id}/resume")

    # -- live monitoring --------------------------------------------------------------

    def start_monitor(
        self,
        tree: Union[FaultTree, Dict[str, Any]],
        *,
        feed: Dict[str, Any],
        rules: Optional[Sequence[Dict[str, Any]]] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """``POST /monitor``: start the live monitor; returns its status."""
        payload: Dict[str, Any] = {
            "tree": self._tree_document(tree),
            "feed": dict(feed),
            **options,
        }
        if rules is not None:
            payload["rules"] = list(rules)
        return self._request("POST", "/monitor", payload)["monitor"]

    def monitor(self) -> Dict[str, Any]:
        return self._request("GET", "/monitor")["monitor"]

    def monitor_alerts(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/monitor/alerts")["alerts"]

    def stop_monitor(self) -> Dict[str, Any]:
        return self._request("POST", "/monitor/stop")["monitor"]

    def stream_monitor(
        self,
        *,
        last_event_id: int = 0,
        retry_interval_s: float = 0.5,
        max_retries: int = 10,
    ) -> "SSEClient":
        """Iterator over ``GET /monitor/stream`` events.

        Returns a reconnecting :class:`~repro.monitoring.sse.SSEClient`:
        iterate it for :class:`~repro.monitoring.sse.SSEvent` records
        (``delta``/``alert``/``base``/``end`` kinds).  A dropped connection
        reconnects with ``Last-Event-ID``, so no event is observed twice and
        none is skipped while the server still buffers it.
        """
        return SSEClient(
            f"{self.base_url}/monitor/stream",
            last_event_id=last_event_id,
            timeout_s=self.timeout,
            retry_interval_s=retry_interval_s,
            max_retries=max_retries,
        )

    def stream_sweep(
        self,
        job_id: str,
        *,
        last_event_id: int = 0,
        retry_interval_s: float = 0.5,
        max_retries: int = 10,
    ) -> "SSEClient":
        """Iterator over ``GET /sweeps/<id>/stream`` per-scenario progress."""
        return SSEClient(
            f"{self.base_url}/sweeps/{job_id}/stream",
            last_event_id=last_event_id,
            timeout_s=self.timeout,
            retry_interval_s=retry_interval_s,
            max_retries=max_retries,
        )

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll_interval: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job settles; returns the result-bearing document."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed", "cancelled"):
                if job["status"] == "done" or job["status"] == "failed":
                    return self.result(job_id)
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(f"job {job_id} did not finish within {timeout:g}s")
            time.sleep(poll_interval)
