"""Common result types and the abstract interface shared by SAT solvers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence

from repro.exceptions import SolverError
from repro.logic.cnf import CNF, Literal

__all__ = ["SatStatus", "SatResult", "BaseSatSolver"]


class SatStatus(enum.Enum):
    """Outcome of a SAT query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatResult:
    """Result of a single :meth:`BaseSatSolver.solve` call.

    Attributes
    ----------
    status:
        Whether the instance (under the given assumptions) is satisfiable.
    model:
        A total assignment ``variable -> bool`` when satisfiable, else ``None``.
    core:
        When unsatisfiable under assumptions, a subset of the assumption
        literals that is sufficient for unsatisfiability (the *failed
        assumptions* / unsat core).  Empty when the instance is unsatisfiable
        on its own.
    conflicts / decisions / propagations:
        Search statistics, useful for the benchmark harness and the portfolio
        scheduler.
    """

    status: SatStatus
    model: Optional[Dict[int, bool]] = None
    core: FrozenSet[Literal] = frozenset()
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SatStatus.UNSAT

    def value(self, var: int) -> bool:
        """Return the model value of ``var`` (false when unassigned)."""
        if self.model is None:
            raise SolverError("no model available: instance was not satisfiable")
        return self.model.get(var, False)


class BaseSatSolver:
    """Interface implemented by the DPLL and CDCL solvers.

    Solvers are incremental: clauses may be added between ``solve`` calls, and
    each call may carry *assumption literals* that are temporarily forced true.
    """

    def add_clause(self, literals: Sequence[Literal]) -> None:
        raise NotImplementedError

    def add_cnf(self, cnf: CNF) -> None:
        """Load every clause of ``cnf`` into the solver."""
        for clause in cnf:
            self.add_clause(list(clause))

    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        raise NotImplementedError
