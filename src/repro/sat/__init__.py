"""SAT-solving substrate.

The MaxSAT algorithms of :mod:`repro.maxsat` are built on top of a complete
SAT solver with an *assumptions* interface and unsat-core extraction, exactly
the capabilities the off-the-shelf solvers used by MPMCS4FTA expose.  Two
solvers are provided:

* :class:`repro.sat.cdcl.CDCLSolver` — the production solver: conflict-driven
  clause learning with two-watched-literal propagation, VSIDS branching with
  phase saving, Luby restarts, learned-clause deletion, and assumption-based
  incremental solving with core extraction.
* :class:`repro.sat.dpll.DPLLSolver` — a compact recursive DPLL solver used as
  a reference implementation in tests and as one of the portfolio members for
  small instances.
"""

from repro.sat.types import SatResult, SatStatus
from repro.sat.dpll import DPLLSolver
from repro.sat.cdcl import CDCLSolver

__all__ = ["CDCLSolver", "DPLLSolver", "SatResult", "SatStatus"]
