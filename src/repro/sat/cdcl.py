"""Conflict-driven clause learning (CDCL) SAT solver.

This is the production SAT engine underneath every MaxSAT algorithm in
:mod:`repro.maxsat`.  It implements the classical MiniSat-style architecture:

* two-watched-literal unit propagation;
* 1-UIP conflict analysis with clause learning and non-chronological
  backjumping;
* VSIDS variable activities with phase saving;
* Luby-sequence restarts;
* activity-based deletion of learned clauses;
* incremental solving under *assumptions* with extraction of a set of failed
  assumptions (unsat core), which the core-guided MaxSAT algorithms
  (Fu–Malik, OLL/RC2) rely on.

The solver is deliberately self-contained (pure Python, no third-party
dependencies) because the execution environment provides no MaxSAT/SAT
packages; see DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import BudgetExceededError, SolverError, SolverInterrupted
from repro.kernels.bitset import make_assign_buffer
from repro.logic.cnf import Literal
from repro.observability import trace as _trace
from repro.observability.metrics import get_metrics
from repro.sat.types import BaseSatSolver, SatResult, SatStatus

__all__ = ["CDCLSolver"]

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class _Clause:
    """Internal clause representation (literals list plus an activity score)."""

    __slots__ = ("literals", "learnt", "activity")

    def __init__(self, literals: List[int], learnt: bool = False) -> None:
        self.literals = literals
        self.learnt = learnt
        self.activity = 0.0


class CDCLSolver(BaseSatSolver):
    """MiniSat-style CDCL solver with assumptions and core extraction.

    Parameters
    ----------
    restart_base:
        Conflict budget of the first restart interval; subsequent intervals
        follow the Luby sequence scaled by this base.
    var_decay / clause_decay:
        Exponential decay factors for VSIDS variable and clause activities.
    max_learnt_factor:
        The learned clause database is reduced when it exceeds
        ``max_learnt_factor`` times the number of original clauses.
    max_conflicts:
        Optional global conflict budget; when exceeded, :class:`BudgetExceededError`
        is raised.  The MaxSAT portfolio uses this to bound stragglers.
    stop_check:
        Optional zero-argument callable polled at every restart boundary; when
        it returns true the solver raises :class:`SolverInterrupted`.  This is
        the cooperative-cancellation hook used by the parallel portfolio.
    """

    def __init__(
        self,
        *,
        restart_base: int = 100,
        var_decay: float = 0.95,
        clause_decay: float = 0.999,
        max_learnt_factor: float = 2.0,
        max_conflicts: Optional[int] = None,
        default_phase: bool = False,
        stop_check: Optional[callable] = None,
    ) -> None:
        if not 0.0 < var_decay <= 1.0 or not 0.0 < clause_decay <= 1.0:
            raise SolverError("decay factors must lie in (0, 1]")
        if restart_base <= 0:
            raise SolverError("restart_base must be positive")

        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._watches: Dict[int, List[_Clause]] = {}

        self._num_vars = 0
        # Contiguous signed-byte buffer (repro.kernels.bitset); indexed by
        # var, slot 0 unused.
        self._assigns = make_assign_buffer([_UNASSIGNED])
        self._levels: List[int] = [0]
        self._reasons: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [default_phase]
        self._seen: List[bool] = [False]

        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagation_head = 0

        self._var_inc = 1.0
        self._var_decay = var_decay
        self._clause_inc = 1.0
        self._clause_decay = clause_decay
        self._restart_base = restart_base
        self._max_learnt_factor = max_learnt_factor
        self._max_conflicts = max_conflicts
        self._default_phase = default_phase
        self.stop_check = stop_check

        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0

        self._ok = True  # becomes False once the clause database is trivially UNSAT

    # ------------------------------------------------------------------ setup

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def conflicts(self) -> int:
        return self._conflicts

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learnt) clauses currently attached."""
        return len(self._clauses)

    @property
    def num_learnts(self) -> int:
        """Number of learned clauses currently retained.

        Exposed so incremental users (and tests) can observe that knowledge
        acquired in one :meth:`solve` call survives into the next.
        """
        return len(self._learnts)

    def new_var(self) -> int:
        """Allocate (and return) a fresh variable index."""
        self._num_vars += 1
        self._assigns.append(_UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._phase.append(self._default_phase)
        self._seen.append(False)
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, literals: Sequence[Literal]) -> None:
        """Add a problem clause.  Must be called at decision level 0."""
        if self._trail_lim:
            raise SolverError("clauses can only be added at decision level 0")
        seen: Set[int] = set()
        clause_lits: List[int] = []
        for lit in literals:
            if lit == 0 or not isinstance(lit, int) or isinstance(lit, bool):
                raise SolverError(f"invalid literal {lit!r}")
            if -lit in seen:
                return  # tautology, trivially satisfied
            if lit in seen:
                continue
            seen.add(lit)
            clause_lits.append(lit)
            self._ensure_var(abs(lit))

        if not self._ok:
            return
        # Remove literals already falsified at level 0 and drop satisfied clauses.
        filtered: List[int] = []
        for lit in clause_lits:
            value = self._literal_value(lit)
            if value == _TRUE and self._levels[abs(lit)] == 0:
                return
            if value == _FALSE and self._levels[abs(lit)] == 0:
                continue
            filtered.append(lit)

        if not filtered:
            self._ok = False
            return
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
            else:
                conflict = self._propagate()
                if conflict is not None:
                    self._ok = False
            return

        clause = _Clause(filtered, learnt=False)
        self._clauses.append(clause)
        self._attach(clause)

    def add_clauses(self, clauses: Iterable[Sequence[Literal]]) -> None:
        """Add several problem clauses between :meth:`solve` calls.

        This is the incremental interface MiniSat-style workflows rely on:
        every :meth:`solve` returns with the trail cancelled back to decision
        level 0, so new clauses can be added at any point between solves and
        the solver keeps *all* accumulated state — learned clauses, VSIDS
        variable activities and saved phases — instead of starting cold.
        Clauses must be logically compatible with reusing learned clauses,
        i.e. they only ever *strengthen* the formula (which is all CDCL
        requires: learned clauses are consequences of the clause database and
        remain consequences of any superset).
        """
        for clause in clauses:
            self.add_clause(clause)

    # -------------------------------------------------------------- main solve

    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        """Solve the current clause database under ``assumptions``."""
        assumption_list = [int(lit) for lit in assumptions]
        for lit in assumption_list:
            if lit == 0:
                raise SolverError("assumption literal cannot be 0")
            self._ensure_var(abs(lit))

        self._decisions = 0
        self._propagations = 0
        start_conflicts = self._conflicts

        if not self._ok:
            return SatResult(status=SatStatus.UNSAT, core=frozenset())

        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult(status=SatStatus.UNSAT, core=frozenset())

        restart_index = 0
        while True:
            if self.stop_check is not None and self.stop_check():
                self._cancel_until(0)
                raise SolverInterrupted("solver stopped by cooperative cancellation")
            budget = self._restart_base * _luby(restart_index)
            restart_index += 1
            result = self._search(budget, assumption_list)
            if result is not None:
                result.conflicts = self._conflicts - start_conflicts
                result.decisions = self._decisions
                result.propagations = self._propagations
                self._cancel_until(0)
                # One registry/tracer touch per solve — never inside the
                # propagation or conflict loops.
                registry = get_metrics()
                registry.inc("repro_sat_conflicts_total", result.conflicts)
                registry.inc("repro_sat_restarts_total", restart_index - 1)
                _trace.add_counter("sat_conflicts", result.conflicts)
                _trace.add_counter("sat_restarts", restart_index - 1)
                return result
            # budget exhausted -> restart
            self._cancel_until(0)
            if self._max_conflicts is not None and self._conflicts >= self._max_conflicts:
                self._cancel_until(0)
                raise BudgetExceededError(
                    f"conflict budget of {self._max_conflicts} exceeded"
                )

    # ----------------------------------------------------------------- search

    def _search(self, conflict_budget: int, assumptions: List[int]) -> Optional[SatResult]:
        local_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                local_conflicts += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return SatResult(status=SatStatus.UNSAT, core=frozenset())
                if self._decision_level() <= len(self._trail_lim) and self._assumption_conflict(
                    conflict, assumptions
                ):
                    core = self._analyze_final_conflict(conflict, assumptions)
                    return SatResult(status=SatStatus.UNSAT, core=core)
                learnt, backjump_level = self._analyze(conflict)
                self._cancel_until(backjump_level)
                self._record_learnt(learnt)
                self._decay_activities()
                if local_conflicts >= conflict_budget:
                    return None
                continue

            if len(self._learnts) > self._max_learnt_factor * max(len(self._clauses), 100):
                self._reduce_learnts()

            # Pick the next decision: pending assumptions first, then VSIDS.
            lit = self._next_assumption(assumptions)
            if lit is not None and isinstance(lit, SatResult):
                return lit
            if lit is None:
                lit = self._pick_branch_literal()
                if lit is None:
                    return SatResult(status=SatStatus.SAT, model=self._extract_model())
                self._decisions += 1
            self._new_decision_level()
            self._enqueue(lit, None)

    def _next_assumption(self, assumptions: List[int]):
        """Return the next assumption literal to decide, a SatResult if an
        assumption is already violated, or None when all assumptions hold."""
        level = self._decision_level()
        while level < len(assumptions):
            lit = assumptions[level]
            value = self._literal_value(lit)
            if value == _TRUE:
                # Already satisfied: open an empty decision level to keep the
                # level <-> assumption-index correspondence.
                self._new_decision_level()
                level = self._decision_level()
                continue
            if value == _FALSE:
                core = self._analyze_final(-lit, assumptions)
                return SatResult(status=SatStatus.UNSAT, core=core)
            return lit
        return None

    def _assumption_conflict(self, conflict: _Clause, assumptions: List[int]) -> bool:
        """True when the conflict happened while assumption decisions are on the trail."""
        return bool(assumptions) and self._decision_level() <= len(assumptions)

    # ----------------------------------------------------------- propagation

    def _attach(self, clause: _Clause) -> None:
        lits = clause.literals
        self._watches.setdefault(lits[0], []).append(clause)
        self._watches.setdefault(lits[1], []).append(clause)

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None.

        This is the solver's hottest loop.  The assignment buffer and the
        watch map are bound to locals, and literal values are computed inline
        against the buffer (``assigns[lit]`` sign-adjusted) instead of
        calling :meth:`_literal_value` per literal — same reads in the same
        order, so propagation behaviour (and thus every learned clause and
        model) is unchanged.
        """
        assigns = self._assigns
        watches = self._watches
        trail = self._trail
        while self._propagation_head < len(trail):
            lit = trail[self._propagation_head]
            self._propagation_head += 1
            false_lit = -lit
            watch_list = watches.get(false_lit)
            if not watch_list:
                continue
            new_watch_list: List[_Clause] = []
            idx = 0
            conflict: Optional[_Clause] = None
            while idx < len(watch_list):
                clause = watch_list[idx]
                idx += 1
                lits = clause.literals
                # Ensure the falsified literal sits at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if (assigns[first] if first > 0 else -assigns[-first]) == _TRUE:
                    new_watch_list.append(clause)
                    continue
                # Look for a replacement watch.
                replaced = False
                for k in range(2, len(lits)):
                    other = lits[k]
                    if (assigns[other] if other > 0 else -assigns[-other]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches.setdefault(lits[1], []).append(clause)
                        replaced = True
                        break
                if replaced:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(clause)
                if (assigns[first] if first > 0 else -assigns[-first]) == _FALSE:
                    # Conflict: keep the remaining watchers and stop.
                    new_watch_list.extend(watch_list[idx:])
                    conflict = clause
                    break
                self._enqueue(first, clause)
                self._propagations += 1
            watches[false_lit] = new_watch_list
            if conflict is not None:
                self._propagation_head = len(trail)
                return conflict
        return None

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._literal_value(lit)
        if value == _TRUE:
            return True
        if value == _FALSE:
            return False
        var = abs(lit)
        self._assigns[var] = _TRUE if lit > 0 else _FALSE
        self._levels[var] = self._decision_level()
        self._reasons[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    # ------------------------------------------------------ conflict analysis

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        """1-UIP conflict analysis; returns (learnt clause, backjump level)."""
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        counter = 0
        lit_iter: Optional[int] = None
        clause: Optional[_Clause] = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()
        to_clear: List[int] = []

        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            start = 1 if lit_iter is not None else 0
            for lit in clause.literals[start:] if lit_iter is not None else clause.literals:
                var = abs(lit)
                if lit_iter is not None and lit == lit_iter:
                    continue
                if not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._bump_var(var)
                    if self._levels[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(lit)
            # Select the next literal from the trail to resolve on.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            lit_iter = self._trail[trail_index]
            var = abs(lit_iter)
            clause = self._reasons[var]
            seen[var] = False
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break

        learnt[0] = -lit_iter

        # Compute the backjump level (second highest level in the clause).
        if len(learnt) == 1:
            backjump = 0
        else:
            max_idx = 1
            for i in range(2, len(learnt)):
                if self._levels[abs(learnt[i])] > self._levels[abs(learnt[max_idx])]:
                    max_idx = i
            learnt[1], learnt[max_idx] = learnt[max_idx], learnt[1]
            backjump = self._levels[abs(learnt[1])]

        for var in to_clear:
            seen[var] = False
        return learnt, backjump

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(list(learnt), learnt=True)
        self._learnts.append(clause)
        self._attach(clause)
        self._bump_clause(clause)
        self._enqueue(learnt[0], clause)

    def _analyze_final(self, falsified_lit: int, assumptions: List[int]) -> FrozenSet[int]:
        """Compute a set of failed assumptions given an assumption whose
        complement is implied by the others (MiniSat's ``analyzeFinal``)."""
        assumption_set = set(assumptions)
        core: Set[int] = set()
        if -falsified_lit in assumption_set:
            core.add(-falsified_lit)
        seen = self._seen
        to_clear: List[int] = []
        var0 = abs(falsified_lit)
        if self._levels[var0] > 0:
            seen[var0] = True
            to_clear.append(var0)
        for i in range(len(self._trail) - 1, -1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self._reasons[var]
            if reason is None:
                if lit in assumption_set:
                    core.add(lit)
            else:
                for other in reason.literals:
                    other_var = abs(other)
                    if other_var != var and self._levels[other_var] > 0 and not seen[other_var]:
                        seen[other_var] = True
                        to_clear.append(other_var)
            seen[var] = False
        for var in to_clear:
            seen[var] = False
        return frozenset(core)

    def _analyze_final_conflict(
        self, conflict: _Clause, assumptions: List[int]
    ) -> FrozenSet[int]:
        """Derive failed assumptions from a conflict reached during assumption decisions."""
        assumption_set = set(assumptions)
        core: Set[int] = set()
        seen = self._seen
        to_clear: List[int] = []
        for lit in conflict.literals:
            var = abs(lit)
            if self._levels[var] > 0 and not seen[var]:
                seen[var] = True
                to_clear.append(var)
        for i in range(len(self._trail) - 1, -1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if not seen[var]:
                continue
            reason = self._reasons[var]
            if reason is None:
                if lit in assumption_set:
                    core.add(lit)
            else:
                for other in reason.literals:
                    other_var = abs(other)
                    if other_var != var and self._levels[other_var] > 0 and not seen[other_var]:
                        seen[other_var] = True
                        to_clear.append(other_var)
            seen[var] = False
        for var in to_clear:
            seen[var] = False
        return frozenset(core)

    # ------------------------------------------------------------- heuristics

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._clause_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._clause_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._clause_inc /= self._clause_decay

    def _pick_branch_literal(self) -> Optional[int]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assigns[var] == _UNASSIGNED and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var is None:
            return None
        return best_var if self._phase[best_var] else -best_var

    def _reduce_learnts(self) -> None:
        """Remove the less active half of the learned clauses (keeping reasons)."""
        locked = {id(self._reasons[abs(lit)]) for lit in self._trail if self._reasons[abs(lit)]}
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        removed = [
            c for c in self._learnts[:keep_from] if id(c) not in locked and len(c.literals) > 2
        ]
        kept = [c for c in self._learnts[:keep_from] if id(c) in locked or len(c.literals) <= 2]
        self._learnts = kept + self._learnts[keep_from:]
        removed_ids = {id(c) for c in removed}
        if not removed_ids:
            return
        for lit, watchers in self._watches.items():
            if watchers:
                self._watches[lit] = [c for c in watchers if id(c) not in removed_ids]

    # ----------------------------------------------------------------- helpers

    def _literal_value(self, lit: int) -> int:
        value = self._assigns[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for i in range(len(self._trail) - 1, boundary - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            self._assigns[var] = _UNASSIGNED
            self._reasons[var] = None
            self._phase[var] = lit > 0
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._propagation_head = len(self._trail)

    def _extract_model(self) -> Dict[int, bool]:
        model: Dict[int, bool] = {}
        for var in range(1, self._num_vars + 1):
            value = self._assigns[var]
            model[var] = value == _TRUE if value != _UNASSIGNED else self._phase[var]
        return model


def _luby(index: int) -> int:
    """Return the ``index``-th element (0-based) of the Luby restart sequence."""
    # Find the finite subsequence that contains index and its size.
    k = 1
    while (1 << k) - 1 <= index:
        k += 1
    k -= 1
    size = (1 << (k + 1)) - 1
    i = index
    while size - 1 != i:
        size = (size - 1) >> 1
        k -= 1
        i = i % size
    return 1 << k
