"""Reference DPLL SAT solver.

A compact, easily-auditable solver used to cross-check the CDCL solver in the
test suite and as a portfolio member for very small instances.  It performs
iterative DPLL search with unit propagation and a most-occurrences branching
rule, and supports assumptions by seeding the assignment before search.

The implementation favours clarity over speed; the CDCL solver in
:mod:`repro.sat.cdcl` is the one used by the MPMCS pipeline for large trees.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SolverError
from repro.logic.cnf import Literal
from repro.sat.types import BaseSatSolver, SatResult, SatStatus

__all__ = ["DPLLSolver"]


class DPLLSolver(BaseSatSolver):
    """Iterative DPLL with unit propagation and most-occurrences branching."""

    def __init__(self, *, max_conflicts: Optional[int] = None) -> None:
        self._clauses: List[Tuple[Literal, ...]] = []
        self._num_vars = 0
        self._max_conflicts = max_conflicts
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0

    # -- clause database ------------------------------------------------------

    def add_clause(self, literals: Sequence[Literal]) -> None:
        clause = tuple(dict.fromkeys(literals))
        for lit in clause:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self._num_vars = max(self._num_vars, abs(lit))
        self._clauses.append(clause)

    # -- solving ----------------------------------------------------------------

    def solve(self, assumptions: Iterable[Literal] = ()) -> SatResult:
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        assumption_list = list(assumptions)

        assignment: Dict[int, bool] = {}
        for lit in assumption_list:
            var, value = abs(lit), lit > 0
            if assignment.get(var, value) != value:
                # Contradictory assumptions: the core is the clashing pair.
                return SatResult(
                    status=SatStatus.UNSAT,
                    core=frozenset({lit, -lit}),
                )
            assignment[var] = value
            self._num_vars = max(self._num_vars, var)

        sat, model = self._search(assignment)
        if sat:
            full_model = {var: model.get(var, False) for var in range(1, self._num_vars + 1)}
            return SatResult(
                status=SatStatus.SAT,
                model=full_model,
                conflicts=self._conflicts,
                decisions=self._decisions,
                propagations=self._propagations,
            )
        # The DPLL solver reports the full assumption set as the core: it is a
        # valid (if not minimal) set of failed assumptions.
        return SatResult(
            status=SatStatus.UNSAT,
            core=frozenset(assumption_list),
            conflicts=self._conflicts,
            decisions=self._decisions,
            propagations=self._propagations,
        )

    # -- internals ----------------------------------------------------------------

    def _search(self, assignment: Dict[int, bool]) -> Tuple[bool, Dict[int, bool]]:
        """Recursive DPLL over the simplified clause set."""
        stack: List[Tuple[Dict[int, bool], Optional[Literal]]] = [(dict(assignment), None)]
        while stack:
            current, decision = stack.pop()
            if decision is not None:
                self._decisions += 1
                current[abs(decision)] = decision > 0

            status, current = self._propagate(current)
            if status is False:
                self._conflicts += 1
                if self._max_conflicts is not None and self._conflicts > self._max_conflicts:
                    raise SolverError("conflict budget exceeded in DPLL solver")
                continue

            branch_var = self._pick_branch_variable(current)
            if branch_var is None:
                return True, current

            # Explore positive phase first (matches the CDCL default phase).
            stack.append((dict(current), -branch_var))
            stack.append((dict(current), branch_var))
        return False, {}

    def _propagate(self, assignment: Dict[int, bool]) -> Tuple[Optional[bool], Dict[int, bool]]:
        """Unit propagation until fixpoint.  Returns (status, assignment).

        ``status`` is False on conflict, True otherwise.
        """
        changed = True
        while changed:
            changed = False
            for clause in self._clauses:
                satisfied = False
                unassigned: List[Literal] = []
                for lit in clause:
                    value = assignment.get(abs(lit))
                    if value is None:
                        unassigned.append(lit)
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not unassigned:
                    return False, assignment
                if len(unassigned) == 1:
                    lit = unassigned[0]
                    assignment[abs(lit)] = lit > 0
                    self._propagations += 1
                    changed = True
        return True, assignment

    def _pick_branch_variable(self, assignment: Dict[int, bool]) -> Optional[int]:
        """Pick the unassigned variable occurring in the most unsatisfied clauses."""
        counts: Dict[int, int] = {}
        for clause in self._clauses:
            clause_satisfied = any(
                assignment.get(abs(lit)) == (lit > 0)
                for lit in clause
                if abs(lit) in assignment
            )
            if clause_satisfied:
                continue
            for lit in clause:
                var = abs(lit)
                if var not in assignment:
                    counts[var] = counts.get(var, 0) + 1
        if counts:
            return max(counts, key=counts.get)
        for var in range(1, self._num_vars + 1):
            if var not in assignment:
                return var
        return None
