"""Command-line interface — the MPMCS4FTA-equivalent front end.

The original tool "runs in the command line and outputs the solution in a JSON
file".  This CLI mirrors that workflow and adds a few conveniences:

.. code-block:: console

    # analyse a JSON or Galileo model and write the Fig. 2-style report
    $ mpmcs4fta analyze model.json -o report.json
    $ mpmcs4fta analyze model.dft --format galileo --top-k 3

    # analyse one of the built-in canonical trees (e.g. the paper's example)
    $ mpmcs4fta analyze --builtin fps

    # pick a resolution strategy from the backend registry
    $ mpmcs4fta analyze --builtin fps --backend bdd
    $ mpmcs4fta backends                            # list the registry

    # generate a random benchmark tree and save it
    $ mpmcs4fta generate --events 1000 --seed 7 -o random.json

    # print the Table I-style probability/weight table
    $ mpmcs4fta weights --builtin fps

    # classical analyses around the MPMCS
    $ mpmcs4fta mcs --builtin fps --limit 10        # enumerate minimal cut sets
    $ mpmcs4fta importance --builtin fps            # Birnbaum / Fussell-Vesely / RAW
    $ mpmcs4fta topevent --builtin fps              # exact + approximate P(top)

Every analysis subcommand dispatches through one
:class:`repro.api.AnalysisSession`, so composite invocations share cached
artifacts (CNF encoding, minimal cut sets, compiled BDD) instead of
recomputing them per analysis.

The module is also runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence

from repro.analysis.contributions import cut_set_contributions
from repro.api import AnalysisSession, available_backends, backend_class
from repro.exceptions import ReproError
from repro.fta.parsers.galileo import parse_galileo_file
from repro.fta.parsers.json_format import parse_json_file
from repro.fta.parsers.openpsa import parse_openpsa_file, to_openpsa
from repro.fta.serializers import to_galileo, to_json
from repro.fta.tree import FaultTree
from repro.logic.dimacs import parse_wcnf
from repro.monitoring import (
    FeedStaleness,
    MpmcsChanged,
    PTopJump,
    PTopThreshold,
    TreeMonitor,
    feed_from_spec,
)
from repro.maxsat.binary_search import BinarySearchEngine
from repro.maxsat.bruteforce import BruteForceEngine
from repro.maxsat.fumalik import FuMalikEngine
from repro.maxsat.hitting_set import HittingSetEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.linear import LinearSearchEngine
from repro.maxsat.rc2 import RC2Engine
from repro.observability.log import JsonLinesLogger, set_logger
from repro.reporting.ascii_art import render_tree
from repro.reporting.dot import to_dot
from repro.reporting.json_report import analysis_report
from repro.reporting.live import (
    render_alert,
    render_delta,
    render_monitor_status,
    render_scenario_progress,
)
from repro.reporting.tables import frontier_table, markdown_table, weights_table
from repro.reporting.unified import render_profile, render_scenario_report, write_report
from repro.campaigns import CampaignRunner, campaign_state
from repro.service import AnalysisService, ServiceClient
from repro.service import serve as start_service
from repro.service.store import open_store
from repro.reliability import (
    PeriodicallyTestedComponent,
    ReliabilityAssignment,
    RepairableComponent,
)
from repro.scenarios import (
    AddRedundancy,
    AddSpareChild,
    Harden,
    HardeningAction,
    RemoveEvent,
    ScaleMissionTime,
    ScaleProbability,
    Scenario,
    SetProbability,
    SetVotingThreshold,
    SweepExecutor,
    campaign_from_dict,
    mission_time_sweep,
    pareto_frontier,
    plan_mitigation,
    probability_sweep,
    rank_actions,
    repair_rate_sweep,
    scale_sweep,
    sweep_values,
    test_interval_sweep,
)
from repro.uncertainty.distributions import LognormalUncertainty
from repro.uncertainty.importance import uncertainty_importance
from repro.uncertainty.propagation import propagate_uncertainty
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import NAMED_TREES, get_tree

#: MaxSAT engine factories selectable from the command line.
_ENGINE_FACTORIES = {
    "rc2": RC2Engine,
    "rc2-stratified": lambda: RC2Engine(stratified=True),
    "fu-malik": FuMalikEngine,
    "linear": LinearSearchEngine,
    "binary-search": BinarySearchEngine,
    "hitting-set": HittingSetEngine,
    "brute-force": BruteForceEngine,
}

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="mpmcs4fta",
        description="Maximum Probability Minimal Cut Sets for Fault Tree Analysis with MaxSAT",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="compute the MPMCS of a fault tree")
    _add_tree_source_arguments(analyze)
    analyze.add_argument("-o", "--output", type=Path, help="write the JSON report to this path")
    analyze.add_argument(
        "--top-k", type=int, default=1, help="number of cut sets to enumerate (default: 1)"
    )
    analyze.add_argument(
        "--mode",
        choices=("thread", "process", "sequential"),
        default="thread",
        help="portfolio execution mode (default: thread)",
    )
    analyze.add_argument("--dot", type=Path, help="also write a Graphviz DOT rendering")
    analyze.add_argument(
        "--quiet", action="store_true", help="suppress the ASCII tree rendering"
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage timing breakdown (encode/solve seconds, cache hits)",
    )
    analyze.add_argument(
        "--kernel",
        choices=("auto", "numpy", "array", "python"),
        default="auto",
        help="numeric kernel tier for batch evaluation (default: auto = fastest available)",
    )

    weights = subparsers.add_parser(
        "weights", help="print the probability / -log weight table (paper Table I)"
    )
    _add_tree_source_arguments(weights)

    show = subparsers.add_parser("show", help="print a fault tree as ASCII art")
    _add_tree_source_arguments(show)

    mcs = subparsers.add_parser("mcs", help="enumerate minimal cut sets by probability")
    _add_tree_source_arguments(mcs)
    mcs.add_argument("--limit", type=int, default=20, help="maximum number of cut sets to list")
    mcs.add_argument(
        "--method",
        choices=("maxsat", "mocus"),
        default="maxsat",
        help="enumeration method (default: iterated MaxSAT)",
    )

    importance = subparsers.add_parser(
        "importance", help="component importance measures (Birnbaum, Fussell-Vesely, RAW, RRW)"
    )
    _add_tree_source_arguments(importance)
    importance.add_argument("--top", type=int, default=10, help="number of components to list")

    topevent = subparsers.add_parser(
        "topevent", help="top-event probability (exact BDD, rare-event bound, Monte Carlo)"
    )
    _add_tree_source_arguments(topevent)
    topevent.add_argument(
        "--samples", type=int, default=20_000, help="Monte Carlo sample count (default: 20000)"
    )
    topevent.add_argument("--seed", type=int, default=0, help="Monte Carlo PRNG seed")

    generate = subparsers.add_parser("generate", help="generate a random benchmark fault tree")
    generate.add_argument("--events", type=int, default=100, help="number of basic events")
    generate.add_argument("--seed", type=int, default=0, help="PRNG seed")
    generate.add_argument(
        "--voting-ratio", type=float, default=0.0, help="fraction of voting gates"
    )
    generate.add_argument(
        "--out-format",
        choices=("json", "galileo", "openpsa"),
        default="json",
        help="output format",
    )
    generate.add_argument("-o", "--output", type=Path, help="output file (default: stdout)")

    report = subparsers.add_parser(
        "report", help="write a full Markdown or HTML analysis report"
    )
    _add_tree_source_arguments(report)
    report.add_argument("-o", "--output", type=Path, required=True, help="report file to write")
    report.add_argument(
        "--to", choices=("markdown", "html"), default="markdown", help="report format"
    )
    report.add_argument(
        "--top-k", type=int, default=5, help="cut sets to rank in the Markdown report"
    )

    uncertainty = subparsers.add_parser(
        "uncertainty", help="Monte Carlo uncertainty propagation on the event probabilities"
    )
    _add_tree_source_arguments(uncertainty)
    uncertainty.add_argument(
        "--error-factor",
        type=float,
        default=3.0,
        help="lognormal error factor applied to every event (default: 3)",
    )
    uncertainty.add_argument("--samples", type=int, default=2000, help="Monte Carlo samples")
    uncertainty.add_argument("--seed", type=int, default=2020, help="PRNG seed")

    modules = subparsers.add_parser(
        "modules", help="detect independent modules (sub-trees) of the fault tree"
    )
    _add_tree_source_arguments(modules)

    truncate = subparsers.add_parser(
        "truncate", help="enumerate minimal cut sets above a probability cutoff"
    )
    _add_tree_source_arguments(truncate)
    truncate.add_argument(
        "--cutoff", type=float, default=1e-9, help="probability cutoff (default: 1e-9)"
    )
    truncate.add_argument("--limit", type=int, default=20, help="cut sets to print")

    whatif = subparsers.add_parser(
        "whatif", help="apply what-if patches to a model and show the base-vs-scenario deltas"
    )
    _add_tree_source_arguments(whatif)
    whatif.add_argument(
        "--set", dest="set_probability", action="append", default=[], metavar="EVENT=PROB",
        help="set a basic event probability (repeatable)",
    )
    whatif.add_argument(
        "--scale", action="append", default=[], metavar="EVENT=FACTOR",
        help="multiply a basic event probability by a factor (repeatable)",
    )
    whatif.add_argument(
        "--harden", action="append", default=[], metavar="EVENT[=FACTOR]",
        help="harden an event by a factor (default 0.1; repeatable)",
    )
    whatif.add_argument(
        "--remove", action="append", default=[], metavar="EVENT",
        help="remove a basic event and simplify the tree (repeatable)",
    )
    whatif.add_argument(
        "--redundancy", action="append", default=[], metavar="EVENT[=COPIES]",
        help="back an event with redundant unit(s) that must all fail (repeatable)",
    )
    whatif.add_argument(
        "--spare", action="append", default=[], metavar="GATE=PROB",
        help="add a fresh spare child with the given probability to an AND/voting gate",
    )
    whatif.add_argument(
        "--set-k", dest="set_k", action="append", default=[], metavar="GATE=K",
        help="change the threshold of a voting gate (repeatable)",
    )
    whatif.add_argument(
        "--mission-factor", type=float, default=None,
        help="rescale all probabilities to FACTOR times the mission time",
    )
    whatif.add_argument("--name", default="what-if", help="scenario name for the report")
    whatif.add_argument("-o", "--output", type=Path, help="write the JSON scenario report")

    sweep = subparsers.add_parser(
        "sweep", help="evaluate a parametric scenario sweep with incremental re-analysis"
    )
    _add_tree_source_arguments(sweep)
    sweep.add_argument("--event", help="basic event swept by --values/--start/--stop")
    sweep.add_argument(
        "--values", help="comma-separated probability values for --event"
    )
    sweep.add_argument("--start", type=float, help="sweep range start (with --stop)")
    sweep.add_argument("--stop", type=float, help="sweep range stop (with --start)")
    sweep.add_argument("--steps", type=int, default=20, help="points in the range (default: 20)")
    sweep.add_argument(
        "--linear", action="store_true", help="space range points linearly instead of log"
    )
    sweep.add_argument(
        "--scale-factors",
        help="comma-separated factors: sweep scales of --event instead of absolute values",
    )
    sweep.add_argument(
        "--mission-factors", help="comma-separated mission-time factors to sweep"
    )
    sweep.add_argument(
        "--repair-rate",
        help="comma-separated repair rates (/h) for --event: sweep the maintenance "
        "policy of a repairable component (the first value is the current policy)",
    )
    sweep.add_argument(
        "--test-interval",
        help="comma-separated test intervals (h) for --event: sweep the inspection "
        "policy of a periodically tested component (the first value is the current policy)",
    )
    sweep.add_argument(
        "--failure-rate", type=float,
        help="failure rate (/h) of --event's component model "
        "(required with --repair-rate/--test-interval)",
    )
    sweep.add_argument(
        "--no-incremental", action="store_true",
        help="disable subtree artifact reuse (naive per-scenario re-analysis)",
    )
    sweep.add_argument(
        "--limit", type=int, default=0, help="table rows to print (0 = all)"
    )
    sweep.add_argument("-o", "--output", type=Path, help="write the JSON sweep report")

    plan = subparsers.add_parser(
        "plan", help="budgeted mitigation planning: which events to harden first"
    )
    _add_tree_source_arguments(plan)
    plan.add_argument(
        "--action", action="append", default=[], metavar="EVENT=COST", required=True,
        help="candidate hardening action and its cost (repeatable)",
    )
    plan.add_argument(
        "--factor", type=float, default=0.1,
        help="hardening factor applied by every action (default: 0.1)",
    )
    plan.add_argument(
        "--budget", type=float, default=None,
        help="total budget (required unless --pareto is given)",
    )
    plan.add_argument(
        "--method", choices=("greedy", "exact", "auto"), default=None,
        help="greedy cost-effectiveness baseline or exact MaxSAT planner "
        "(default: greedy; --pareto defaults to auto)",
    )
    plan.add_argument(
        "--objective", choices=("mpmcs", "top-event"), default="mpmcs",
        help="quantity the greedy planner minimises (default: mpmcs)",
    )
    plan.add_argument(
        "--pareto", action="store_true",
        help="enumerate the whole cost-vs-risk Pareto frontier instead of "
        "planning at a single budget point",
    )
    plan.add_argument(
        "-o", "--output", type=Path,
        help="write the plan/frontier JSON document to this path",
    )

    subparsers.add_parser(
        "backends", help="list the registered analysis backends and their capabilities"
    )

    serve = subparsers.add_parser(
        "serve", help="run the HTTP analysis service (submit/poll/fetch over JSON)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765, help="TCP port (default: 8765; 0 = ephemeral)")
    serve.add_argument(
        "--store", type=Path, default=None,
        help="directory of the persistent artifact store shared across runs and workers",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="job worker threads (default: 2)"
    )
    serve.add_argument(
        "--sweep-workers", type=int, default=0,
        help="default process fan-out for sweep jobs (default: 0 = in-process)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="LRU bound on each worker's in-memory artifact cache (default: unbounded)",
    )
    serve.add_argument(
        "--log-json", type=Path, default=None, metavar="PATH",
        help="append structured JSON-lines events to this file",
    )

    metrics = subparsers.add_parser(
        "metrics", help="scrape and print the Prometheus metrics of a running service"
    )
    metrics.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service base URL"
    )

    submit = subparsers.add_parser(
        "submit", help="submit a tree (or a scenario sweep over it) to a running service"
    )
    _add_tree_source_arguments(submit)
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765", help="service base URL"
    )
    submit.add_argument(
        "--analyses", default="mpmcs,top_event",
        help="comma-separated analyses for analyze jobs (default: mpmcs,top_event)",
    )
    submit.add_argument("--top-k", type=int, default=5, help="cut sets for the ranking analysis")
    submit.add_argument("--samples", type=int, default=0, help="Monte Carlo samples")
    submit.add_argument("--seed", type=int, default=0, help="Monte Carlo PRNG seed")
    submit.add_argument(
        "--sweep-event", help="submit a sweep job varying this basic event instead"
    )
    submit.add_argument(
        "--sweep-values", help="comma-separated probability values for --sweep-event"
    )
    submit.add_argument("--sweep-start", type=float, help="sweep range start (with --sweep-stop)")
    submit.add_argument("--sweep-stop", type=float, help="sweep range stop (with --sweep-start)")
    submit.add_argument(
        "--sweep-steps", type=int, default=20, help="points in the sweep range (default: 20)"
    )
    submit.add_argument(
        "--sweep-mission-factors",
        help="comma-separated mission-time factors: submit a mission-time sweep",
    )
    submit.add_argument(
        "--sweep-workers", type=int, default=0,
        help="process fan-out for the sweep job (default: 0 = service default)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of waiting for the result",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="seconds to wait for the result"
    )
    submit.add_argument("-o", "--output", type=Path, help="write the result JSON to this path")

    jobs = subparsers.add_parser(
        "jobs", help="list jobs on a running service, or inspect/cancel one"
    )
    jobs.add_argument("job_id", nargs="?", help="job id (omit to list every job)")
    jobs.add_argument("--url", default="http://127.0.0.1:8765", help="service base URL")
    jobs.add_argument(
        "--result", action="store_true", help="fetch the finished job's result JSON"
    )
    jobs.add_argument("--cancel", action="store_true", help="cancel a queued job")
    jobs.add_argument("-o", "--output", type=Path, help="write fetched result JSON to this path")

    monitor = subparsers.add_parser(
        "monitor",
        help="monitor a tree against a live probability feed with incremental "
        "re-analysis and alerting (local, or on a running service with --url)",
    )
    _add_tree_source_arguments(monitor)
    monitor.add_argument(
        "--url", default=None,
        help="start the monitor on a running service at this base URL and "
        "follow its SSE stream, instead of monitoring in-process",
    )
    feed_group = monitor.add_argument_group("feed source (default: synthetic walk)")
    feed_group.add_argument(
        "--feed-file", type=Path, default=None, metavar="PATH",
        help="tail this JSON-lines file of update documents",
    )
    feed_group.add_argument(
        "--feed-url", default=None, metavar="URL",
        help="poll this HTTP endpoint for update documents",
    )
    feed_group.add_argument(
        "--updates", type=int, default=100,
        help="synthetic walk length in updates (default: 100)",
    )
    feed_group.add_argument("--seed", type=int, default=0, help="synthetic walk PRNG seed")
    feed_group.add_argument(
        "--events-per-update", type=int, default=1,
        help="basic events perturbed per synthetic update (default: 1)",
    )
    feed_group.add_argument(
        "--volatility", type=float, default=0.35,
        help="log-space step size of the synthetic walk (default: 0.35)",
    )
    feed_group.add_argument(
        "--interval", type=float, default=0.0, metavar="SECONDS",
        help="pause between synthetic updates / feed polls (default: 0)",
    )
    feed_group.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="stop a file feed after this long without a new line (default: tail forever)",
    )
    alert_group = monitor.add_argument_group("alert rules")
    alert_group.add_argument(
        "--alert-ptop", type=float, default=None, metavar="THRESHOLD",
        help="alert when P(top) rises above this threshold",
    )
    alert_group.add_argument(
        "--alert-ptop-below", type=float, default=None, metavar="THRESHOLD",
        help="alert when P(top) falls below this threshold",
    )
    alert_group.add_argument(
        "--alert-hysteresis", type=float, default=0.0, metavar="WIDTH",
        help="hysteresis band applied to the P(top) threshold rules (default: 0)",
    )
    alert_group.add_argument(
        "--alert-jump", type=float, default=None, metavar="FACTOR",
        help="alert when P(top) moves by more than this relative factor in one update",
    )
    alert_group.add_argument(
        "--alert-stale", type=float, default=None, metavar="SECONDS",
        help="alert when the feed goes silent for this long",
    )
    alert_group.add_argument(
        "--no-alert-mpmcs", action="store_true",
        help="disable the default alert on MPMCS identity changes",
    )
    alert_group.add_argument(
        "--alert-webhook", default=None, metavar="URL",
        help="POST every alert as JSON to this http(s) endpoint (local mode)",
    )
    monitor.add_argument(
        "--max-updates", type=int, default=None,
        help="stop after applying this many updates (default: drain the feed)",
    )
    monitor.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="drain the feed in chunks of N updates, batching the BDD "
        "top-event evaluation across each chunk (default: 1)",
    )
    monitor.add_argument("--top-k", type=int, default=5, help="cut sets per update report")
    monitor.add_argument(
        "--store", type=Path, default=None,
        help="artifact-store directory backing the cache and the alert ledger (local mode)",
    )
    monitor.add_argument(
        "--alerts-only", action="store_true",
        help="print only alerts, not every delta line",
    )
    monitor.add_argument(
        "--log-json", type=Path, default=None, metavar="PATH",
        help="append structured JSON-lines events to this file (local mode)",
    )

    watch = subparsers.add_parser(
        "watch",
        help="attach to a running service's monitor (or a sweep job's) SSE "
        "stream and render events live",
    )
    watch.add_argument(
        "job_id", nargs="?", default=None,
        help="sweep job id: follow /sweeps/<id>/stream instead of /monitor/stream",
    )
    watch.add_argument("--url", default="http://127.0.0.1:8765", help="service base URL")
    watch.add_argument(
        "--last-event-id", type=int, default=0,
        help="resume the stream after this event id (default: 0 = from the start)",
    )
    watch.add_argument(
        "--alerts-only", action="store_true",
        help="print only alerts, not every delta line",
    )
    watch.add_argument(
        "--max-events", type=int, default=None,
        help="detach after rendering this many events (default: until the stream ends)",
    )

    campaign = subparsers.add_parser(
        "campaign",
        help="run, inspect or resume a resumable sweep campaign (local or via a service)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a campaign spec (JSON file) with ledger-backed resume"
    )
    campaign_run.add_argument("spec", type=Path, help="campaign spec JSON file")
    campaign_run.add_argument(
        "--store", type=Path, default=None,
        help="artifact-store directory holding the completion ledger "
        "(local mode; omit for in-memory, no resume across runs)",
    )
    campaign_run.add_argument(
        "--url", default=None,
        help="submit to a running service at this base URL instead of running locally",
    )
    campaign_run.add_argument(
        "--workers", type=int, default=None,
        help="override the spec's process fan-out (local mode)",
    )
    campaign_run.add_argument(
        "--no-wait", action="store_true",
        help="with --url: return the job id immediately instead of waiting",
    )
    campaign_run.add_argument(
        "--timeout", type=float, default=600.0, help="seconds to wait for the result"
    )
    campaign_run.add_argument(
        "-o", "--output", type=Path, help="write the campaign result JSON to this path"
    )
    campaign_run.add_argument(
        "--log-json", type=Path, default=None, metavar="PATH",
        help="append structured JSON-lines events to this file (local mode)",
    )

    campaign_status = campaign_sub.add_parser(
        "status", help="per-stage chunk progress of a campaign, from its ledger"
    )
    campaign_status.add_argument("campaign_id", help="campaign id (content hash of the spec)")
    campaign_status.add_argument(
        "--store", type=Path, default=None, help="artifact-store directory (local mode)"
    )
    campaign_status.add_argument(
        "--url", default=None, help="query a running service at this base URL"
    )

    campaign_resume = campaign_sub.add_parser(
        "resume", help="resume a campaign by id using the spec persisted in its ledger"
    )
    campaign_resume.add_argument("campaign_id", help="campaign id (content hash of the spec)")
    campaign_resume.add_argument(
        "--store", type=Path, default=None, help="artifact-store directory (local mode)"
    )
    campaign_resume.add_argument(
        "--url", default=None, help="resume on a running service at this base URL"
    )
    campaign_resume.add_argument(
        "--workers", type=int, default=None,
        help="override the spec's process fan-out (local mode)",
    )
    campaign_resume.add_argument(
        "--timeout", type=float, default=600.0, help="seconds to wait for the result"
    )
    campaign_resume.add_argument(
        "-o", "--output", type=Path, help="write the campaign result JSON to this path"
    )
    campaign_resume.add_argument(
        "--log-json", type=Path, default=None, metavar="PATH",
        help="append structured JSON-lines events to this file (local mode)",
    )

    solve_wcnf = subparsers.add_parser(
        "solve-wcnf", help="solve a DIMACS WCNF file with one of the built-in MaxSAT engines"
    )
    solve_wcnf.add_argument("wcnf", type=Path, help="WCNF file (classic format)")
    solve_wcnf.add_argument(
        "--engine",
        choices=sorted(_ENGINE_FACTORIES),
        default="rc2",
        help="MaxSAT engine to use (default: rc2)",
    )
    solve_wcnf.add_argument(
        "--show-model", action="store_true", help="print the optimal assignment"
    )

    return parser


def _add_tree_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", nargs="?", type=Path, help="fault tree model file")
    parser.add_argument(
        "--format",
        choices=("json", "galileo", "openpsa"),
        default=None,
        help="input format (default: inferred from the file extension)",
    )
    parser.add_argument(
        "--builtin",
        choices=sorted(set(NAMED_TREES)),
        help="analyse a built-in canonical tree instead of a file",
    )
    parser.add_argument(
        "--mission-time",
        type=float,
        default=None,
        help="mission time used to convert Galileo lambda= rates to probabilities "
        "(default: 1) and to freeze maintenance-policy sweeps "
        "(required with --repair-rate/--test-interval)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto",) + tuple(sorted(available_backends())),
        default="auto",
        help="analysis backend from the registry (default: auto routing)",
    )


def _load_tree(args: argparse.Namespace) -> FaultTree:
    """Shared tree-loading helper used by every tree-consuming subcommand.

    Resolves ``--builtin`` names, infers the input format from the file
    extension and applies the ``--mission-time`` probability assignment for
    Galileo rate models — the boilerplate that used to be repeated across
    subcommands.
    """
    if args.builtin:
        return get_tree(args.builtin)
    if args.model is None:
        raise ReproError("either a model file or --builtin must be provided")
    fmt = args.format
    if fmt is None:
        suffix = args.model.suffix.lower()
        if suffix in (".dft", ".galileo"):
            fmt = "galileo"
        elif suffix in (".xml", ".opsa"):
            fmt = "openpsa"
        else:
            fmt = "json"
    if fmt == "galileo":
        mission_time = args.mission_time if args.mission_time is not None else 1.0
        return parse_galileo_file(args.model, mission_time=mission_time)
    if fmt == "openpsa":
        return parse_openpsa_file(args.model)
    return parse_json_file(args.model)


def _supports(backend: str, analysis: str) -> bool:
    """True when ``backend`` (or auto routing) can produce ``analysis``."""
    if backend == "auto":
        return True
    return analysis in backend_class(backend).capabilities()


# -- analysis subcommands (dispatch through one AnalysisSession) -----------------------


def _command_analyze(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    analyses = ["mpmcs"]
    if args.top_k > 1:
        analyses.append("ranking")
    report = session.analyze(
        tree, analyses, backend=args.backend, top_k=max(args.top_k, 1)
    )
    summary = report.mpmcs

    if not args.quiet:
        print(render_tree(tree, highlight=summary.events))
        print()
    print(f"MPMCS      : {{{', '.join(summary.events)}}}")
    print(f"Probability: {summary.probability:.6g}")
    print(f"Cost (-log): {summary.cost:.5f}")
    print(f"Engine     : {summary.engine or summary.backend}   "
          f"({summary.solve_time:.3f}s solve, {summary.total_time:.3f}s total)")

    if args.profile:
        print()
        print(render_profile(report))

    if args.top_k > 1 and report.ranking:
        print()
        print(f"Top-{args.top_k} minimal cut sets by probability:")
        for entry in report.ranking:
            members = ", ".join(entry.events)
            print(f"  #{entry.rank}: {{{members}}}  p={entry.probability:.6g}")

    if args.output:
        document = analysis_report(tree, report.mpmcs_result)
        args.output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        print(f"\nJSON report written to {args.output}")
    if args.dot:
        args.dot.write_text(to_dot(tree, highlight=summary.events), encoding="utf-8")
        print(f"DOT rendering written to {args.dot}")
    return 0


def _command_weights(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    print(weights_table(tree))
    return 0


def _command_show(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    print(render_tree(tree))
    return 0


def _command_mcs(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    want_spof = _supports(args.backend, "spof")
    if args.method == "mocus":
        analyses = ["mcs"] + (["spof"] if want_spof else [])
        report = session.analyze(tree, analyses, backend=args.backend)
        ranked = report.cut_sets.ranked()[: args.limit]
        entries = [(index + 1, tuple(sorted(cs)), p) for index, (cs, p) in enumerate(ranked)]
        enumerator = report.backends["mcs"].upper()
        print(f"{len(report.cut_sets)} minimal cut sets total ({enumerator}); "
              f"showing {len(entries)}:")
    else:
        analyses = ["ranking"] + (["spof"] if want_spof else [])
        report = session.analyze(tree, analyses, backend=args.backend, top_k=args.limit)
        entries = [(entry.rank, entry.events, entry.probability) for entry in report.ranking]
        ranking_backend = report.backends["ranking"]
        label = "iterated MaxSAT" if ranking_backend == "maxsat" else ranking_backend.upper()
        print(f"top {len(entries)} minimal cut sets ({label}):")
    for rank, events, probability in entries:
        print(f"  #{rank:>3}: p={probability:10.4e}  {{{', '.join(events)}}}")
    if report.spof:
        print(f"single points of failure: {', '.join(name for name, _ in report.spof)}")
    return 0


def _command_importance(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    report = session.analyze(tree, ["importance"], backend=args.backend)
    measures = report.importance
    ranked = sorted(measures.values(), key=lambda m: m.fussell_vesely, reverse=True)[: args.top]
    rows = [
        [
            m.event,
            f"{m.probability:g}",
            f"{m.birnbaum:.4e}",
            f"{m.criticality:.4e}",
            f"{m.fussell_vesely:.4f}",
            f"{m.risk_achievement_worth:.2f}",
            f"{m.risk_reduction_worth:.2f}",
        ]
        for m in ranked
    ]
    print(markdown_table(
        ["event", "p", "Birnbaum", "criticality", "Fussell-Vesely", "RAW", "RRW"], rows
    ))
    return 0


def _command_topevent(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    analyses = ["top_event"]
    if _supports(args.backend, "mcs"):
        analyses.append("mcs")
    report = session.analyze(
        tree, analyses, backend=args.backend, samples=args.samples, seed=args.seed
    )
    summary = report.top_event
    if summary.exact is not None:
        print(f"exact (BDD)              : {summary.exact:.6e}")
    if summary.rare_event_bound is not None:
        print(f"rare-event upper bound   : {summary.rare_event_bound:.6e}")
    estimate = summary.monte_carlo
    if estimate is not None:
        print(
            f"Monte Carlo ({estimate.samples} samples): {estimate.probability:.6e} "
            f"[95% CI {estimate.confidence_low:.3e} .. {estimate.confidence_high:.3e}]"
        )
    if report.cut_sets is not None:
        print(f"minimal cut sets         : {len(report.cut_sets)} "
              f"(order {report.cut_sets.order()})")
    return 0


def _command_report(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    if args.to == "html":
        report = session.analyze(tree, ["mpmcs"], backend=args.backend)
    else:
        report = session.analyze(
            tree,
            ["mpmcs", "ranking", "importance", "spof"],
            backend=args.backend,
            top_k=max(args.top_k, 1),
        )
    path = write_report(report, args.output, fmt=args.to)
    print(f"{args.to} report written to {path}")
    return 0


def _command_modules(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    report = session.analyze(tree, ["modules"], backend=args.backend).modules
    print(f"gates          : {report['num_gates']}")
    print(f"modules        : {report['num_modules']} "
          f"({report['num_proper_modules']} proper, "
          f"{report['module_fraction']:.0%} of gates)")
    if report["largest_proper_module"]:
        print(f"largest proper : {report['largest_proper_module']} "
              f"({report['largest_proper_module_size']} nodes)")
    print(f"module gates   : {', '.join(report['module_gates'])}")
    return 0


def _command_truncate(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    result = session.analyze(
        tree, ["truncation"], backend=args.backend, cutoff=args.cutoff
    ).truncation
    print(f"cutoff {args.cutoff:g}: {result.num_retained} cut sets retained, "
          f"{result.num_pruned} candidates pruned")
    if result.num_retained == 0:
        return 0
    contributions = cut_set_contributions(result.collection)[: args.limit]
    for entry in contributions:
        members = ", ".join(entry.events)
        print(f"  #{entry.rank:>3}: p={entry.probability:10.4e}  "
              f"({entry.fraction:6.1%} of retained risk)  {{{members}}}")
    return 0


def _command_uncertainty(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    if args.error_factor < 1.0:
        raise ReproError(f"--error-factor must be at least 1, got {args.error_factor}")
    spec = {
        name: LognormalUncertainty(median=probability, error_factor=args.error_factor)
        for name, probability in tree.probabilities().items()
    }
    result = propagate_uncertainty(tree, spec, num_samples=args.samples, seed=args.seed)
    top = result.top_event
    print(f"top-event probability over {result.num_samples} samples "
          f"(lognormal EF={args.error_factor:g} on every event):")
    print(f"  mean {top.mean:.4e}   std {top.std:.4e}")
    for percentile, value in sorted(top.percentiles.items()):
        print(f"  P{percentile:g}: {value:.4e}")
    print(f"MPMCS identity stability: {result.mpmcs_identity_stability:.1%} "
          f"(most frequent: {{{', '.join(result.mpmcs_frequencies[0][0])}}})")
    print("uncertainty importance (Spearman rank correlation with the top event):")
    for measure in uncertainty_importance(result)[:10]:
        print(f"  {measure.event:<30s} {measure.spearman:+.3f}")
    return 0


def _split_kv(text: str, flag: str) -> "tuple[str, str]":
    """Split an ``NAME=VALUE`` CLI argument, with a helpful error."""
    name, separator, value = text.partition("=")
    if not separator or not name or not value:
        raise ReproError(f"{flag} expects NAME=VALUE, got {text!r}")
    return name, value


def _parse_float(text: str, flag: str) -> float:
    try:
        return float(text)
    except ValueError as exc:
        raise ReproError(f"{flag}: {text!r} is not a number") from exc


def _parse_float_list(text: str, flag: str) -> "list[float]":
    return [_parse_float(part, flag) for part in text.split(",") if part.strip()]


def _whatif_patches(args: argparse.Namespace) -> "list":
    patches = []
    for item in args.set_probability:
        event, value = _split_kv(item, "--set")
        patches.append(SetProbability(event, _parse_float(value, "--set")))
    for item in args.scale:
        event, value = _split_kv(item, "--scale")
        patches.append(ScaleProbability(event, _parse_float(value, "--scale")))
    for item in args.harden:
        event, separator, value = item.partition("=")
        factor = _parse_float(value, "--harden") if separator else None
        patches.append(Harden(event, factor=factor))
    for item in args.remove:
        patches.append(RemoveEvent(item))
    for item in args.redundancy:
        event, separator, value = item.partition("=")
        copies = int(_parse_float(value, "--redundancy")) if separator else 1
        patches.append(AddRedundancy(event, copies=copies))
    for item in args.spare:
        gate, value = _split_kv(item, "--spare")
        patches.append(AddSpareChild(gate, _parse_float(value, "--spare")))
    for item in args.set_k:
        gate, value = _split_kv(item, "--set-k")
        patches.append(SetVotingThreshold(gate, int(_parse_float(value, "--set-k"))))
    if args.mission_factor is not None:
        patches.append(ScaleMissionTime(args.mission_factor))
    if not patches:
        raise ReproError(
            "whatif needs at least one patch (--set/--scale/--harden/--remove/"
            "--redundancy/--spare/--set-k/--mission-factor)"
        )
    return patches


def _sweep_backend(backend: str) -> str:
    """Scenario sweeps need a concrete backend; auto routes to MOCUS."""
    return "mocus" if backend == "auto" else backend


def _command_whatif(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    scenario = Scenario(args.name, _whatif_patches(args))
    executor = SweepExecutor(session, backend=_sweep_backend(args.backend))
    report = executor.run(tree, [scenario])
    print(render_scenario_report(report, "text"))
    failures = report.failures
    if args.output:
        args.output.write_text(
            render_scenario_report(report, "json") + "\n", encoding="utf-8"
        )
        print(f"\nJSON scenario report written to {args.output}")
    if failures:
        print(f"error: scenario failed: {failures[0].error}", file=sys.stderr)
        return 1
    return 0


def _maintenance_sweep_scenarios(
    tree: FaultTree, args: argparse.Namespace
) -> "tuple[FaultTree, list]":
    """Build the (materialised tree, scenarios) of a maintenance-policy sweep.

    ``--repair-rate``/``--test-interval`` sweep the named component's
    maintenance policy: the event's reliability model is built from
    ``--failure-rate`` with the *first* swept value as the current policy, the
    base tree is the assignment frozen at ``--mission-time``, and each
    scenario re-freezes the perturbed model at the same time.
    """
    if args.repair_rate and args.test_interval:
        raise ReproError("use either --repair-rate or --test-interval, not both")
    if not args.event:
        raise ReproError("--repair-rate/--test-interval need --event")
    if args.failure_rate is None:
        raise ReproError(
            "--repair-rate/--test-interval need --failure-rate to build the "
            "component's reliability model"
        )
    if args.mission_time is None:
        # Silently freezing at the 1h Galileo default would make every
        # maintenance policy look identical (P ~ lambda*t regardless of the
        # repair rate); demand an explicit choice instead.
        raise ReproError(
            "--repair-rate/--test-interval need --mission-time to freeze the "
            "perturbed models at"
        )
    assignment = ReliabilityAssignment(tree)
    if args.repair_rate:
        rates = _parse_float_list(args.repair_rate, "--repair-rate")
        if not rates:
            raise ReproError("--repair-rate needs at least one repair rate")
        assignment.assign(args.event, RepairableComponent(args.failure_rate, rates[0]))
        scenarios = repair_rate_sweep(
            assignment, args.event, rates, mission_time=args.mission_time
        )
    else:
        intervals = _parse_float_list(args.test_interval, "--test-interval")
        if not intervals:
            raise ReproError("--test-interval needs at least one test interval")
        assignment.assign(
            args.event, PeriodicallyTestedComponent(args.failure_rate, intervals[0])
        )
        scenarios = test_interval_sweep(
            assignment, args.event, intervals, mission_time=args.mission_time
        )
    return assignment.tree_at(args.mission_time), scenarios


def _command_sweep(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    if args.repair_rate or args.test_interval:
        tree, scenarios = _maintenance_sweep_scenarios(tree, args)
    elif args.mission_factors:
        scenarios = mission_time_sweep(_parse_float_list(args.mission_factors, "--mission-factors"))
    elif args.event and args.scale_factors:
        scenarios = scale_sweep(args.event, _parse_float_list(args.scale_factors, "--scale-factors"))
    elif args.event and args.values:
        scenarios = probability_sweep(args.event, _parse_float_list(args.values, "--values"))
    elif args.event and args.start is not None and args.stop is not None:
        values = sweep_values(args.start, args.stop, args.steps, log_spaced=not args.linear)
        scenarios = probability_sweep(args.event, values)
    else:
        raise ReproError(
            "sweep needs --event with --values/--scale-factors/--start+--stop/"
            "--repair-rate/--test-interval, or --mission-factors"
        )
    executor = SweepExecutor(
        session, incremental=not args.no_incremental, backend=_sweep_backend(args.backend)
    )
    report = executor.run(tree, scenarios)
    print(render_scenario_report(report, "text", limit=args.limit))
    if args.output:
        args.output.write_text(
            render_scenario_report(report, "json") + "\n", encoding="utf-8"
        )
        print(f"\nJSON sweep report written to {args.output}")
    return 0


def _command_plan(session: AnalysisSession, tree: FaultTree, args: argparse.Namespace) -> int:
    actions = []
    for item in args.action:
        event, value = _split_kv(item, "--action")
        actions.append(
            HardeningAction(event, cost=_parse_float(value, "--action"), factor=args.factor)
        )
    if args.pareto:
        if args.objective != "mpmcs":
            raise ReproError("the Pareto frontier optimises the 'mpmcs' objective only")
        return _command_plan_pareto(session, tree, actions, args)
    if args.budget is None:
        raise ReproError("plan needs --budget (or --pareto for the whole frontier)")
    if args.method == "auto":
        raise ReproError("--method auto applies to --pareto only; use greedy or exact")
    plan = plan_mitigation(
        tree,
        actions,
        args.budget,
        method=args.method or "greedy",
        objective=args.objective.replace("-", "_"),
        cache=session.artifacts,
    )
    print(f"method      : {plan.method}   (budget {plan.budget:g}, spent {plan.total_cost:g})")
    selected = ", ".join(action.label for action in plan.selected) or "(nothing)"
    print(f"harden      : {selected}")
    print(f"MPMCS       : {{{', '.join(plan.base_mpmcs)}}} p={plan.base_mpmcs_probability:.6g}"
          f"  ->  {{{', '.join(plan.new_mpmcs)}}} p={plan.new_mpmcs_probability:.6g}")
    print(f"P(top)      : {plan.base_top_event:.6e}  ->  {plan.new_top_event:.6e}"
          f"  ({plan.top_event_reduction:+.3e} reduction)")
    print()
    print("tornado ranking (one action at a time):")
    rows = [
        [
            impact.action.event,
            f"{impact.action.cost:g}",
            f"{impact.top_event_after:.4e}",
            f"{impact.top_event_reduction:.4e}",
            f"{impact.reduction_per_cost:.4e}",
        ]
        for impact in rank_actions(tree, actions, cache=session.artifacts)
    ]
    print(markdown_table(["event", "cost", "P(top) after", "reduction", "reduction/cost"], rows))
    if args.output:
        args.output.write_text(
            json.dumps(plan.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"\nplan JSON written to {args.output}")
    return 0


def _command_plan_pareto(
    session: AnalysisSession,
    tree: FaultTree,
    actions: "list[HardeningAction]",
    args: argparse.Namespace,
) -> int:
    frontier = pareto_frontier(
        tree, actions, method=args.method or "auto", cache=session.artifacts
    )
    print(f"method      : {frontier.method}   ({len(frontier)} Pareto point(s))")
    print(
        f"base MPMCS  : {{{', '.join(frontier.base_mpmcs)}}}"
        f"  p={frontier.base_mpmcs_probability:.6g}"
        f"   P(top) {frontier.base_top_event:.6e}"
    )
    if args.budget is not None:
        best = frontier.best_within(args.budget)
        chosen = ", ".join(best.events) or "(nothing)"
        print(
            f"budget {args.budget:g} buys: {chosen}"
            f"  ->  P(MPMCS) {best.mpmcs_probability:.6g}"
            f"   P(top) {best.top_event:.6e}"
        )
    print()
    print(frontier_table(frontier))
    if args.output:
        args.output.write_text(
            json.dumps(frontier.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"\nfrontier JSON written to {args.output}")
    return 0


# -- tree-free subcommands -------------------------------------------------------------


def _command_generate(args: argparse.Namespace) -> int:
    tree = random_fault_tree(
        num_basic_events=args.events, seed=args.seed, voting_ratio=args.voting_ratio
    )
    if args.out_format == "json":
        text = to_json(tree)
    elif args.out_format == "galileo":
        text = to_galileo(tree)
    else:
        text = to_openpsa(tree)
    if args.output:
        args.output.write_text(text + ("\n" if not text.endswith("\n") else ""), encoding="utf-8")
        print(f"wrote {tree.num_nodes}-node tree to {args.output}")
    else:
        print(text)
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    rows = [
        [name, ", ".join(sorted(cls.capabilities()))]
        for name, cls in available_backends().items()
    ]
    print(markdown_table(["backend", "capabilities"], rows))
    return 0


def _command_solve_wcnf(args: argparse.Namespace) -> int:
    document = parse_wcnf(args.wcnf.read_text(encoding="utf-8"))
    instance = WPMaxSATInstance(precision=1)
    instance.ensure_num_vars(document.num_vars)
    for clause in document.hard:
        instance.add_hard(list(clause))
    for weight, clause in document.soft:
        instance.add_soft(list(clause), weight)
    engine = _ENGINE_FACTORIES[args.engine]()
    result = engine.solve(instance)
    print(f"status : {result.status.value}")
    if result.model is not None:
        print(f"cost   : {result.cost}")
        print(f"engine : {result.engine}  ({result.solve_time:.3f}s, "
              f"{result.sat_calls} SAT calls, {result.conflicts} conflicts)")
        if args.show_model:
            assignment = " ".join(
                str(var if result.model.get(var, False) else -var)
                for var in range(1, document.num_vars + 1)
            )
            print(f"model  : {assignment}")
    return 0


def _install_json_log(path: Optional[Path]) -> None:
    """Route structured events to ``path`` for this process (no-op when None)."""
    if path is not None:
        set_logger(JsonLinesLogger(path))


def _command_metrics(args: argparse.Namespace) -> int:
    print(ServiceClient(args.url).metrics_text(), end="")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    _install_json_log(args.log_json)
    service = AnalysisService(
        store_path=str(args.store) if args.store else None,
        workers=args.workers,
        sweep_workers=args.sweep_workers,
        cache_max_entries=args.cache_max_entries,
    )
    server = start_service(
        service, host=args.host, port=args.port, background=False
    )
    store_note = f" (store: {args.store})" if args.store else " (no persistent store)"
    print(
        f"repro service listening on http://{args.host}:{server.server_port}"
        f" with {args.workers} worker(s){store_note}"
    )
    print("endpoints: /health /metrics /backends /analyze /batch /sweep /frontier /campaigns /jobs /monitor  — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.stop()
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    tree = _load_tree(args)
    client = ServiceClient(args.url, timeout=args.timeout)
    wants_sweep = bool(
        args.sweep_event or args.sweep_values or args.sweep_mission_factors
    )
    if wants_sweep:
        if args.sweep_mission_factors:
            spec = {
                "family": "mission_time_sweep",
                "factors": _parse_float_list(args.sweep_mission_factors, "--sweep-mission-factors"),
            }
        elif args.sweep_event and args.sweep_values:
            spec = {
                "family": "probability_sweep",
                "event": args.sweep_event,
                "values": _parse_float_list(args.sweep_values, "--sweep-values"),
            }
        elif args.sweep_event and args.sweep_start is not None and args.sweep_stop is not None:
            spec = {
                "family": "probability_sweep",
                "event": args.sweep_event,
                "start": args.sweep_start,
                "stop": args.sweep_stop,
                "steps": args.sweep_steps,
            }
        else:
            raise ReproError(
                "sweep submission needs --sweep-event with --sweep-values or "
                "--sweep-start+--sweep-stop, or --sweep-mission-factors"
            )
        job = client.submit_sweep(
            tree,
            spec,
            backend=_sweep_backend(args.backend),
            workers=args.sweep_workers,
            top_k=args.top_k,
            samples=args.samples,
            seed=args.seed,
        )
    else:
        analyses = [name.strip() for name in args.analyses.split(",") if name.strip()]
        job = client.submit_analyze(
            tree,
            analyses=analyses,
            backend=args.backend,
            top_k=args.top_k,
            samples=args.samples,
            seed=args.seed,
        )
    print(f"submitted {job['id']} ({'sweep' if wants_sweep else 'analyze'}, "
          f"status: {job['status']})")
    if args.no_wait:
        print(f"poll with: repro jobs {job['id']} --url {args.url} --result")
        return 0
    done = client.wait(job["id"], timeout=args.timeout)
    if done["status"] != "done":
        print(f"error: job {job['id']} {done['status']}: {done.get('error')}", file=sys.stderr)
        return 1
    result = done["result"]
    if args.output:
        args.output.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"result JSON written to {args.output}")
    elif wants_sweep:
        report = result["report"]
        best = min(
            (s for s in report["scenarios"] if s.get("top_event") is not None),
            key=lambda s: s["top_event"],
            default=None,
        )
        print(f"sweep over {result['num_scenarios']} scenario(s), "
              f"base P(top) = {report['base']['top_event']:.6e}")
        if best is not None:
            print(f"best scenario: {best['name']}  P(top) = {best['top_event']:.6e}")
    else:
        report = result["report"]
        if report.get("mpmcs"):
            print(f"MPMCS      : {{{', '.join(report['mpmcs']['events'])}}}  "
                  f"p={report['mpmcs']['probability']:.6g}")
        top = report.get("top_event") or {}
        estimate = top.get("exact", None)
        if estimate is None:
            estimate = top.get("min_cut_upper_bound")
        if estimate is not None:
            print(f"P(top)     : {estimate:.6e}")
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    if args.job_id is None:
        entries = client.jobs()
        if not entries:
            print("no jobs")
            return 0
        rows = [
            [job["id"], job["kind"], job["status"], job.get("error") or ""]
            for job in entries
        ]
        print(markdown_table(["id", "kind", "status", "error"], rows))
        return 0
    if args.cancel:
        job = client.cancel(args.job_id)
        print(f"{job['id']}: {job['status']}")
        return 0
    if args.result:
        job = client.result(args.job_id)
        if job["status"] != "done":
            print(f"error: job {job['id']} {job['status']}: {job.get('error')}", file=sys.stderr)
            return 1
        text = json.dumps(job["result"], indent=2)
        if args.output:
            args.output.write_text(text + "\n", encoding="utf-8")
            print(f"result JSON written to {args.output}")
        else:
            print(text)
        return 0
    job = client.job(args.job_id)
    print(json.dumps(job, indent=2))
    return 0


def _monitor_rules(args: argparse.Namespace) -> list:
    """Alert rules from the ``repro monitor`` flags (default: MPMCS changes)."""
    rules: list = []
    if args.alert_ptop is not None:
        rules.append(PTopThreshold(
            args.alert_ptop, direction="above", hysteresis=args.alert_hysteresis
        ))
    if args.alert_ptop_below is not None:
        rules.append(PTopThreshold(
            args.alert_ptop_below, direction="below", hysteresis=args.alert_hysteresis
        ))
    if not args.no_alert_mpmcs:
        rules.append(MpmcsChanged())
    if args.alert_jump is not None:
        rules.append(PTopJump(args.alert_jump))
    if args.alert_stale is not None:
        rules.append(FeedStaleness(args.alert_stale))
    return rules


def _monitor_feed_spec(args: argparse.Namespace) -> Dict[str, Any]:
    """Wire-form feed spec from the ``repro monitor`` flags."""
    if args.feed_file is not None and args.feed_url is not None:
        raise ReproError("--feed-file and --feed-url are mutually exclusive")
    if args.feed_file is not None:
        spec: Dict[str, Any] = {"type": "file", "path": str(args.feed_file)}
        if args.interval > 0:
            spec["poll_interval_s"] = args.interval
        if args.idle_timeout is not None:
            spec["idle_timeout_s"] = args.idle_timeout
        return spec
    if args.feed_url is not None:
        spec = {"type": "http", "url": args.feed_url}
        if args.interval > 0:
            spec["poll_interval_s"] = args.interval
        return spec
    return {
        "type": "synthetic",
        "updates": args.updates,
        "seed": args.seed,
        "events_per_update": args.events_per_update,
        "volatility": args.volatility,
        "interval_s": args.interval,
    }


def _render_stream_event(
    kind: str,
    data: Any,
    *,
    alerts_only: bool,
    scenario_count: int = 0,
) -> None:
    """Print one monitor/sweep stream event (shared by monitor and watch)."""
    if kind == "alert":
        print(render_alert(data))
    elif alerts_only:
        return
    elif kind == "delta":
        print(render_delta(data))
    elif kind == "scenario":
        print(render_scenario_progress(data, count=scenario_count))
    elif kind == "base":
        mpmcs = data.get("mpmcs")
        shown = "{" + ", ".join(mpmcs) + "}" if mpmcs else "n/a"
        ptop = data.get("ptop")
        ptop_text = f"{ptop:.6g}" if ptop is not None else "n/a"
        print(f"base ({data.get('backend', '?')}): P(top)={ptop_text} mpmcs={shown}")
    elif kind == "end":
        parts = [f"{key}={value}" for key, value in sorted(data.items())] if isinstance(data, dict) else []
        print(f"stream ended ({', '.join(parts)})" if parts else "stream ended")


def _monitor_backend(backend: str) -> str:
    # The tree-source --backend defaults to "auto"; a monitor wants the warm
    # incremental MaxSAT path unless something else was asked for explicitly.
    return "maxsat" if backend == "auto" else backend


def _command_monitor(args: argparse.Namespace) -> int:
    tree = _load_tree(args)
    rules = _monitor_rules(args)
    feed_spec = _monitor_feed_spec(args)
    if args.url:
        return _monitor_remote(args, tree, rules, feed_spec)

    _install_json_log(args.log_json)
    store = open_store(str(args.store)) if args.store else None
    monitor = TreeMonitor(
        tree,
        backend=_monitor_backend(args.backend),
        top_k=args.top_k,
        rules=rules,
        store=store,
        webhook_url=args.alert_webhook,
    )
    feed = feed_from_spec(feed_spec, tree=tree)
    monitor.start(feed, max_updates=args.max_updates, batch_size=args.batch_size)
    last_id = 0
    try:
        while True:
            events, closed = monitor.events.wait_for(last_id, timeout=0.5)
            for event in events:
                last_id = event.id
                _render_stream_event(
                    event.kind, event.data, alerts_only=args.alerts_only
                )
            if closed and not events:
                break
    except KeyboardInterrupt:
        print("\nstopping monitor")
    finally:
        monitor.stop()
    for line in render_monitor_status(monitor.status()):
        print(line)
    return 0


def _monitor_remote(
    args: argparse.Namespace,
    tree: FaultTree,
    rules: list,
    feed_spec: Dict[str, Any],
) -> int:
    client = ServiceClient(args.url)
    status = client.start_monitor(
        tree,
        feed=feed_spec,
        rules=[rule.to_dict() for rule in rules],
        backend=_monitor_backend(args.backend),
        top_k=args.top_k,
        max_updates=args.max_updates,
        batch_size=args.batch_size,
        webhook_url=args.alert_webhook,
    )
    print(f"monitor {status['name']} started on {args.url}")
    try:
        for event in client.stream_monitor():
            _render_stream_event(
                event.event, event.data, alerts_only=args.alerts_only
            )
    except KeyboardInterrupt:
        print("\ndetaching; stopping remote monitor")
        client.stop_monitor()
    for line in render_monitor_status(client.monitor()):
        print(line)
    return 0


def _command_watch(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    if args.job_id:
        stream = client.stream_sweep(args.job_id, last_event_id=args.last_event_id)
    else:
        stream = client.stream_monitor(last_event_id=args.last_event_id)
    rendered = 0
    scenarios = 0
    try:
        for event in stream:
            if event.event == "scenario":
                scenarios += 1
            _render_stream_event(
                event.event,
                event.data,
                alerts_only=args.alerts_only,
                scenario_count=scenarios,
            )
            rendered += 1
            if args.max_events is not None and rendered >= args.max_events:
                break
    except KeyboardInterrupt:
        print("\ndetached")
    return 0


def _load_campaign_spec_document(path: Path) -> Dict[str, Any]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read campaign spec {path}: {exc}") from exc
    if isinstance(document, dict) and isinstance(document.get("spec"), dict):
        document = document["spec"]
    if not isinstance(document, dict):
        raise ReproError("campaign spec file must hold a JSON object")
    return document


def _print_campaign_outcome(document: Dict[str, Any]) -> None:
    print(f"campaign {document['campaign']} ({document['name']}): {document['status']}")
    rows = [
        [
            stage["name"],
            stage["kind"],
            stage["status"],
            str(stage["chunks_total"]),
            str(stage["ledger_hits"]),
            str(stage["executed"]),
        ]
        for stage in document.get("stages", [])
    ]
    if rows:
        print(markdown_table(
            ["stage", "kind", "status", "chunks", "ledger hits", "executed"], rows
        ))
    if document.get("error"):
        print(f"error: {document['error']}", file=sys.stderr)


def _local_campaign_store(args: argparse.Namespace):
    if args.store is None:
        raise ReproError(
            f"'campaign {args.campaign_command}' needs --url (service mode) "
            "or --store (local ledger directory)"
        )
    return open_store(str(args.store))


def _resolve_local_spec(store: Any, campaign_id: str, workers: Optional[int]):
    state = campaign_state(store, campaign_id)
    if state is None or not isinstance(state.get("spec"), dict):
        raise ReproError(f"unknown campaign id {campaign_id!r} in this store")
    document = dict(state["spec"])
    if workers is not None:
        document["workers"] = workers
    return campaign_from_dict(document)


def _write_campaign_result(args: argparse.Namespace, result: Dict[str, Any]) -> None:
    if getattr(args, "output", None):
        args.output.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"campaign result JSON written to {args.output}")


def _command_campaign(args: argparse.Namespace) -> int:
    if args.url and getattr(args, "store", None):
        raise ReproError("--url and --store are mutually exclusive")
    handler = {
        "run": _command_campaign_run,
        "status": _command_campaign_status,
        "resume": _command_campaign_resume,
    }[args.campaign_command]
    return handler(args)


def _command_campaign_run(args: argparse.Namespace) -> int:
    document = _load_campaign_spec_document(args.spec)
    if args.workers is not None:
        document = {**document, "workers": args.workers}
    if args.url:
        client = ServiceClient(args.url, timeout=args.timeout)
        response = client.submit_campaign(
            document, wait=not args.no_wait, timeout=args.timeout
        )
        job = response["job"]
        print(f"campaign {response['campaign']} submitted as job {job['id']} "
              f"(status: {job['status']})")
        if args.no_wait:
            print(f"poll with: repro campaign status {response['campaign']} --url {args.url}")
            return 0
        if job["status"] != "done":
            print(f"error: job {job['id']} {job['status']}: {job.get('error')}",
                  file=sys.stderr)
            return 1
        outcome = job["result"]
        _print_campaign_outcome(outcome)
        _write_campaign_result(args, outcome["result"])
        return 0
    _install_json_log(args.log_json)
    spec = campaign_from_dict(document)
    store = open_store(str(args.store)) if args.store else None
    outcome = CampaignRunner(store=store).run(spec)
    _print_campaign_outcome(outcome.to_dict())
    _write_campaign_result(args, outcome.result_document())
    return 0 if outcome.status == "done" else 1


def _command_campaign_status(args: argparse.Namespace) -> int:
    if args.url:
        document = ServiceClient(args.url).campaign(args.campaign_id)
    else:
        store = _local_campaign_store(args)
        spec = _resolve_local_spec(store, args.campaign_id, None)
        document = CampaignRunner(store=store).status(spec)
    print(json.dumps(document, indent=2))
    return 0


def _command_campaign_resume(args: argparse.Namespace) -> int:
    if args.url:
        client = ServiceClient(args.url, timeout=args.timeout)
        response = client.resume_campaign(args.campaign_id)
        job = response["job"]
        print(f"campaign {response['campaign']} resuming as job {job['id']}")
        done = client.wait(job["id"], timeout=args.timeout)
        if done["status"] != "done":
            print(f"error: job {job['id']} {done['status']}: {done.get('error')}",
                  file=sys.stderr)
            return 1
        outcome = done["result"]
        _print_campaign_outcome(outcome)
        _write_campaign_result(args, outcome["result"])
        return 0
    _install_json_log(args.log_json)
    store = _local_campaign_store(args)
    spec = _resolve_local_spec(store, args.campaign_id, args.workers)
    outcome = CampaignRunner(store=store).run(spec)
    _print_campaign_outcome(outcome.to_dict())
    _write_campaign_result(args, outcome.result_document())
    return 0 if outcome.status == "done" else 1


#: Subcommands that operate on a fault tree: loaded once, analysed through
#: one shared session per invocation.
_TREE_COMMANDS: Dict[str, Callable[[AnalysisSession, FaultTree, argparse.Namespace], int]] = {
    "analyze": _command_analyze,
    "weights": _command_weights,
    "show": _command_show,
    "mcs": _command_mcs,
    "importance": _command_importance,
    "topevent": _command_topevent,
    "report": _command_report,
    "uncertainty": _command_uncertainty,
    "modules": _command_modules,
    "truncate": _command_truncate,
    "whatif": _command_whatif,
    "sweep": _command_sweep,
    "plan": _command_plan,
}

#: Subcommands that do not take a fault tree.
_PLAIN_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "generate": _command_generate,
    "backends": _command_backends,
    "solve-wcnf": _command_solve_wcnf,
    "serve": _command_serve,
    "metrics": _command_metrics,
    "submit": _command_submit,
    "jobs": _command_jobs,
    "monitor": _command_monitor,
    "watch": _command_watch,
    "campaign": _command_campaign,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        handler = _TREE_COMMANDS.get(args.command)
        if handler is not None:
            tree = _load_tree(args)
            session = AnalysisSession(
                mode=getattr(args, "mode", "thread"),
                kernel_tier=getattr(args, "kernel", None),
            )
            return handler(session, tree, args)
        return _PLAIN_COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
