"""Bounded, replayable event buffer behind every SSE stream.

An :class:`EventBuffer` assigns each appended event a strictly increasing
integer id (``1, 2, 3, ...``) and keeps the most recent ``max_events`` of
them, so a reconnecting client can resume with ``Last-Event-ID`` and replay
exactly the events it missed — as long as they are still inside the window.
:meth:`events_after` is the replay primitive; :meth:`wait_for` is the
blocking primitive the streaming HTTP handler sits on.

The buffer is multi-producer/multi-consumer safe: one condition variable
guards the deque, and every consumer keeps its own cursor (the last id it
saw), so consumers never contend on shared read state.  ``close()`` wakes
every waiting consumer permanently — the stream-shutdown signal.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["BufferedEvent", "EventBuffer"]


class BufferedEvent:
    """One event in the buffer: an id, a kind tag, and a JSON-ready payload."""

    __slots__ = ("id", "kind", "data")

    def __init__(self, event_id: int, kind: str, data: Dict[str, Any]):
        self.id = event_id
        self.kind = kind
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BufferedEvent(id={self.id}, kind={self.kind!r})"


class EventBuffer:
    """Thread-safe ring buffer of events with monotonically increasing ids."""

    def __init__(self, *, max_events: int = 4096) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be at least 1, got {max_events}")
        self._lock = threading.Lock()
        self._appended = threading.Condition(self._lock)
        self._events: Deque[BufferedEvent] = deque(maxlen=max_events)
        self._next_id = 0
        self._closed = False

    # -- producer side -----------------------------------------------------

    def append(self, kind: str, data: Dict[str, Any]) -> int:
        """Append one event; returns its id.  Raises after :meth:`close`."""
        with self._lock:
            if self._closed:
                raise RuntimeError("event buffer is closed")
            self._next_id += 1
            self._events.append(BufferedEvent(self._next_id, kind, data))
            self._appended.notify_all()
            return self._next_id

    def close(self) -> None:
        """Refuse further appends and wake every waiting consumer."""
        with self._lock:
            self._closed = True
            self._appended.notify_all()

    # -- consumer side -----------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def last_id(self) -> int:
        """Id of the most recently appended event (0 when empty)."""
        with self._lock:
            return self._next_id

    def events_after(self, last_id: int) -> List[BufferedEvent]:
        """Every buffered event with ``id > last_id``, oldest first.

        Events older than the retention window are gone; a consumer that
        fell that far behind silently resumes from the oldest retained event
        (the ids it receives still expose the gap).
        """
        with self._lock:
            return [event for event in self._events if event.id > last_id]

    def wait_for(
        self, last_id: int, timeout: Optional[float] = None
    ) -> Tuple[List[BufferedEvent], bool]:
        """Block until an event newer than ``last_id`` exists (or close/timeout).

        Returns ``(events, closed)``: the newly visible events — possibly
        empty on timeout — and whether the buffer has been closed.  A closed
        buffer still drains: pending events are returned alongside
        ``closed=True``, and only a fully caught-up consumer sees an empty
        list, which is its signal to end the stream.
        """
        with self._lock:
            if not self._closed and not (self._events and self._events[-1].id > last_id):
                self._appended.wait(timeout)
            events = [event for event in self._events if event.id > last_id]
            return events, self._closed
