"""The long-lived monitor: incremental re-analysis per probability update.

:class:`TreeMonitor` owns a base tree and a current probability state.  Each
:class:`~repro.monitoring.feeds.ProbabilityUpdate` is applied as a
structure-preserving patch (only probabilities move, never the tree), so the
re-analysis rides the full incremental stack:

* the subtree cut-set structure is one cache hit per update (structure-only
  hashes never change);
* with the ``maxsat`` backend inside the monitor's warm scope, each update is
  a weight-only re-solve on the persistent
  :class:`~repro.maxsat.incremental.IncrementalMaxSATSession`;
* the exact P(top) comes from the structure-keyed BDD, compiled once and
  evaluated in linear time per update.

Every update produces a :class:`MonitorDelta` — new P(top), MPMCS identity,
deltas against both the base model and the previous update — which is pushed
into the monitor's :class:`~repro.monitoring.events.EventBuffer` (feeding the
SSE stream), evaluated by the :class:`~repro.monitoring.alerts.AlertEngine`,
and measured into the ``repro_monitor_*`` metric families.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.cache import ArtifactCache
from repro.api.report import AnalysisReport
from repro.api.session import AnalysisSession
from repro.exceptions import ReproError
from repro.fta.tree import FaultTree
from repro.monitoring.alerts import Alert, AlertEngine, AlertRule, WebhookSink
from repro.monitoring.events import EventBuffer
from repro.monitoring.feeds import ProbabilityUpdate
from repro.observability.log import log_event
from repro.observability.metrics import get_metrics
from repro.scenarios.report import mpmcs_identity_changed
from repro.scenarios.sweep import DEFAULT_ANALYSES, SweepExecutor

__all__ = ["MonitorDelta", "MonitorError", "TreeMonitor"]

#: Histogram buckets for per-update latency: live monitoring operates well
#: below the generic request buckets, so sub-millisecond resolution matters.
UPDATE_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    5.0,
)


class MonitorError(ReproError):
    """Monitor lifecycle misuse (double start, update before base, ...)."""


@dataclass
class MonitorDelta:
    """The effect of one applied update, relative to base and previous state."""

    seq: int
    timestamp: float
    ptop: Optional[float]
    previous_ptop: Optional[float]
    base_ptop: Optional[float]
    mpmcs_events: Optional[Tuple[str, ...]]
    mpmcs_probability: Optional[float]
    mpmcs_changed: bool
    changed_events: Tuple[str, ...]
    latency_s: float
    source: str = ""
    #: The full per-update report; excluded from the wire form by default.
    report: Optional[AnalysisReport] = None
    alerts: List[Alert] = field(default_factory=list)

    @property
    def ptop_delta(self) -> Optional[float]:
        if self.ptop is None or self.previous_ptop is None:
            return None
        return self.ptop - self.previous_ptop

    @property
    def base_delta(self) -> Optional[float]:
        if self.ptop is None or self.base_ptop is None:
            return None
        return self.ptop - self.base_ptop

    def to_dict(self, *, include_report: bool = False) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.timestamp,
            "ptop": self.ptop,
            "ptop_delta": self.ptop_delta,
            "previous_ptop": self.previous_ptop,
            "base_ptop": self.base_ptop,
            "base_delta": self.base_delta,
            "mpmcs": list(self.mpmcs_events) if self.mpmcs_events is not None else None,
            "mpmcs_probability": self.mpmcs_probability,
            "mpmcs_changed": self.mpmcs_changed,
            "changed_events": list(self.changed_events),
            "latency_s": self.latency_s,
            "source": self.source,
        }
        if include_report and self.report is not None:
            document["report"] = self.report.to_canonical_dict()
        return document


class TreeMonitor:
    """Applies a stream of probability updates with incremental re-analysis.

    Parameters
    ----------
    tree:
        The monitored fault tree; never mutated — every update analyses a
        patched copy whose structure (and therefore every structure-only
        cache key) is identical to the base.
    session:
        Optional shared :class:`AnalysisSession`.  A monitor-owned session
        (optionally store-backed via ``store``) is created otherwise.
    backend / analyses / top_k:
        The per-update analysis request, with the same semantics as a sweep:
        ``maxsat`` runs MPMCS through the warm incremental session and P(top)
        through the structure-keyed BDD.
    rules:
        Alert rules evaluated on every delta (see :mod:`.alerts`).
    store:
        Optional :class:`~repro.service.store.DiskArtifactStore`; backs the
        session cache and persists the alert ledger under the monitor key.
    include_reports:
        When true, every streamed delta document embeds the update's full
        canonical :class:`AnalysisReport` dict (byte-identical to a fresh
        sequential analysis of the same probabilities).
    webhook_url / webhook_sink:
        Optional outbound alert notification: every raised alert is POSTed
        as JSON to ``webhook_url`` (with retry/backoff; see
        :class:`~repro.monitoring.alerts.WebhookSink`) alongside the
        persisted ledger.  ``webhook_sink`` passes a pre-built sink instead
        (takes precedence; used by tests to inject a transport).
    """

    def __init__(
        self,
        tree: FaultTree,
        *,
        session: Optional[AnalysisSession] = None,
        backend: str = "maxsat",
        analyses: Sequence[str] = DEFAULT_ANALYSES,
        top_k: int = 5,
        rules: Sequence[AlertRule] = (),
        store: Any = None,
        incremental: bool = True,
        exact_top_event: bool = True,
        include_reports: bool = False,
        buffer_size: int = 4096,
        name: Optional[str] = None,
        webhook_url: Optional[str] = None,
        webhook_sink: Optional[WebhookSink] = None,
    ) -> None:
        tree.validate()
        self.tree = tree
        self.name = name or f"monitor-{tree.name}"
        if session is None:
            session = AnalysisSession(cache=ArtifactCache(backend=store))
        self.executor = SweepExecutor(
            session,
            incremental=incremental,
            backend=backend,
            exact_top_event=exact_top_event,
        )
        self.backend = backend
        self.top_k = top_k
        self.include_reports = include_reports
        self._analyses = self.executor.prepare_analyses(analyses)
        self.events = EventBuffer(max_events=buffer_size)
        self.monitor_key = hashlib.sha256(
            f"monitor:{tree.name}".encode("utf-8")
        ).hexdigest()
        sinks: List[Any] = []
        if webhook_sink is not None:
            sinks.append(webhook_sink)
        elif webhook_url:
            sinks.append(WebhookSink(webhook_url))
        self.engine = AlertEngine(
            rules, store=store, ledger_key=self.monitor_key, sinks=sinks
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None
        self._started_at = time.time()
        self._base_probabilities = dict(tree.probabilities())
        self._current: Dict[str, float] = dict(self._base_probabilities)
        self._known_events = set(tree.event_names)
        self._updates_applied = 0
        self._last_update_at: Optional[float] = None
        self._last_seq = 0
        self._base_report: Optional[AnalysisReport] = None
        self._base_ptop: Optional[float] = None
        self._previous_ptop: Optional[float] = None
        self._previous_mpmcs: Optional[Tuple[str, ...]] = None
        self._unknown_events = 0

    # -- base analysis -----------------------------------------------------

    @staticmethod
    def _ptop_of(report: AnalysisReport) -> Optional[float]:
        if report.top_event is None:
            return None
        return report.top_event.best_estimate

    def ensure_base(self) -> AnalysisReport:
        """Analyse the base tree once; every delta is relative to it."""
        with self._lock:
            if self._base_report is None:
                with self.executor.warm_scope():
                    report = self.executor.analyze_tree(
                        self.tree, self._analyses, top_k=self.top_k
                    )
                self._base_report = report
                self._base_ptop = self._ptop_of(report)
                self._previous_ptop = self._base_ptop
                self._previous_mpmcs = (
                    report.mpmcs.events if report.mpmcs is not None else None
                )
                self._last_update_at = time.time()
                self.events.append(
                    "base",
                    {
                        "tree": self.tree.name,
                        "backend": self.backend,
                        "ptop": self._base_ptop,
                        "mpmcs": (
                            list(self._previous_mpmcs)
                            if self._previous_mpmcs is not None
                            else None
                        ),
                    },
                )
            return self._base_report

    # -- the per-update hot path -------------------------------------------

    def apply_update(self, update: ProbabilityUpdate) -> MonitorDelta:
        """Apply one update, re-analyse incrementally, stream the delta."""
        self.ensure_base()
        with self._lock:
            return self._apply_locked(update)

    def _apply_locked(self, update: ProbabilityUpdate) -> MonitorDelta:
        started = time.perf_counter()
        changed, patched = self._stage_locked(update)
        return self._analyze_locked(update, changed, patched, started)

    def _stage_locked(
        self, update: ProbabilityUpdate
    ) -> Tuple[List[str], FaultTree]:
        """Fold one update into the current state; return its patched tree.

        Staging is cumulative: each staged update sees every earlier one, so
        a batch staged in order produces exactly the per-update trees the
        unbatched loop would have analysed.
        """
        registry = get_metrics()
        changed: List[str] = []
        for event, value in update.values:
            if event not in self._known_events:
                self._unknown_events += 1
                registry.inc("repro_monitor_unknown_events_total", tree=self.tree.name)
                log_event(
                    "monitoring.monitor",
                    "unknown_event_dropped",
                    tree=self.tree.name,
                    dropped=event,
                )
                continue
            if self._current.get(event) != value:
                changed.append(event)
            self._current[event] = value

        # Structure-preserving patch: a plain copy with the current
        # probability state — every structure-only cache key is unchanged.
        patched = self.tree.copy()
        for event, value in self._current.items():
            if self._base_probabilities.get(event) != value:
                patched.set_probability(event, value)
        return changed, patched

    def _analyze_locked(
        self,
        update: ProbabilityUpdate,
        changed: List[str],
        patched: FaultTree,
        started: float,
    ) -> MonitorDelta:
        registry = get_metrics()
        with self.executor.warm_scope():
            report = self.executor.analyze_tree(
                patched, self._analyses, top_k=self.top_k
            )
        self.executor.evict_tree_artifacts(self.tree, patched)

        self._updates_applied += 1
        self._last_update_at = time.time()
        seq = update.seq if update.seq is not None else self._last_seq + 1
        self._last_seq = seq

        ptop = self._ptop_of(report)
        mpmcs = report.mpmcs
        mpmcs_events = mpmcs.events if mpmcs is not None else None
        delta = MonitorDelta(
            seq=seq,
            timestamp=update.timestamp,
            ptop=ptop,
            previous_ptop=self._previous_ptop,
            base_ptop=self._base_ptop,
            mpmcs_events=mpmcs_events,
            mpmcs_probability=mpmcs.probability if mpmcs is not None else None,
            mpmcs_changed=mpmcs_identity_changed(self._previous_mpmcs, mpmcs_events),
            changed_events=tuple(sorted(changed)),
            latency_s=time.perf_counter() - started,
            source=update.source,
            report=report,
        )
        self._previous_ptop = ptop
        self._previous_mpmcs = mpmcs_events

        registry.inc("repro_monitor_updates_total", tree=self.tree.name)
        registry.observe(
            "repro_monitor_update_latency_seconds",
            delta.latency_s,
            buckets=UPDATE_LATENCY_BUCKETS,
            tree=self.tree.name,
        )
        if ptop is not None:
            registry.set_gauge("repro_monitor_ptop", ptop, tree=self.tree.name)
        if delta.mpmcs_changed:
            registry.inc("repro_monitor_mpmcs_changes_total", tree=self.tree.name)

        delta.alerts = self.engine.evaluate(delta)
        self.events.append(
            "delta", delta.to_dict(include_report=self.include_reports)
        )
        for alert in delta.alerts:
            self.events.append("alert", alert.to_dict())
        return delta

    def apply_batch(
        self, updates: Sequence[ProbabilityUpdate]
    ) -> List[MonitorDelta]:
        """Apply a chunk of updates with one batched P(top) evaluation.

        All updates are staged first (cumulatively, in order), their exact
        top-event probabilities are evaluated in a single kernel call over
        the whole ``(updates × events)`` grid
        (:meth:`SweepExecutor.precompute_top_events`), their MaxSAT re-solves
        run through the batched re-rank ladder
        (:meth:`SweepExecutor.precompute_rerank` — vectorised scoring over
        the warm session's candidate pool, near-zero SAT calls in steady
        state), and then each update runs the ordinary per-update analysis,
        which consumes its precomputed values.  The per-update deltas,
        reports, alerts and streamed events are identical to calling
        :meth:`apply_update` in a loop — batching only removes per-update
        solver and BDD work.
        """
        if not updates:
            return []
        self.ensure_base()
        with self._lock:
            staged: List[Tuple[ProbabilityUpdate, List[str], FaultTree, float]] = []
            for update in updates:
                started = time.perf_counter()
                changed, patched = self._stage_locked(update)
                staged.append((update, changed, patched, started))
            patched_trees = [patched for _, _, patched, _ in staged]
            if self.executor.uses_bdd_top_event:
                self.executor.precompute_top_events(patched_trees)
            if self.executor.uses_batched_rerank and any(
                analysis in ("mpmcs", "ranking") for analysis in self._analyses
            ):
                self.executor.precompute_rerank(patched_trees)
            try:
                return [
                    self._analyze_locked(update, changed, patched, started)
                    for update, changed, patched, started in staged
                ]
            finally:
                # A failed analysis must not leak its staged solve (and the
                # strong tree reference it holds) into the next batch.
                self.executor.clear_staged_rerank()

    # -- the watchdog ------------------------------------------------------

    def check_staleness(self, *, now: Optional[float] = None) -> List[Alert]:
        """Evaluate the feed-staleness watchdog rules; streams any alerts."""
        now = time.time() if now is None else now
        with self._lock:
            last = self._last_update_at if self._last_update_at is not None else self._started_at
            age = max(0.0, now - last)
            get_metrics().set_gauge(
                "repro_monitor_feed_age_seconds", age, tree=self.tree.name
            )
            alerts = self.engine.check_staleness(age, seq=self._last_seq, now=now)
            for alert in alerts:
                self.events.append("alert", alert.to_dict())
            return alerts

    # -- lifecycle ---------------------------------------------------------

    def run(
        self,
        feed: Any,
        *,
        max_updates: Optional[int] = None,
        batch_size: int = 1,
    ) -> int:
        """Drain ``feed`` synchronously; returns the number of updates applied.

        Stops early when :meth:`stop` was called or ``max_updates`` is
        reached.  The event stream is closed on exit (after a final ``end``
        event), so attached SSE clients terminate cleanly.

        ``batch_size > 1`` drains the feed in chunks through
        :meth:`apply_batch` — one kernel-batched P(top) evaluation per chunk
        instead of one BDD walk per update, with identical per-update deltas
        and events.  Suited to replay/backfill feeds; for live trickle feeds
        the default of 1 keeps per-update latency minimal.
        """
        if batch_size < 1:
            raise MonitorError(f"batch_size must be a positive integer, got {batch_size}")
        self.ensure_base()
        applied = 0
        try:
            if batch_size == 1:
                for update in feed:
                    if self._stop.is_set():
                        break
                    self.apply_update(update)
                    applied += 1
                    if max_updates is not None and applied >= max_updates:
                        break
                    self.check_staleness()
            else:
                iterator = iter(feed)
                while not self._stop.is_set():
                    budget = batch_size
                    if max_updates is not None:
                        budget = min(budget, max_updates - applied)
                    if budget <= 0:
                        break
                    chunk: List[ProbabilityUpdate] = []
                    for update in iterator:
                        chunk.append(update)
                        if len(chunk) >= budget:
                            break
                    if not chunk:
                        break
                    self.apply_batch(chunk)
                    applied += len(chunk)
                    if max_updates is not None and applied >= max_updates:
                        break
                    self.check_staleness()
        finally:
            close = getattr(feed, "close", None)
            if close is not None:
                close()
            self._finish()
        return applied

    def _finish(self) -> None:
        if not self.events.closed:
            self.events.append(
                "end",
                {
                    "tree": self.tree.name,
                    "updates": self._updates_applied,
                    "alerts": len(self.engine.alerts),
                },
            )
            self.events.close()
        log_event(
            "monitoring.monitor",
            "monitor_stopped",
            tree=self.tree.name,
            updates=self._updates_applied,
            alerts=len(self.engine.alerts),
        )

    def start(
        self,
        feed: Any,
        *,
        max_updates: Optional[int] = None,
        batch_size: int = 1,
        watchdog_interval_s: Optional[float] = None,
    ) -> "TreeMonitor":
        """Run the monitor loop on a daemon thread (plus a watchdog thread).

        The watchdog thread exists because a blocked feed iterator never
        returns control to the loop; it polls :meth:`check_staleness` every
        ``watchdog_interval_s`` (default: a quarter of the tightest staleness
        budget) until the monitor stops.
        """
        if self._thread is not None:
            raise MonitorError(f"monitor {self.name!r} is already running")
        if batch_size < 1:
            raise MonitorError(f"batch_size must be a positive integer, got {batch_size}")
        self.ensure_base()  # fail fast, before the thread detaches errors
        self._thread = threading.Thread(
            target=self.run,
            args=(feed,),
            kwargs={"max_updates": max_updates, "batch_size": batch_size},
            name=f"repro-monitor-{self.tree.name}",
            daemon=True,
        )
        self._thread.start()
        budgets = [
            rule.max_age_s
            for rule in self.engine.rules
            if hasattr(rule, "max_age_s")
        ]
        if budgets:
            interval = (
                watchdog_interval_s
                if watchdog_interval_s is not None
                else max(0.05, min(budgets) / 4)
            )
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                args=(interval,),
                name=f"repro-monitor-watchdog-{self.tree.name}",
                daemon=True,
            )
            self._watchdog.start()
        return self

    def _watchdog_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            if self.events.closed:
                return
            self.check_staleness()

    def stop(self, *, timeout: float = 10.0) -> None:
        """Request the loop to stop and join its threads."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.join(timeout)
            self._watchdog = None
        if self._base_report is not None and not self.events.closed:
            self._finish()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def status(self) -> Dict[str, Any]:
        """JSON-ready status document (the ``GET /monitor`` body)."""
        with self._lock:
            return {
                "name": self.name,
                "tree": self.tree.name,
                "backend": self.backend,
                "analyses": list(self._analyses),
                "running": self.running,
                "updates": self._updates_applied,
                "last_seq": self._last_seq,
                "ptop": self._previous_ptop,
                "base_ptop": self._base_ptop,
                "mpmcs": (
                    list(self._previous_mpmcs)
                    if self._previous_mpmcs is not None
                    else None
                ),
                "alerts": len(self.engine.alerts),
                "unknown_events": self._unknown_events,
                "last_event_id": self.events.last_id,
                "stream_closed": self.events.closed,
                "rules": [rule.to_dict() for rule in self.engine.rules],
            }
