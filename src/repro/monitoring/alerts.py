"""Declarative alert rules evaluated against every monitor delta.

Four rule families cover the ROADMAP's alerting cases:

* :class:`PTopThreshold` — P(top) above/below a threshold, with hysteresis:
  the rule fires once on *entering* the triggered region and re-arms only
  after P(top) has retreated past ``threshold ∓ hysteresis``, so a value
  jittering around the threshold produces one alert, not a storm;
* :class:`MpmcsChanged` — the most-probable minimal cut set's identity
  changed relative to the previous update (the paper's headline signal:
  the weakest link moved);
* :class:`PTopJump` — P(top) moved by more than a relative factor in a
  single update, whichever direction (sudden regime change);
* :class:`FeedStaleness` — the watchdog: no update has arrived for
  ``max_age_s`` seconds.  Evaluated between updates by the monitor loop;
  fires once per silence and re-arms when data flows again.

:class:`AlertEngine` owns the rule set, the per-rule armed/triggered state
that implements deduplication, a bounded in-memory ledger of every alert
raised, and — when given a store — persistence of that ledger under the
monitor's key, so alerts survive the monitor that raised them.  Every alert
is counted in ``repro_monitor_alerts_total{rule=...}`` and logged as a
structured event.
"""

from __future__ import annotations

import abc
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import ReproError
from repro.observability.log import log_event
from repro.observability.metrics import get_metrics

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "FeedStaleness",
    "MpmcsChanged",
    "PTopJump",
    "PTopThreshold",
    "RuleError",
    "WebhookSink",
    "load_alert_ledger",
    "rule_from_dict",
    "rule_to_dict",
    "rules_from_spec",
]

#: Artifact kind under which the alert ledger persists in the disk store.
ALERT_LEDGER_KIND = "monitor-alerts"


class RuleError(ReproError):
    """Invalid alert-rule parameters or wire document."""


@dataclass(frozen=True)
class Alert:
    """One raised alert: which rule fired, on which update, and why."""

    rule: str
    kind: str
    message: str
    seq: int
    timestamp: float
    value: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "message": self.message,
            "seq": self.seq,
            "ts": self.timestamp,
            "value": self.value,
        }


class AlertRule(abc.ABC):
    """One declarative rule; subclasses keep their own armed/triggered state."""

    #: Wire tag of the rule type (set by subclasses).
    kind: str = ""

    @abc.abstractmethod
    def evaluate(self, delta: "Any") -> Optional[str]:
        """Return an alert message if the rule fires on this delta, else None."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable identifier used for dedup, metrics labels and the ledger."""

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """Tagged wire document (inverse of :func:`rule_from_dict`)."""

    def value_of(self, delta: "Any") -> Optional[float]:
        """The numeric value the alert reports alongside its message."""
        return getattr(delta, "ptop", None)


class PTopThreshold(AlertRule):
    """P(top) crossed a threshold; hysteresis suppresses flapping."""

    kind = "ptop_threshold"

    def __init__(
        self, threshold: float, *, direction: str = "above", hysteresis: float = 0.0
    ) -> None:
        if not 0.0 <= float(threshold) <= 1.0:
            raise RuleError(f"threshold must lie in [0, 1], got {threshold!r}")
        if direction not in ("above", "below"):
            raise RuleError(f"direction must be 'above' or 'below', got {direction!r}")
        if float(hysteresis) < 0:
            raise RuleError(f"hysteresis cannot be negative, got {hysteresis!r}")
        self.threshold = float(threshold)
        self.direction = direction
        self.hysteresis = float(hysteresis)
        self._triggered = False

    @property
    def name(self) -> str:
        return f"ptop_{self.direction}_{self.threshold:g}"

    def evaluate(self, delta: "Any") -> Optional[str]:
        ptop = delta.ptop
        if ptop is None:
            return None
        if self.direction == "above":
            fires = ptop > self.threshold
            rearms = ptop <= self.threshold - self.hysteresis
        else:
            fires = ptop < self.threshold
            rearms = ptop >= self.threshold + self.hysteresis
        if self._triggered:
            if rearms:
                self._triggered = False
            return None
        if fires:
            self._triggered = True
            return (
                f"P(top)={ptop:.6g} {self.direction} threshold {self.threshold:g}"
            )
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.kind,
            "threshold": self.threshold,
            "direction": self.direction,
            "hysteresis": self.hysteresis,
        }


class MpmcsChanged(AlertRule):
    """The most-probable minimal cut set is not the one it was."""

    kind = "mpmcs_changed"

    @property
    def name(self) -> str:
        return "mpmcs_identity_changed"

    def evaluate(self, delta: "Any") -> Optional[str]:
        if not delta.mpmcs_changed:
            return None
        mpmcs = delta.mpmcs_events
        shown = "{" + ", ".join(mpmcs) + "}" if mpmcs else "(none)"
        return f"MPMCS identity changed to {shown}"

    def value_of(self, delta: "Any") -> Optional[float]:
        return getattr(delta, "mpmcs_probability", None)

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.kind}


class PTopJump(AlertRule):
    """P(top) moved by more than ``factor`` (relative) in one update."""

    kind = "ptop_jump"

    def __init__(self, factor: float) -> None:
        if float(factor) <= 0:
            raise RuleError(f"jump factor must be positive, got {factor!r}")
        self.factor = float(factor)

    @property
    def name(self) -> str:
        return f"ptop_jump_{self.factor:g}"

    def evaluate(self, delta: "Any") -> Optional[str]:
        ptop, previous = delta.ptop, delta.previous_ptop
        if ptop is None or previous is None or previous <= 0:
            return None
        ratio = abs(ptop - previous) / previous
        if ratio < self.factor:
            return None
        return (
            f"P(top) jumped {ratio * 100:.1f}% in one update "
            f"({previous:.6g} -> {ptop:.6g})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.kind, "factor": self.factor}


class FeedStaleness(AlertRule):
    """Watchdog: the feed has produced nothing for ``max_age_s`` seconds.

    Unlike the other rules this one is evaluated *between* updates (the
    monitor loop calls :meth:`check` while waiting); :meth:`evaluate` only
    re-arms the watchdog when data arrives.
    """

    kind = "feed_staleness"

    def __init__(self, max_age_s: float) -> None:
        if float(max_age_s) <= 0:
            raise RuleError(f"max_age_s must be positive, got {max_age_s!r}")
        self.max_age_s = float(max_age_s)
        self._triggered = False

    @property
    def name(self) -> str:
        return f"feed_stale_{self.max_age_s:g}s"

    def evaluate(self, delta: "Any") -> Optional[str]:
        self._triggered = False  # data arrived: re-arm
        return None

    def check(self, age_s: float) -> Optional[str]:
        """Fires once per silence when the feed age exceeds the budget."""
        if age_s <= self.max_age_s or self._triggered:
            return None
        self._triggered = True
        return f"feed silent for {age_s:.1f}s (budget {self.max_age_s:g}s)"

    def to_dict(self) -> Dict[str, Any]:
        return {"rule": self.kind, "max_age_s": self.max_age_s}


_RULE_TYPES = {
    cls.kind: cls for cls in (PTopThreshold, MpmcsChanged, PTopJump, FeedStaleness)
}


def rule_to_dict(rule: AlertRule) -> Dict[str, Any]:
    """Tagged wire document of one rule (inverse of :func:`rule_from_dict`)."""
    return rule.to_dict()


def rule_from_dict(document: Mapping[str, Any]) -> AlertRule:
    """Reconstruct a rule from its tagged wire document."""
    if not isinstance(document, Mapping):
        raise RuleError(f"rule document must be a JSON object, got {document!r}")
    kind = document.get("rule")
    if kind == PTopThreshold.kind:
        return PTopThreshold(
            document.get("threshold", 0.0),
            direction=document.get("direction", "above"),
            hysteresis=document.get("hysteresis", 0.0),
        )
    if kind == MpmcsChanged.kind:
        return MpmcsChanged()
    if kind == PTopJump.kind:
        return PTopJump(document.get("factor", 0.0))
    if kind == FeedStaleness.kind:
        return FeedStaleness(document.get("max_age_s", 0.0))
    raise RuleError(
        f"unknown rule type {kind!r}; expected one of {', '.join(sorted(_RULE_TYPES))}"
    )


def rules_from_spec(spec: Optional[Sequence[Any]]) -> List[AlertRule]:
    """Decode a list of rule documents (``None``/empty -> no rules)."""
    if spec is None:
        return []
    if not isinstance(spec, Sequence) or isinstance(spec, (str, bytes)):
        raise RuleError(f"rules spec must be a list of rule documents, got {spec!r}")
    return [rule_from_dict(document) for document in spec]


class WebhookSink:
    """Delivers each alert as an HTTP POST of its JSON document.

    Delivery is best-effort with bounded retry: transient failures (connection
    refused, 5xx, timeouts) are retried ``max_retries`` times with exponential
    backoff starting at ``backoff_s``; an alert whose final attempt fails is
    dropped (the in-memory/persisted ledger still has it — the webhook is a
    *notification* channel, not the system of record).  Outcomes are counted
    in the ``repro_monitor_webhook_*`` metric families:
    ``..._delivered_total``, ``..._retries_total`` and ``..._dropped_total``.

    ``transport`` is injectable for tests: a callable taking
    ``(url, payload_bytes, timeout_s)`` that raises :class:`OSError` /
    :class:`urllib.error.URLError` on failure.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout_s: float = 5.0,
        max_retries: int = 2,
        backoff_s: float = 0.5,
        transport: Optional[Callable[[str, bytes, float], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not isinstance(url, str) or not url.lower().startswith(("http://", "https://")):
            raise RuleError(f"webhook url must be an http(s) URL, got {url!r}")
        if max_retries < 0:
            raise RuleError(f"max_retries cannot be negative, got {max_retries!r}")
        self.url = url
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._transport = transport if transport is not None else self._post
        self._sleep = sleep

    @staticmethod
    def _post(url: str, payload: bytes, timeout_s: float) -> None:
        request = urllib.request.Request(
            url,
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout_s):
            pass

    def deliver(self, alert: Alert) -> bool:
        """POST one alert; True on success, False when every attempt failed."""
        payload = json.dumps(alert.to_dict(), sort_keys=True).encode("utf-8")
        registry = get_metrics()
        for attempt in range(self.max_retries + 1):
            try:
                self._transport(self.url, payload, self.timeout_s)
            except (urllib.error.URLError, OSError) as exc:
                if attempt < self.max_retries:
                    registry.inc("repro_monitor_webhook_retries_total")
                    self._sleep(self.backoff_s * (2 ** attempt))
                    continue
                registry.inc("repro_monitor_webhook_dropped_total")
                log_event(
                    "monitoring.alerts",
                    "webhook_delivery_failed",
                    rule=alert.rule,
                    seq=alert.seq,
                    url=self.url,
                    error=str(exc),
                )
                return False
            registry.inc("repro_monitor_webhook_delivered_total")
            return True
        return False  # pragma: no cover - loop always returns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sink": "webhook",
            "url": self.url,
            "timeout_s": self.timeout_s,
            "max_retries": self.max_retries,
        }


class AlertEngine:
    """Evaluates a rule set per delta, deduplicates, and keeps the ledger.

    ``sinks`` are outbound notification channels (e.g. :class:`WebhookSink`)
    invoked for every recorded alert *in addition to* the ledger; a sink
    raising never disturbs the monitor loop.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule] = (),
        *,
        store: Any = None,
        ledger_key: str = "",
        max_alerts: int = 1024,
        sinks: Sequence[Any] = (),
    ) -> None:
        self.rules = list(rules)
        self.store = store
        self.ledger_key = ledger_key
        self.max_alerts = max_alerts
        self.alerts: List[Alert] = []
        self.sinks = list(sinks)

    def _record(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if len(self.alerts) > self.max_alerts:
            del self.alerts[: len(self.alerts) - self.max_alerts]
        get_metrics().inc("repro_monitor_alerts_total", rule=alert.rule)
        log_event(
            "monitoring.alerts",
            "alert_raised",
            rule=alert.rule,
            kind=alert.kind,
            seq=alert.seq,
            message=alert.message,
        )
        if self.store is not None and self.ledger_key:
            self.store.store(
                self.ledger_key,
                ALERT_LEDGER_KIND,
                [entry.to_dict() for entry in self.alerts],
            )
        for sink in self.sinks:
            try:
                sink.deliver(alert)
            except Exception as exc:  # noqa: BLE001 - sinks must never sink the loop
                log_event(
                    "monitoring.alerts",
                    "sink_error",
                    rule=alert.rule,
                    seq=alert.seq,
                    error=str(exc),
                )

    def evaluate(self, delta: "Any") -> List[Alert]:
        """Run every rule against one delta; returns the alerts that fired."""
        fired: List[Alert] = []
        for rule in self.rules:
            message = rule.evaluate(delta)
            if message is None:
                continue
            alert = Alert(
                rule=rule.name,
                kind=rule.kind,
                message=message,
                seq=delta.seq,
                timestamp=delta.timestamp,
                value=rule.value_of(delta),
            )
            self._record(alert)
            fired.append(alert)
        return fired

    def check_staleness(self, age_s: float, *, seq: int, now: float) -> List[Alert]:
        """Run the watchdog rules against the current feed silence."""
        fired: List[Alert] = []
        for rule in self.rules:
            if not isinstance(rule, FeedStaleness):
                continue
            message = rule.check(age_s)
            if message is None:
                continue
            alert = Alert(
                rule=rule.name,
                kind=rule.kind,
                message=message,
                seq=seq,
                timestamp=now,
                value=age_s,
            )
            self._record(alert)
            fired.append(alert)
        return fired

    def ledger(self) -> List[Dict[str, Any]]:
        """Every alert raised so far, oldest first, as wire documents."""
        return [alert.to_dict() for alert in self.alerts]


def load_alert_ledger(store: Any, ledger_key: str) -> List[Dict[str, Any]]:
    """Read a persisted alert ledger back from the store (empty if absent)."""
    if store is None or not ledger_key:
        return []
    found, value = store.load(ledger_key, ALERT_LEDGER_KIND)
    return list(value) if found else []
