"""Live monitoring: probability feeds, incremental re-analysis, alerting.

The subsystem that turns the incremental analysis stack into a *live* one
(ROADMAP item 4).  A :class:`~repro.monitoring.monitor.TreeMonitor` consumes
timestamped probability updates from a feed adapter
(:mod:`~repro.monitoring.feeds`), re-analyses the monitored tree through the
warm incremental path on every update, evaluates declarative alert rules
(:mod:`~repro.monitoring.alerts`), and streams deltas and alerts through a
replayable event buffer (:mod:`~repro.monitoring.events`) framed as
Server-Sent Events (:mod:`~repro.monitoring.sse`) by the service layer.
"""

from repro.monitoring.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    FeedStaleness,
    MpmcsChanged,
    PTopJump,
    PTopThreshold,
    RuleError,
    load_alert_ledger,
    rule_from_dict,
    rule_to_dict,
    rules_from_spec,
)
from repro.monitoring.events import BufferedEvent, EventBuffer
from repro.monitoring.feeds import (
    FeedError,
    FileTailFeed,
    HTTPPollFeed,
    ProbabilityUpdate,
    SyntheticFeed,
    feed_from_spec,
)
from repro.monitoring.monitor import MonitorDelta, MonitorError, TreeMonitor
from repro.monitoring.sse import SSEClient, SSEvent, StreamError, format_sse, parse_sse

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BufferedEvent",
    "EventBuffer",
    "FeedError",
    "FeedStaleness",
    "FileTailFeed",
    "HTTPPollFeed",
    "MonitorDelta",
    "MonitorError",
    "MpmcsChanged",
    "PTopJump",
    "PTopThreshold",
    "ProbabilityUpdate",
    "RuleError",
    "SSEClient",
    "SSEvent",
    "StreamError",
    "SyntheticFeed",
    "TreeMonitor",
    "feed_from_spec",
    "format_sse",
    "load_alert_ledger",
    "parse_sse",
    "rule_from_dict",
    "rule_to_dict",
    "rules_from_spec",
]
