"""Feed adapters: sources of live basic-event probability updates.

A feed is simply an iterable of :class:`ProbabilityUpdate` batches — each a
timestamped ``{event: probability}`` mapping — that a
:class:`~repro.monitoring.monitor.TreeMonitor` consumes one at a time.
Three adapters cover the ROADMAP's live-monitoring sources:

* :class:`SyntheticFeed` — a deterministic log-space random walk over a
  tree's basic events (:func:`repro.workloads.generator.probability_walk`),
  for demos, benchmarks and the CI monitoring smoke;
* :class:`FileTailFeed` — tails a JSON-lines file where each line is an
  update document (the shape sensors or an ETL job would append);
* :class:`HTTPPollFeed` — polls an HTTP endpoint returning either one update
  document or ``{"updates": [...]}``, deduplicating on ``seq`` so an
  idempotent endpoint can be polled faster than it produces.

Update documents are the wire form used everywhere (file lines, HTTP bodies,
SSE frames)::

    {"values": {"x1": 0.02, "x4": 0.3}, "ts": 1723112345.1, "seq": 17,
     "source": "hydrometry-station-4"}

Only ``values`` is required; ``ts`` defaults to arrival time and ``seq`` to
the feed's own running counter.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import ReproError
from repro.fta.tree import FaultTree
from repro.observability.log import log_event
from repro.workloads.generator import probability_walk

__all__ = [
    "FeedError",
    "FileTailFeed",
    "HTTPPollFeed",
    "ProbabilityUpdate",
    "SyntheticFeed",
    "feed_from_spec",
]


class FeedError(ReproError):
    """A feed source produced something that is not a probability update."""


@dataclass(frozen=True)
class ProbabilityUpdate:
    """One timestamped batch of basic-event probability changes."""

    values: Tuple[Tuple[str, float], ...]
    timestamp: float = field(default_factory=time.time)
    seq: Optional[int] = None
    source: str = ""

    @staticmethod
    def create(
        values: Mapping[str, float],
        *,
        timestamp: Optional[float] = None,
        seq: Optional[int] = None,
        source: str = "",
    ) -> "ProbabilityUpdate":
        items = tuple(sorted((str(k), float(v)) for k, v in values.items()))
        if not items:
            raise FeedError("a probability update needs at least one event value")
        for name, value in items:
            if not 0.0 <= value <= 1.0:
                raise FeedError(
                    f"update value for event {name!r} must lie in [0, 1], got {value!r}"
                )
        return ProbabilityUpdate(
            values=items,
            timestamp=time.time() if timestamp is None else float(timestamp),
            seq=seq,
            source=source,
        )

    def as_mapping(self) -> Dict[str, float]:
        return dict(self.values)

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "values": {name: value for name, value in self.values},
            "ts": self.timestamp,
        }
        if self.seq is not None:
            document["seq"] = self.seq
        if self.source:
            document["source"] = self.source
        return document

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "ProbabilityUpdate":
        if not isinstance(document, Mapping):
            raise FeedError(f"update document must be a JSON object, got {document!r}")
        values = document.get("values")
        if not isinstance(values, Mapping):
            raise FeedError("update document needs a 'values' object of event: probability")
        seq = document.get("seq")
        if seq is not None and (not isinstance(seq, int) or isinstance(seq, bool)):
            raise FeedError(f"update 'seq' must be an integer, got {seq!r}")
        try:
            return ProbabilityUpdate.create(
                {str(k): float(v) for k, v in values.items()},
                timestamp=document.get("ts"),
                seq=seq,
                source=str(document.get("source", "")),
            )
        except (TypeError, ValueError) as exc:
            raise FeedError(f"malformed update document: {exc}") from exc


class SyntheticFeed:
    """Deterministic random-walk feed over a tree's basic events.

    Wraps :func:`repro.workloads.generator.probability_walk`: given the same
    tree and seed, two feeds emit identical value sequences (timestamps are
    wall-clock).  ``interval_s`` throttles emission for realistic pacing;
    the default ``0`` emits as fast as the monitor consumes.
    """

    def __init__(
        self,
        tree: FaultTree,
        *,
        updates: int = 100,
        seed: int = 0,
        events_per_update: int = 1,
        volatility: float = 0.35,
        interval_s: float = 0.0,
    ) -> None:
        self.tree = tree
        self.updates = int(updates)
        self.seed = int(seed)
        self.events_per_update = int(events_per_update)
        self.volatility = float(volatility)
        self.interval_s = float(interval_s)

    def __iter__(self) -> Iterator[ProbabilityUpdate]:
        walk = probability_walk(
            self.tree,
            steps=self.updates,
            seed=self.seed,
            events_per_step=self.events_per_update,
            volatility=self.volatility,
        )
        for seq, batch in enumerate(walk, start=1):
            if self.interval_s > 0:
                time.sleep(self.interval_s)
            yield ProbabilityUpdate.create(batch, seq=seq, source="synthetic")

    def close(self) -> None:
        pass


class FileTailFeed:
    """Tail a JSON-lines file of update documents.

    Reads existing lines first (``from_start=True``, the default), then polls
    for appended lines every ``poll_interval_s``.  Iteration ends once no new
    line has appeared for ``idle_timeout_s`` (``None`` tails forever — the
    monitor's stop flag is then the only exit).  Malformed lines are logged
    and skipped, never fatal: one corrupt sensor write must not kill a
    long-lived monitor.
    """

    def __init__(
        self,
        path: str,
        *,
        poll_interval_s: float = 0.2,
        idle_timeout_s: Optional[float] = None,
        from_start: bool = True,
    ) -> None:
        self.path = path
        self.poll_interval_s = float(poll_interval_s)
        self.idle_timeout_s = idle_timeout_s
        self.from_start = from_start
        self._seq = 0

    def _parse(self, line: str) -> Optional[ProbabilityUpdate]:
        text = line.strip()
        if not text:
            return None
        try:
            update = ProbabilityUpdate.from_dict(json.loads(text))
        except (json.JSONDecodeError, FeedError) as exc:
            log_event(
                "monitoring.feeds",
                "malformed_feed_line",
                path=self.path,
                error=str(exc),
            )
            return None
        if update.seq is None:
            self._seq += 1
            update = ProbabilityUpdate(
                values=update.values,
                timestamp=update.timestamp,
                seq=self._seq,
                source=update.source or self.path,
            )
        else:
            self._seq = update.seq
        return update

    def __iter__(self) -> Iterator[ProbabilityUpdate]:
        with open(self.path, "r", encoding="utf-8") as stream:
            if not self.from_start:
                stream.seek(0, 2)
            idle_since = time.monotonic()
            while True:
                line = stream.readline()
                if line:
                    idle_since = time.monotonic()
                    update = self._parse(line)
                    if update is not None:
                        yield update
                    continue
                if (
                    self.idle_timeout_s is not None
                    and time.monotonic() - idle_since > self.idle_timeout_s
                ):
                    return
                time.sleep(self.poll_interval_s)

    def close(self) -> None:
        pass


class HTTPPollFeed:
    """Poll an HTTP endpoint for update documents.

    The endpoint returns JSON: one update document, a list of them, or
    ``{"updates": [...]}``.  Updates whose ``seq`` is not newer than the last
    seen one are dropped, so the endpoint may idempotently re-serve recent
    readings (the hubeau-style sensor APIs do).  Unreachable polls are logged
    and retried; ``max_polls`` bounds iteration for tests and one-shot runs.
    """

    def __init__(
        self,
        url: str,
        *,
        poll_interval_s: float = 1.0,
        timeout_s: float = 10.0,
        max_polls: Optional[int] = None,
    ) -> None:
        self.url = url
        self.poll_interval_s = float(poll_interval_s)
        self.timeout_s = float(timeout_s)
        self.max_polls = max_polls
        self._last_seq: Optional[int] = None

    def _fetch(self) -> Any:
        request = urllib.request.Request(self.url, method="GET")
        with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))

    def _documents(self, body: Any) -> Iterator[Mapping[str, Any]]:
        if isinstance(body, Mapping) and "updates" in body:
            body = body["updates"]
        if isinstance(body, Mapping):
            yield body
            return
        if isinstance(body, list):
            for document in body:
                yield document
            return
        raise FeedError(f"HTTP feed body must be an update document or list, got {type(body).__name__}")

    def __iter__(self) -> Iterator[ProbabilityUpdate]:
        polls = 0
        while self.max_polls is None or polls < self.max_polls:
            polls += 1
            try:
                body = self._fetch()
            except (urllib.error.URLError, json.JSONDecodeError, OSError) as exc:
                log_event(
                    "monitoring.feeds", "poll_failed", url=self.url, error=str(exc)
                )
                time.sleep(self.poll_interval_s)
                continue
            for document in self._documents(body):
                update = ProbabilityUpdate.from_dict(document)
                if update.seq is not None and self._last_seq is not None:
                    if update.seq <= self._last_seq:
                        continue
                if update.seq is not None:
                    self._last_seq = update.seq
                yield update
            if self.max_polls is None or polls < self.max_polls:
                time.sleep(self.poll_interval_s)

    def close(self) -> None:
        pass


def feed_from_spec(document: Mapping[str, Any], *, tree: Optional[FaultTree] = None):
    """Build a feed from its wire-form spec (the ``POST /monitor`` payload).

    ====================  =========================================================
    ``{"type": ...}``     parameters
    ====================  =========================================================
    ``synthetic``         ``updates``, ``seed``, ``events_per_update``,
                          ``volatility``, ``interval_s`` (needs a tree)
    ``file``              ``path``, ``poll_interval_s``, ``idle_timeout_s``,
                          ``from_start``
    ``http``              ``url``, ``poll_interval_s``, ``timeout_s``, ``max_polls``
    ====================  =========================================================
    """
    if not isinstance(document, Mapping):
        raise FeedError(f"feed spec must be a JSON object, got {document!r}")
    kind = document.get("type")
    if kind == "synthetic":
        if tree is None:
            raise FeedError("a synthetic feed needs the monitored tree")
        return SyntheticFeed(
            tree,
            updates=document.get("updates", 100),
            seed=document.get("seed", 0),
            events_per_update=document.get("events_per_update", 1),
            volatility=document.get("volatility", 0.35),
            interval_s=document.get("interval_s", 0.0),
        )
    if kind == "file":
        path = document.get("path")
        if not isinstance(path, str) or not path:
            raise FeedError("a file feed needs a 'path' string")
        return FileTailFeed(
            path,
            poll_interval_s=document.get("poll_interval_s", 0.2),
            idle_timeout_s=document.get("idle_timeout_s"),
            from_start=bool(document.get("from_start", True)),
        )
    if kind == "http":
        url = document.get("url")
        if not isinstance(url, str) or not url:
            raise FeedError("an http feed needs a 'url' string")
        return HTTPPollFeed(
            url,
            poll_interval_s=document.get("poll_interval_s", 1.0),
            timeout_s=document.get("timeout_s", 10.0),
            max_polls=document.get("max_polls"),
        )
    raise FeedError(
        f"unknown feed type {kind!r}; expected 'synthetic', 'file' or 'http'"
    )
