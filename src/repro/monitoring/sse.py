"""Server-Sent Events framing: the wire protocol of the streaming endpoints.

Both streaming endpoints (``GET /monitor/stream`` and
``GET /sweeps/<id>/stream``) speak standard ``text/event-stream``: each
buffered event becomes one frame ::

    id: 42
    event: delta
    data: {"seq": 17, "ptop": 0.0123, ...}
    <blank line>

The ``id`` field is the :class:`~repro.monitoring.events.EventBuffer` id —
strictly increasing — which is what makes reconnection lossless: a client
that reconnects with a ``Last-Event-ID`` header receives exactly the events
it missed (as long as they are still in the server's ring buffer).

:func:`format_sse` renders frames, :func:`parse_sse` consumes a byte stream
back into :class:`SSEvent` records, and :class:`SSEClient` is the
reconnecting consumer used by :class:`~repro.service.http.ServiceClient`:
it re-opens the connection on network failure, resuming from the last id it
saw, and terminates cleanly when the server signals the end of the stream
(an ``end`` event, or HTTP 404/410 once the source is gone).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Optional

from repro.exceptions import ReproError
from repro.monitoring.events import BufferedEvent
from repro.observability.log import log_event

__all__ = ["SSEClient", "SSEvent", "StreamError", "format_sse", "parse_sse"]

#: Event kind a server appends as the final frame of a finite stream.
END_EVENT = "end"


class StreamError(ReproError):
    """The SSE stream could not be established or kept alive."""


@dataclass(frozen=True)
class SSEvent:
    """One parsed server-sent event."""

    id: Optional[int]
    event: str
    data: Any

    @property
    def is_end(self) -> bool:
        return self.event == END_EVENT


def format_sse(event: BufferedEvent) -> bytes:
    """Render one buffered event as a ``text/event-stream`` frame."""
    payload = json.dumps(event.data, sort_keys=True, separators=(",", ":"))
    return (
        f"id: {event.id}\nevent: {event.kind}\ndata: {payload}\n\n".encode("utf-8")
    )


def parse_sse(lines: Iterable[bytes]) -> Iterator[SSEvent]:
    """Parse an iterable of raw ``text/event-stream`` lines into events.

    Implements the subset of the SSE grammar our server emits plus the
    common liberties (``data`` spread over several lines is joined with
    newlines, comment lines starting with ``:`` are ignored, a trailing
    unterminated frame is dropped).  ``data`` payloads are JSON-decoded when
    possible and passed through as text otherwise.
    """
    event_id: Optional[int] = None
    kind = "message"
    data_lines: list = []
    saw_field = False
    for raw in lines:
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if not line:
            if saw_field:
                yield _assemble(event_id, kind, data_lines)
            event_id, kind, data_lines, saw_field = None, "message", [], False
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        saw_field = True
        if field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
        elif field == "event":
            kind = value or "message"
        elif field == "data":
            data_lines.append(value)
        # Unknown fields (e.g. "retry") are ignored, per the SSE spec.


def _assemble(event_id: Optional[int], kind: str, data_lines: list) -> SSEvent:
    text = "\n".join(data_lines)
    try:
        data = json.loads(text) if text else None
    except json.JSONDecodeError:
        data = text
    return SSEvent(id=event_id, event=kind, data=data)


class SSEClient:
    """Reconnecting ``text/event-stream`` consumer.

    Iterating yields :class:`SSEvent` records.  On a dropped connection the
    client reconnects with ``Last-Event-ID`` set to the last id it saw, so
    the server's ring buffer replays only the missed events — the consumer
    observes an uninterrupted, strictly-increasing id sequence.

    Termination:

    * an ``end`` event is yielded, then iteration stops — the server
      finished the stream deliberately;
    * the stream source disappears (HTTP 404/410 on reconnect) — the
      monitor or sweep was torn down while we were away;
    * ``max_retries`` *consecutive* failed connection attempts.
    """

    def __init__(
        self,
        url: str,
        *,
        last_event_id: int = 0,
        timeout_s: float = 30.0,
        retry_interval_s: float = 0.5,
        max_retries: int = 10,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.url = url
        self.last_event_id = int(last_event_id)
        self.timeout_s = float(timeout_s)
        self.retry_interval_s = float(retry_interval_s)
        self.max_retries = int(max_retries)
        self.headers = dict(headers or {})
        self.reconnects = 0

    def _connect(self):
        headers = dict(self.headers)
        headers["Accept"] = "text/event-stream"
        if self.last_event_id:
            headers["Last-Event-ID"] = str(self.last_event_id)
        request = urllib.request.Request(self.url, headers=headers, method="GET")
        return urllib.request.urlopen(request, timeout=self.timeout_s)

    def __iter__(self) -> Iterator[SSEvent]:
        failures = 0
        connected_once = False
        while True:
            try:
                response = self._connect()
            except urllib.error.HTTPError as exc:
                if exc.code in (404, 410):
                    if connected_once:
                        return  # stream source is gone: deliberate shutdown
                    raise StreamError(
                        f"stream endpoint {self.url} not found (HTTP {exc.code})"
                    ) from exc
                failures += 1
                if failures > self.max_retries:
                    raise StreamError(
                        f"giving up on {self.url} after {failures} failed connects"
                    ) from exc
                time.sleep(self.retry_interval_s)
                continue
            except (urllib.error.URLError, OSError) as exc:
                failures += 1
                if failures > self.max_retries:
                    raise StreamError(
                        f"giving up on {self.url} after {failures} failed connects"
                    ) from exc
                time.sleep(self.retry_interval_s)
                continue

            failures = 0
            if connected_once:
                self.reconnects += 1
                log_event(
                    "monitoring.sse",
                    "client_reconnected",
                    url=self.url,
                    last_event_id=self.last_event_id,
                )
            connected_once = True
            try:
                with response:
                    for event in parse_sse(response):
                        if event.id is not None:
                            if event.id <= self.last_event_id:
                                continue  # replayed frame we already consumed
                            self.last_event_id = event.id
                        yield event
                        if event.is_end:
                            return
            except (urllib.error.URLError, OSError, ValueError) as exc:
                # Connection dropped mid-stream: reconnect and replay.
                log_event(
                    "monitoring.sse",
                    "stream_dropped",
                    url=self.url,
                    error=str(exc),
                    last_event_id=self.last_event_id,
                )
                time.sleep(self.retry_interval_s)
                continue
            # Clean EOF without an ``end`` event: the server restarted or the
            # connection was recycled — reconnect and resume.
            time.sleep(self.retry_interval_s)
