"""The paper's primary contribution: MPMCS computation via Weighted Partial MaxSAT.

The package implements the six-step resolution method of Section III:

1. **Logical transformation** — the fault tree's structure function and its
   complement (success tree), provided by :mod:`repro.fta.formula`.
2. **CNF conversion** — Tseitin encoding (:mod:`repro.logic.tseitin`).
3. **Probabilities transformation into log-space** —
   :mod:`repro.core.weights`.
4. **Weighted Partial MaxSAT instance** — :mod:`repro.core.encoder`.
5. **Parallel MaxSAT resolution** — :mod:`repro.maxsat.portfolio`.
6. **Reverse log-space transformation** — :mod:`repro.core.weights` and the
   result assembly in :mod:`repro.core.pipeline`.

The user-facing entry points are :class:`repro.core.pipeline.MPMCSSolver`
(single best cut set), :func:`repro.core.pipeline.find_mpmcs` (convenience
wrapper) and :func:`repro.core.topk.enumerate_mpmcs` (top-k enumeration).
"""

from repro.core.weights import (
    log_weights,
    probability_from_cost,
    probability_of_cut_set,
    weight_of_cut_set,
)
from repro.core.encoder import (
    MPMCSEncoding,
    assemble_structure_cnf,
    encode_mpmcs,
    gate_fragment,
)
from repro.core.pipeline import MPMCSResult, MPMCSSolver, find_mpmcs
from repro.core.topk import RankedCutSet, enumerate_mpmcs

__all__ = [
    "MPMCSEncoding",
    "MPMCSResult",
    "MPMCSSolver",
    "RankedCutSet",
    "assemble_structure_cnf",
    "encode_mpmcs",
    "enumerate_mpmcs",
    "gate_fragment",
    "find_mpmcs",
    "log_weights",
    "probability_from_cost",
    "probability_of_cut_set",
    "weight_of_cut_set",
]
