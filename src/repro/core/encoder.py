"""Encoding of the MPMCS problem as Weighted Partial MaxSAT (paper Steps 1–4).

Given a fault tree, the encoder produces a :class:`~repro.maxsat.instance.WPMaxSATInstance`
whose optimal solutions are exactly the Maximum Probability Minimal Cut Sets:

* **Hard clauses** — the Tseitin CNF of the structure function ``f(t)`` with
  the root asserted, i.e. "the top event occurs".
* **Soft clauses** — one unit clause ``(¬x_i)`` per basic event with weight
  ``w_i = -log(p(x_i))``: falsifying it (making the event part of the cut set)
  costs ``w_i``.

Equivalence with the paper's presentation
-----------------------------------------
The paper phrases the encoding over the *success tree* variables
``y_i = ¬x_i``:  soft clauses ``(y_i)`` are added and the hard part is
``¬Y(t)``.  Substituting ``y_i = ¬x_i`` turns each soft clause ``(y_i)`` into
``(¬x_i)`` and turns ``¬Y(t)`` into ``f(t)``, i.e. exactly the encoding built
here; the two formulations are literally isomorphic (a variable renaming).  We
work directly over the event variables ``x_i`` so that solver models can be
read back without an extra renaming step.  Because all gates are monotone and
all weights are positive, an optimal solution never sets an unnecessary event
to true, hence the extracted set is an inclusion-minimal cut set — the MPMCS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.weights import log_weight
from repro.exceptions import AnalysisError
from repro.fta.formula import structure_function, success_function
from repro.fta.tree import FaultTree
from repro.logic.formula import Formula
from repro.logic.tseitin import tseitin_encode
from repro.maxsat.instance import DEFAULT_PRECISION, WPMaxSATInstance

__all__ = ["MPMCSEncoding", "encode_mpmcs"]


@dataclass
class MPMCSEncoding:
    """The Weighted Partial MaxSAT encoding of an MPMCS problem.

    Attributes
    ----------
    instance:
        The encoded MaxSAT instance (hard Tseitin clauses + soft event clauses).
    event_vars:
        Mapping from basic event name to its CNF variable.
    var_events:
        Inverse of ``event_vars``.
    weights:
        The ``-log`` weight of each basic event (paper Step 3 / Table I).
    structure:
        The structure function ``f(t)`` that was encoded.
    success:
        The success-tree formula ``¬f(t)`` (kept for reporting and analyses).
    num_aux_vars:
        Number of auxiliary Tseitin variables introduced in Step 2.
    """

    instance: WPMaxSATInstance
    event_vars: Dict[str, int]
    var_events: Dict[int, str]
    weights: Dict[str, float]
    structure: Formula
    success: Formula
    num_aux_vars: int

    def cut_set_from_model(self, model: Dict[int, bool]) -> Tuple[str, ...]:
        """Extract the cut set (events set to true) from a MaxSAT model."""
        members = [
            name for name, var in self.event_vars.items() if model.get(var, False)
        ]
        return tuple(sorted(members))


def encode_mpmcs(
    tree: FaultTree,
    *,
    precision: int = DEFAULT_PRECISION,
    include_success: bool = True,
) -> MPMCSEncoding:
    """Encode the MPMCS problem of ``tree`` as Weighted Partial MaxSAT.

    Parameters
    ----------
    tree:
        The fault tree to analyse.  It is validated first.
    precision:
        Integer scaling precision for the float weights (see
        :class:`~repro.maxsat.instance.WPMaxSATInstance`).
    include_success:
        Whether to also materialise the success-tree formula (used by reports);
        disable for the largest benchmark instances to save a little time.
    """
    tree.validate()
    structure = structure_function(tree)
    success = success_function(tree) if include_success else None

    encoding_result = tseitin_encode(structure, assert_root=True)
    cnf = encoding_result.cnf

    instance = WPMaxSATInstance(precision=precision)
    instance.add_hard_cnf(cnf)

    event_vars: Dict[str, int] = {}
    weights: Dict[str, float] = {}
    reachable_events = set(tree.events_reachable_from_top())
    for name, event in tree.events.items():
        if name not in reachable_events:
            continue
        var = cnf.name_to_var.get(name)
        if var is None:
            raise AnalysisError(
                f"basic event {name!r} does not appear in the encoded structure function"
            )
        weight = log_weight(event.probability)
        event_vars[name] = var
        weights[name] = weight
        instance.add_soft([-var], weight, label=name)

    if not event_vars:
        raise AnalysisError(f"fault tree {tree.name!r} has no events reachable from the top")

    return MPMCSEncoding(
        instance=instance,
        event_vars=event_vars,
        var_events={var: name for name, var in event_vars.items()},
        weights=weights,
        structure=structure,
        success=success if success is not None else structure,
        num_aux_vars=encoding_result.num_aux_vars,
    )
