"""Encoding of the MPMCS problem as Weighted Partial MaxSAT (paper Steps 1–4).

Given a fault tree, the encoder produces a :class:`~repro.maxsat.instance.WPMaxSATInstance`
whose optimal solutions are exactly the Maximum Probability Minimal Cut Sets:

* **Hard clauses** — the Tseitin CNF of the structure function ``f(t)`` with
  the root asserted, i.e. "the top event occurs".
* **Soft clauses** — one unit clause ``(¬x_i)`` per basic event with weight
  ``w_i = -log(p(x_i))``: falsifying it (making the event part of the cut set)
  costs ``w_i``.

Equivalence with the paper's presentation
-----------------------------------------
The paper phrases the encoding over the *success tree* variables
``y_i = ¬x_i``:  soft clauses ``(y_i)`` are added and the hard part is
``¬Y(t)``.  Substituting ``y_i = ¬x_i`` turns each soft clause ``(y_i)`` into
``(¬x_i)`` and turns ``¬Y(t)`` into ``f(t)``, i.e. exactly the encoding built
here; the two formulations are literally isomorphic (a variable renaming).  We
work directly over the event variables ``x_i`` so that solver models can be
read back without an extra renaming step.  Because all gates are monotone and
all weights are positive, an optimal solution never sets an unnecessary event
to true, hence the extracted set is an inclusion-minimal cut set — the MPMCS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.weights import log_weight
from repro.exceptions import AnalysisError, FaultTreeError
from repro.fta.formula import structure_function, success_function
from repro.fta.gates import Gate, GateType
from repro.fta.tree import FaultTree
from repro.logic.cnf import CNF
from repro.logic.formula import AtLeast, Formula, Var, conjoin, disjoin
from repro.logic.tseitin import CNFFragment, TseitinResult, encode_fragment, tseitin_encode
from repro.maxsat.instance import DEFAULT_PRECISION, WPMaxSATInstance

__all__ = [
    "MPMCSEncoding",
    "assemble_structure_cnf",
    "encode_mpmcs",
    "gate_fragment",
]


def _slot(index: int) -> str:
    """Synthetic interface name of the ``index``-th child slot of a gate."""
    return f"@{index}"


def gate_fragment(gate: Gate) -> CNFFragment:
    """Relocatable CNF fragment of one gate over anonymous child slots.

    The fragment treats each child *occurrence* as an opaque input (slot
    ``@0``, ``@1``, …) so it contains no node names and is reusable by any
    gate whose subtree shares the structure-only hash — all supported gate
    types are symmetric in their children, so slot order never matters, and
    occurrences of logically equivalent children are interchangeable.
    """
    slots = [Var(_slot(index)) for index in range(len(gate.children))]
    if gate.gate_type is GateType.AND:
        formula: Formula = conjoin(slots)
    elif gate.gate_type is GateType.OR:
        formula = disjoin(slots)
    elif gate.gate_type is GateType.VOTING:
        formula = AtLeast(gate.k or 1, slots)
    else:  # pragma: no cover - defensive
        raise FaultTreeError(f"unsupported gate type {gate.gate_type!r}")
    return encode_fragment(formula, [_slot(index) for index in range(len(gate.children))])


def assemble_structure_cnf(tree: FaultTree, cache: Optional[Any] = None) -> TseitinResult:
    """CNF of ``tree``'s structure function stitched from per-gate fragments.

    Equisatisfiable (over the event variables) with the monolithic
    ``tseitin_encode(structure_function(tree))``, but built gate by gate from
    :class:`~repro.logic.tseitin.CNFFragment` objects.  When ``cache`` (an
    :class:`~repro.api.cache.ArtifactCache`, duck-typed to avoid the layering
    cycle) is given, each gate's fragment is memoised under the structure-only
    hash of its subtree — kind ``subtree-cnf`` — so across the scenarios of a
    sweep only the gates whose subtree actually changed are re-encoded, and a
    probability-only scenario re-encodes nothing at all.

    The root literal is asserted, exactly like ``tseitin_encode`` with
    ``assert_root=True``.
    """
    tree.validate()
    cnf = CNF()
    aux_vars: List[int] = []

    def new_aux() -> int:
        var = cnf.new_var()
        aux_vars.append(var)
        return var

    gates = tree.gates
    literals: Dict[str, int] = {}
    for name in tree.topological_order():
        gate = gates.get(name)
        if gate is None:
            literals[name] = cnf.var_for(name)
            continue
        if cache is None:
            fragment = gate_fragment(gate)
        else:
            # Imported lazily: repro.api imports this module at package-init
            # time, so a top-level import here would be circular.
            from repro.api.cache import ARTIFACT_SUBTREE_CNF

            fragment = cache.get_or_compute_subtree(
                tree, name, ARTIFACT_SUBTREE_CNF, lambda g=gate: gate_fragment(g)
            )
        inputs = {
            _slot(index): literals[child] for index, child in enumerate(gate.children)
        }
        literals[name] = fragment.instantiate(
            inputs, new_var=new_aux, add_clause=cnf.add_clause
        )
    root = literals[tree.top_event]
    cnf.add_clause([root])
    return TseitinResult(
        cnf=cnf,
        root_literal=root,
        var_map=dict(cnf.name_to_var),
        aux_vars=tuple(aux_vars),
    )


@dataclass
class MPMCSEncoding:
    """The Weighted Partial MaxSAT encoding of an MPMCS problem.

    Attributes
    ----------
    instance:
        The encoded MaxSAT instance (hard Tseitin clauses + soft event clauses).
    event_vars:
        Mapping from basic event name to its CNF variable.
    var_events:
        Inverse of ``event_vars``.
    weights:
        The ``-log`` weight of each basic event (paper Step 3 / Table I).
    structure:
        The structure function ``f(t)`` that was encoded.
    success:
        The success-tree formula ``¬f(t)`` (kept for reporting and analyses).
    num_aux_vars:
        Number of auxiliary Tseitin variables introduced in Step 2.
    """

    instance: WPMaxSATInstance
    event_vars: Dict[str, int]
    var_events: Dict[int, str]
    weights: Dict[str, float]
    structure: Formula
    success: Formula
    num_aux_vars: int

    def cut_set_from_model(self, model: Dict[int, bool]) -> Tuple[str, ...]:
        """Extract the cut set (events set to true) from a MaxSAT model."""
        members = [
            name for name, var in self.event_vars.items() if model.get(var, False)
        ]
        return tuple(sorted(members))


def encode_mpmcs(
    tree: FaultTree,
    *,
    precision: int = DEFAULT_PRECISION,
    include_success: bool = True,
    cache: Optional[Any] = None,
) -> MPMCSEncoding:
    """Encode the MPMCS problem of ``tree`` as Weighted Partial MaxSAT.

    Parameters
    ----------
    tree:
        The fault tree to analyse.  It is validated first.
    precision:
        Integer scaling precision for the float weights (see
        :class:`~repro.maxsat.instance.WPMaxSATInstance`).
    include_success:
        Whether to also materialise the success-tree formula (used by reports);
        disable for the largest benchmark instances to save a little time.
    cache:
        Optional artifact cache (duck-typed
        :class:`~repro.api.cache.ArtifactCache`).  When given, the hard CNF is
        assembled from per-gate fragments memoised under structure-only
        subtree hashes (:func:`assemble_structure_cnf`) instead of re-running
        the monolithic Tseitin transformation, so repeated encodings of
        structurally overlapping trees — the scenarios of a sweep — share the
        encoding work.
    """
    tree.validate()
    structure = structure_function(tree)
    success = success_function(tree) if include_success else None

    if cache is None:
        encoding_result = tseitin_encode(structure, assert_root=True)
    else:
        encoding_result = assemble_structure_cnf(tree, cache)
    cnf = encoding_result.cnf

    instance = WPMaxSATInstance(precision=precision)
    instance.add_hard_cnf(cnf)

    event_vars: Dict[str, int] = {}
    weights: Dict[str, float] = {}
    reachable_events = set(tree.events_reachable_from_top())
    for name, event in tree.events.items():
        if name not in reachable_events:
            continue
        var = cnf.name_to_var.get(name)
        if var is None:
            raise AnalysisError(
                f"basic event {name!r} does not appear in the encoded structure function"
            )
        weight = log_weight(event.probability)
        event_vars[name] = var
        weights[name] = weight
        instance.add_soft([-var], weight, label=name)

    if not event_vars:
        raise AnalysisError(f"fault tree {tree.name!r} has no events reachable from the top")

    return MPMCSEncoding(
        instance=instance,
        event_vars=event_vars,
        var_events={var: name for name, var in event_vars.items()},
        weights=weights,
        structure=structure,
        success=success if success is not None else structure,
        num_aux_vars=encoding_result.num_aux_vars,
    )
