"""Log-space probability transformation (paper Steps 3 and 6).

To maximise the *product* of probabilities with a MaxSAT solver that minimises
a *sum* of weights, each probability ``p(x_i)`` is transformed into the weight
``w_i = -log(p(x_i))`` (Step 3, Table I of the paper).  Minimising the sum of
selected weights is then equivalent to maximising the joint probability, which
is recovered with ``P = exp(-sum(w_i))`` (Step 6).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from repro.exceptions import ProbabilityError

__all__ = [
    "MIN_WEIGHT",
    "log_weight",
    "log_weights",
    "probability_from_cost",
    "probability_of_cut_set",
    "weight_of_cut_set",
]

#: Weight assigned to probability-1 events.  ``-log(1) = 0`` but MaxSAT soft
#: clauses require strictly positive weights, so certain events receive this
#: negligible weight instead (far below any realistic probability resolution).
MIN_WEIGHT = 1e-12


def log_weight(probability: float) -> float:
    """Return ``-log(p)``, clamped to :data:`MIN_WEIGHT` for ``p == 1``."""
    if not isinstance(probability, (int, float)) or isinstance(probability, bool):
        raise ProbabilityError(f"probability must be a number, got {type(probability).__name__}")
    if not math.isfinite(probability) or not 0.0 < probability <= 1.0:
        raise ProbabilityError(f"probability must lie in (0, 1], got {probability}")
    return max(-math.log(probability), MIN_WEIGHT)


def log_weights(probabilities: Mapping[str, float]) -> Dict[str, float]:
    """Transform a mapping of event probabilities into ``-log`` weights.

    This reproduces Table I of the paper when applied to the fire-protection
    example's probabilities.
    """
    return {name: log_weight(p) for name, p in probabilities.items()}


def probability_from_cost(cost: float) -> float:
    """Reverse log-space transformation: ``P = exp(-cost)`` (paper Step 6)."""
    if cost < 0:
        raise ProbabilityError(f"cost must be non-negative, got {cost}")
    return math.exp(-cost)


def probability_of_cut_set(cut_set: Iterable[str], probabilities: Mapping[str, float]) -> float:
    """Joint probability of a cut set assuming independent basic events.

    The product multiplies in *sorted* event order: float multiplication is
    order-sensitive in the last ulp, and set iteration order varies with the
    per-process hash seed, so the canonical order is what makes probabilities
    bit-identical across processes — which the parallel sweep service relies
    on when asserting worker results equal to a sequential run.
    """
    product = 1.0
    for name in sorted(cut_set):
        try:
            probability = probabilities[name]
        except KeyError as exc:
            raise ProbabilityError(f"no probability known for event {name!r}") from exc
        if not 0.0 < probability <= 1.0:
            raise ProbabilityError(f"probability of {name!r} must lie in (0, 1]")
        product *= probability
    return product


def weight_of_cut_set(cut_set: Iterable[str], probabilities: Mapping[str, float]) -> float:
    """Total ``-log`` weight of a cut set (the MaxSAT objective value).

    Summed in sorted event order for cross-process bit-reproducibility (see
    :func:`probability_of_cut_set`).
    """
    return sum(log_weight(probabilities[name]) for name in sorted(cut_set))
