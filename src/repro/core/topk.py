"""Top-k enumeration of minimal cut sets by decreasing probability.

The paper computes the single Maximum Probability Minimal Cut Set; a natural
extension (useful for risk ranking and implemented by several FTA tools) is to
enumerate the k most probable minimal cut sets.  We obtain them by repeatedly
solving the MPMCS MaxSAT instance and *blocking* each solution ``S`` with the
hard clause ``(¬x_1 ∨ ... ∨ ¬x_m)`` over the members of ``S``: the clause
forbids ``S`` and every superset of it, so each subsequent optimum is again an
inclusion-minimal cut set — the next most probable one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.encoder import encode_mpmcs
from repro.core.pipeline import MPMCSResult, MPMCSSolver
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.maxsat.instance import DEFAULT_PRECISION

__all__ = ["RankedCutSet", "enumerate_mpmcs"]


@dataclass(frozen=True)
class RankedCutSet:
    """A minimal cut set together with its probability and rank (1 = MPMCS)."""

    rank: int
    events: Tuple[str, ...]
    probability: float
    cost: float

    @property
    def size(self) -> int:
        return len(self.events)


def enumerate_mpmcs(
    tree: FaultTree,
    k: int,
    *,
    solver: Optional[MPMCSSolver] = None,
    precision: int = DEFAULT_PRECISION,
) -> List[RankedCutSet]:
    """Return up to ``k`` minimal cut sets in decreasing probability order.

    Parameters
    ----------
    tree:
        The fault tree to analyse.
    k:
        Maximum number of cut sets to return.  Fewer are returned when the
        tree has fewer than ``k`` minimal cut sets.
    solver:
        Optional pre-configured :class:`MPMCSSolver`; a default one is built
        otherwise.  Verification stays enabled regardless, since the blocking
        construction relies on each returned set being a minimal cut set.
    precision:
        Weight scaling precision for the underlying MaxSAT instances.
    """
    if k <= 0:
        raise AnalysisError(f"k must be a positive integer, got {k}")
    pipeline = solver if solver is not None else MPMCSSolver(precision=precision)

    results: List[RankedCutSet] = []
    blocked: List[Tuple[str, ...]] = []

    for rank in range(1, k + 1):
        encoding = encode_mpmcs(tree, precision=precision)
        for cut_set in blocked:
            blocking_clause = [-encoding.event_vars[name] for name in cut_set]
            encoding.instance.add_hard(blocking_clause)
        try:
            result: MPMCSResult = pipeline.solve_encoding(tree, encoding)
        except AnalysisError as exc:
            if "no cut set" in str(exc):
                break  # all minimal cut sets enumerated
            raise
        results.append(
            RankedCutSet(
                rank=rank,
                events=result.events,
                probability=result.probability,
                cost=result.cost,
            )
        )
        blocked.append(result.events)

    return results
