"""The six-step MPMCS resolution pipeline (paper Section III).

:class:`MPMCSSolver` wires together the fault-tree formula transformation, the
Tseitin CNF conversion, the log-space weight transformation, the Weighted
Partial MaxSAT encoding, the parallel portfolio resolution and the reverse
log-space transformation, and returns an :class:`MPMCSResult` describing the
Maximum Probability Minimal Cut Set of a fault tree.

Example
-------
.. code-block:: python

    from repro.workloads.library import fire_protection_system
    from repro.core import MPMCSSolver

    tree = fire_protection_system()
    result = MPMCSSolver().solve(tree)
    assert result.events == ("x1", "x2")
    assert abs(result.probability - 0.02) < 1e-9
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.encoder import MPMCSEncoding, encode_mpmcs
from repro.core.weights import probability_from_cost, probability_of_cut_set
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import DEFAULT_PRECISION
from repro.maxsat.portfolio import PortfolioReport, PortfolioSolver
from repro.maxsat.result import MaxSATResult, MaxSATStatus

__all__ = ["MPMCSResult", "MPMCSSolver", "find_mpmcs"]


@dataclass
class MPMCSResult:
    """Outcome of an MPMCS analysis.

    Attributes
    ----------
    tree_name:
        Name of the analysed fault tree.
    events:
        The Maximum Probability Minimal Cut Set, sorted by event name.
    probability:
        Joint probability of the cut set (product of event probabilities,
        independence assumed — the paper's ``PF(t)``).
    cost:
        The MaxSAT objective value, i.e. the total ``-log`` weight of the cut
        set's events.
    weights:
        Per-event ``-log`` weights of the cut-set members (Table I values for
        the events in the solution).
    engine:
        Name of the MaxSAT engine that produced the winning solution.
    solve_time:
        Wall-clock seconds spent in the MaxSAT resolution step (Step 5).
    total_time:
        Wall-clock seconds of the whole pipeline (Steps 1–6).
    num_vars / num_hard / num_soft / num_aux_vars:
        Size of the encoded MaxSAT instance, reported for the scalability
        benchmarks.
    portfolio:
        The full per-engine report when the parallel portfolio was used.
    """

    tree_name: str
    events: Tuple[str, ...]
    probability: float
    cost: float
    weights: Dict[str, float] = field(default_factory=dict)
    engine: str = ""
    solve_time: float = 0.0
    total_time: float = 0.0
    num_vars: int = 0
    num_hard: int = 0
    num_soft: int = 0
    num_aux_vars: int = 0
    portfolio: Optional[PortfolioReport] = None

    @property
    def size(self) -> int:
        """Number of events in the cut set."""
        return len(self.events)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dictionary form used by the JSON report and the CLI."""
        return {
            "tree": self.tree_name,
            "mpmcs": list(self.events),
            "probability": self.probability,
            "cost": self.cost,
            "weights": dict(self.weights),
            "engine": self.engine,
            "solve_time_s": self.solve_time,
            "total_time_s": self.total_time,
            "instance": {
                "variables": self.num_vars,
                "hard_clauses": self.num_hard,
                "soft_clauses": self.num_soft,
                "auxiliary_variables": self.num_aux_vars,
            },
        }


class MPMCSSolver:
    """Compute Maximum Probability Minimal Cut Sets with MaxSAT.

    Parameters
    ----------
    engines:
        MaxSAT engine configurations for the portfolio (Step 5).  ``None``
        selects the default heterogeneous line-up.
    mode:
        Portfolio execution mode: ``"thread"`` (default), ``"process"`` or
        ``"sequential"``.
    single_engine:
        When given, the portfolio is bypassed and this engine is used alone —
        the configuration exercised by the portfolio ablation benchmark.
    precision:
        Integer scaling applied to the ``-log`` probability weights.
    verify:
        When true (default), the returned cut set is checked to be a minimal
        cut set of the fault tree before the result is returned; an
        :class:`AnalysisError` is raised otherwise.  The check is linear in
        the cut-set size and catches encoding or solver regressions early.
    """

    def __init__(
        self,
        *,
        engines: Optional[Sequence[MaxSATEngine]] = None,
        mode: str = "thread",
        single_engine: Optional[MaxSATEngine] = None,
        precision: int = DEFAULT_PRECISION,
        verify: bool = True,
    ) -> None:
        self.precision = precision
        self.verify = verify
        self.single_engine = single_engine
        self.portfolio = None if single_engine is not None else PortfolioSolver(engines, mode=mode)

    # -- public API ----------------------------------------------------------------

    def solve(self, tree: FaultTree) -> MPMCSResult:
        """Run the full six-step pipeline on ``tree``."""
        start = time.perf_counter()

        # Steps 1-4: logical transformation, CNF conversion, log-space weights,
        # WPMaxSAT instance.
        encoding = encode_mpmcs(tree, precision=self.precision)

        # Step 5: (parallel) MaxSAT resolution.
        report: Optional[PortfolioReport] = None
        if self.single_engine is not None:
            maxsat_result = self.single_engine.solve(encoding.instance)
        else:
            assert self.portfolio is not None
            report = self.portfolio.solve_with_report(encoding.instance)
            maxsat_result = report.result

        result = self._assemble_result(tree, encoding, maxsat_result, report, start)
        return result

    def solve_encoding(
        self, tree: FaultTree, encoding: MPMCSEncoding
    ) -> MPMCSResult:
        """Solve an already-built encoding (used by the top-k enumerator)."""
        start = time.perf_counter()
        report: Optional[PortfolioReport] = None
        if self.single_engine is not None:
            maxsat_result = self.single_engine.solve(encoding.instance)
        else:
            assert self.portfolio is not None
            report = self.portfolio.solve_with_report(encoding.instance)
            maxsat_result = report.result
        return self._assemble_result(tree, encoding, maxsat_result, report, start)

    # -- internals --------------------------------------------------------------------

    def _assemble_result(
        self,
        tree: FaultTree,
        encoding: MPMCSEncoding,
        maxsat_result: MaxSATResult,
        report: Optional[PortfolioReport],
        start: float,
    ) -> MPMCSResult:
        if maxsat_result.status is MaxSATStatus.UNSATISFIABLE:
            raise AnalysisError(
                f"fault tree {tree.name!r} has no cut set: the top event cannot occur"
            )
        if maxsat_result.status is not MaxSATStatus.OPTIMUM or maxsat_result.model is None:
            raise AnalysisError(
                f"MaxSAT resolution did not reach an optimum for fault tree {tree.name!r} "
                f"(status: {maxsat_result.status.value})"
            )

        # Step 6: reverse log-space transformation.
        cut_set = encoding.cut_set_from_model(maxsat_result.model)
        if self.verify and not tree.is_minimal_cut_set(cut_set):
            raise AnalysisError(
                f"internal error: extracted set {cut_set} is not a minimal cut set of "
                f"{tree.name!r}; please report this as a bug"
            )

        probabilities = tree.probabilities()
        probability = probability_of_cut_set(cut_set, probabilities)
        cost = sum(encoding.weights[name] for name in cut_set)
        # `probability_from_cost(cost)` equals `probability` up to float rounding;
        # the exact product is reported, the identity is covered by tests.
        _ = probability_from_cost

        return MPMCSResult(
            tree_name=tree.name,
            events=cut_set,
            probability=probability,
            cost=cost,
            weights={name: encoding.weights[name] for name in cut_set},
            engine=maxsat_result.engine,
            solve_time=maxsat_result.solve_time,
            total_time=time.perf_counter() - start,
            num_vars=encoding.instance.num_vars,
            num_hard=encoding.instance.num_hard,
            num_soft=encoding.instance.num_soft,
            num_aux_vars=encoding.num_aux_vars,
            portfolio=report,
        )


def find_mpmcs(tree: FaultTree, **kwargs: object) -> MPMCSResult:
    """Convenience wrapper: ``MPMCSSolver(**kwargs).solve(tree)``."""
    return MPMCSSolver(**kwargs).solve(tree)  # type: ignore[arg-type]
