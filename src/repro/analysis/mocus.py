"""MOCUS — the classical top-down minimal cut set algorithm.

MOCUS (Method of Obtaining CUt Sets, Fussell & Vesely 1972) expands the top
event downwards: an AND gate replaces itself by *all* of its children inside a
candidate set, an OR gate *splits* the candidate into one copy per child, and
a k-of-n voting gate splits into one copy per k-subset of children.  When only
basic events remain, subsumption removes non-minimal candidates.

MOCUS is the baseline most FTA tools historically used for qualitative
analysis; the benchmark E6 compares it against the MaxSAT pipeline (which
avoids enumerating all cut sets when only the most probable one is needed).
The worst-case number of intermediate candidates is exponential, so
:func:`mocus_minimal_cut_sets` takes a safety limit.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cutsets import CutSetCollection, minimise_cut_sets
from repro.exceptions import AnalysisError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["mocus_minimal_cut_sets", "mocus_mpmcs"]

#: Default cap on the number of intermediate candidate sets.
DEFAULT_MAX_CANDIDATES = 200_000


def mocus_minimal_cut_sets(
    tree: FaultTree,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> CutSetCollection:
    """Compute all minimal cut sets of ``tree`` with the MOCUS algorithm.

    Parameters
    ----------
    tree:
        The fault tree to analyse (validated first).
    max_candidates:
        Abort with :class:`AnalysisError` when the number of intermediate
        candidate sets exceeds this bound — MOCUS enumerates *all* cut sets,
        which is exponential for some structures (this very blow-up motivates
        the paper's direct MaxSAT optimisation).
    """
    tree.validate()

    # Each candidate is a frozenset of node names still to be resolved.
    candidates: Set[FrozenSet[str]] = {frozenset({tree.top_event})}
    finished: Set[FrozenSet[str]] = set()

    while candidates:
        if len(candidates) + len(finished) > max_candidates:
            raise AnalysisError(
                f"MOCUS exceeded the candidate limit of {max_candidates} sets on "
                f"fault tree {tree.name!r}"
            )
        candidate = candidates.pop()
        gate_name = _first_gate(tree, candidate)
        if gate_name is None:
            finished.add(candidate)
            continue
        remainder = candidate - {gate_name}
        gate = tree.gates[gate_name]
        if gate.gate_type is GateType.AND:
            candidates.add(remainder | set(gate.children))
        elif gate.gate_type is GateType.OR:
            for child in gate.children:
                candidates.add(remainder | {child})
        elif gate.gate_type is GateType.VOTING:
            for combo in combinations(gate.children, gate.k or 1):
                candidates.add(remainder | set(combo))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unsupported gate type {gate.gate_type!r}")

    minimal = minimise_cut_sets(finished)
    return CutSetCollection(cut_sets=minimal, probabilities=tree.probabilities())


def mocus_mpmcs(
    tree: FaultTree,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> Tuple[Tuple[str, ...], float]:
    """MPMCS obtained the classical way: enumerate all MCSs, then rank them.

    This is the baseline strategy the paper's MaxSAT formulation replaces —
    useful both for validation and for the E6 comparison benchmark.
    """
    collection = mocus_minimal_cut_sets(tree, max_candidates=max_candidates)
    if not len(collection):
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set")
    cut_set, probability = collection.most_probable()
    return tuple(sorted(cut_set)), probability


def _first_gate(tree: FaultTree, candidate: FrozenSet[str]) -> Optional[str]:
    """Return a gate name contained in ``candidate`` (or None if only events)."""
    for name in candidate:
        if tree.is_gate(name):
            return name
    return None
