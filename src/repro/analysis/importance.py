"""Component importance measures.

The paper motivates MPMCS as a measure supporting "decision making, risk
assessment and fault prioritisation".  Classical FTA answers the same need
with per-event *importance measures*; implementing them makes the library a
complete FTA toolkit and gives the examples a richer story.  All measures are
computed exactly from the tree's structure function via the BDD-free
evaluation of conditional probabilities (two evaluations per event).

Implemented measures (for basic event ``e`` with probability ``p_e``):

* **Birnbaum** ``I_B(e) = P(top | e occurs) - P(top | e does not occur)``;
* **Criticality** ``I_C(e) = I_B(e) * p_e / P(top)``;
* **Fussell–Vesely** ``I_FV(e)`` — fraction of the top probability contributed
  by cut sets containing ``e`` (computed with the min-cut upper bound);
* **Risk Achievement Worth** ``RAW(e) = P(top | e occurs) / P(top)``;
* **Risk Reduction Worth** ``RRW(e) = P(top) / P(top | e does not occur)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.analysis.cutsets import CutSetCollection
from repro.analysis.topevent import birnbaum_bound
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = ["ImportanceMeasures", "importance_measures"]


@dataclass(frozen=True)
class ImportanceMeasures:
    """Importance measures of one basic event."""

    event: str
    probability: float
    birnbaum: float
    criticality: float
    fussell_vesely: float
    risk_achievement_worth: float
    risk_reduction_worth: float


def importance_measures(
    tree: FaultTree,
    cut_sets: CutSetCollection,
    *,
    events: Optional[Iterable[str]] = None,
) -> Dict[str, ImportanceMeasures]:
    """Compute importance measures for ``events`` (default: every basic event).

    ``cut_sets`` must be the minimal cut sets of ``tree`` (from MOCUS, BDD or
    brute force); the top-event probability and the conditional probabilities
    are evaluated with the min-cut upper bound, which is the standard choice in
    FTA tools and exact for trees without repeated events across cut sets.
    """
    tree.validate()
    probabilities = tree.probabilities()
    selected = list(events) if events is not None else sorted(tree.events)
    for name in selected:
        if not tree.is_event(name):
            raise AnalysisError(f"unknown basic event {name!r}")

    mcs_list = list(cut_sets)
    if not mcs_list:
        raise AnalysisError("importance measures need at least one minimal cut set")

    p_top = birnbaum_bound(mcs_list, probabilities)
    results: Dict[str, ImportanceMeasures] = {}

    for name in selected:
        p_event = probabilities[name]

        with_event = dict(probabilities)
        with_event[name] = 1.0
        p_top_with = birnbaum_bound(mcs_list, with_event)

        # Probability 0 is not representable as a BasicEvent, but the bound
        # formula accepts it: cut sets containing the event contribute nothing.
        p_top_without = _bound_with_zero_event(mcs_list, probabilities, name)

        birnbaum = p_top_with - p_top_without
        criticality = birnbaum * p_event / p_top if p_top > 0 else 0.0

        containing = [cs for cs in mcs_list if name in cs]
        fussell_vesely = (
            birnbaum_bound(containing, probabilities) / p_top if containing and p_top > 0 else 0.0
        )

        raw = p_top_with / p_top if p_top > 0 else math.inf
        rrw = p_top / p_top_without if p_top_without > 0 else math.inf

        results[name] = ImportanceMeasures(
            event=name,
            probability=p_event,
            birnbaum=birnbaum,
            criticality=criticality,
            fussell_vesely=fussell_vesely,
            risk_achievement_worth=raw,
            risk_reduction_worth=rrw,
        )
    return results


def _bound_with_zero_event(
    cut_sets: List,
    probabilities: Mapping[str, float],
    zero_event: str,
) -> float:
    """Min-cut upper bound with one event's probability forced to zero."""
    product = 1.0
    for cs in cut_sets:
        if zero_event in cs:
            continue  # this cut set can no longer occur
        cs_probability = 1.0
        for member in cs:
            cs_probability *= probabilities[member]
        product *= 1.0 - cs_probability
    return 1.0 - product
