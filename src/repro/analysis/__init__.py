"""Classical fault-tree analyses used as baselines and complements.

The paper positions MPMCS at the intersection of qualitative analysis
(minimal cut sets) and quantitative analysis (probabilities) and mentions
MOCUS/BDD-style techniques as the classical alternatives.  This package
implements those baselines so that the benchmark harness can compare them with
the MaxSAT pipeline and so the test suite has independent oracles:

* :mod:`repro.analysis.cutsets`    — cut-set algebra (minimisation, subsumption).
* :mod:`repro.analysis.bruteforce` — exhaustive MCS enumeration and MPMCS search.
* :mod:`repro.analysis.mocus`      — the MOCUS top-down MCS enumeration algorithm.
* :mod:`repro.analysis.topevent`   — top-event probability (exact and bounds).
* :mod:`repro.analysis.importance` — Birnbaum / Fussell–Vesely / RAW / RRW measures.
* :mod:`repro.analysis.spof`       — single points of failure.
* :mod:`repro.analysis.montecarlo` — Monte Carlo estimation of the top-event probability.
* :mod:`repro.analysis.sensitivity` — MPMCS stability under probability uncertainty
  and tornado (one-at-a-time) sensitivity of the top-event probability.
* :mod:`repro.analysis.modules`    — independent module (sub-tree) detection.
* :mod:`repro.analysis.truncation` — probability-truncated cut-set enumeration.
* :mod:`repro.analysis.contributions` — cut-set contribution / MPMCS dominance analysis.
"""

from repro.analysis.contributions import (
    CutSetContribution,
    cut_set_contributions,
    cut_sets_covering,
    mpmcs_dominance,
)
from repro.analysis.cutsets import CutSetCollection, minimise_cut_sets
from repro.analysis.modules import Module, find_modules, modularisation_report
from repro.analysis.truncation import (
    TruncationResult,
    truncated_cut_sets,
    truncated_top_event_probability,
)
from repro.analysis.bruteforce import (
    brute_force_minimal_cut_sets,
    brute_force_mpmcs,
)
from repro.analysis.mocus import mocus_minimal_cut_sets, mocus_mpmcs
from repro.analysis.topevent import (
    birnbaum_bound,
    exact_top_event_probability,
    rare_event_approximation,
    top_event_probability_from_cut_sets,
)
from repro.analysis.importance import ImportanceMeasures, importance_measures
from repro.analysis.spof import single_points_of_failure
from repro.analysis.montecarlo import MonteCarloEstimate, estimate_top_event_probability
from repro.analysis.sensitivity import (
    MPMCSStabilityReport,
    TornadoEntry,
    mpmcs_stability,
    tornado_analysis,
)
from repro.analysis.pathsets import dual_tree, minimal_path_sets, most_probable_path_set

__all__ = [
    "CutSetCollection",
    "CutSetContribution",
    "ImportanceMeasures",
    "MPMCSStabilityReport",
    "Module",
    "MonteCarloEstimate",
    "TornadoEntry",
    "TruncationResult",
    "cut_set_contributions",
    "cut_sets_covering",
    "find_modules",
    "modularisation_report",
    "mpmcs_dominance",
    "truncated_cut_sets",
    "truncated_top_event_probability",
    "dual_tree",
    "estimate_top_event_probability",
    "minimal_path_sets",
    "most_probable_path_set",
    "mpmcs_stability",
    "tornado_analysis",
    "birnbaum_bound",
    "brute_force_minimal_cut_sets",
    "brute_force_mpmcs",
    "exact_top_event_probability",
    "importance_measures",
    "minimise_cut_sets",
    "mocus_minimal_cut_sets",
    "mocus_mpmcs",
    "rare_event_approximation",
    "single_points_of_failure",
    "top_event_probability_from_cut_sets",
]
