"""Top-event probability computation.

Quantitative FTA asks for the probability that the top event occurs given the
basic-event probabilities.  Three classical estimators are implemented, all
operating on a set of minimal cut sets (from MOCUS, the BDD engine or brute
force):

* :func:`exact_top_event_probability` — inclusion–exclusion over the cut sets
  (exact, exponential in the number of cut sets; a limit guards against
  blow-up);
* :func:`rare_event_approximation` — the first-order upper bound
  ``sum of cut-set probabilities``;
* :func:`birnbaum_bound` (min-cut upper bound) — ``1 - prod(1 - P(MCS_i))``,
  exact when cut sets are disjoint and an upper bound otherwise.

For an exact answer on large models prefer the BDD engine
(:func:`repro.bdd.probability.top_event_probability`), which is exact without
enumerating cut sets at all.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Mapping, Sequence

from repro.core.weights import probability_of_cut_set
from repro.exceptions import AnalysisError

__all__ = [
    "exact_top_event_probability",
    "rare_event_approximation",
    "birnbaum_bound",
    "top_event_probability_from_cut_sets",
]


def _normalise(cut_sets: Iterable[Iterable[str]]) -> List[FrozenSet[str]]:
    normalised = [frozenset(cs) for cs in cut_sets]
    if not normalised:
        raise AnalysisError("cannot compute a top-event probability from zero cut sets")
    return normalised


def exact_top_event_probability(
    cut_sets: Iterable[Iterable[str]],
    probabilities: Mapping[str, float],
    *,
    max_cut_sets: int = 20,
) -> float:
    """Exact top-event probability via inclusion–exclusion over minimal cut sets.

    ``P(top) = sum_k (-1)^(k+1) * sum_{|S|=k} P(union of events in S)`` where
    ``S`` ranges over k-subsets of the cut sets and the inner probability is
    the product over the union of the events (independence assumed).
    """
    sets = _normalise(cut_sets)
    if len(sets) > max_cut_sets:
        raise AnalysisError(
            f"inclusion-exclusion over {len(sets)} cut sets needs 2^{len(sets)} terms; "
            f"limit is {max_cut_sets} (use the BDD engine for an exact result instead)"
        )
    total = 0.0
    for k in range(1, len(sets) + 1):
        sign = 1.0 if k % 2 == 1 else -1.0
        for combo in combinations(sets, k):
            union: FrozenSet[str] = frozenset().union(*combo)
            total += sign * probability_of_cut_set(union, probabilities)
    return min(max(total, 0.0), 1.0)


def rare_event_approximation(
    cut_sets: Iterable[Iterable[str]], probabilities: Mapping[str, float]
) -> float:
    """First-order (rare-event) approximation: the sum of cut-set probabilities.

    Always an upper bound; accurate when every cut-set probability is small.
    """
    sets = _normalise(cut_sets)
    return sum(probability_of_cut_set(cs, probabilities) for cs in sets)


def birnbaum_bound(
    cut_sets: Iterable[Iterable[str]], probabilities: Mapping[str, float]
) -> float:
    """Min-cut upper bound ``1 - prod_i (1 - P(MCS_i))``.

    Exact when the minimal cut sets share no events; otherwise an upper bound
    that is tighter than the rare-event approximation.
    """
    sets = _normalise(cut_sets)
    product = 1.0
    for cs in sets:
        product *= 1.0 - probability_of_cut_set(cs, probabilities)
    return 1.0 - product


def top_event_probability_from_cut_sets(
    cut_sets: Iterable[Iterable[str]],
    probabilities: Mapping[str, float],
    *,
    method: str = "auto",
    max_exact_cut_sets: int = 20,
) -> float:
    """Top-event probability with method selection.

    ``method`` is one of ``"exact"``, ``"rare-event"``, ``"min-cut-upper-bound"``
    or ``"auto"`` (exact when the number of cut sets permits, min-cut upper
    bound otherwise).
    """
    sets = _normalise(cut_sets)
    if method == "exact":
        return exact_top_event_probability(sets, probabilities, max_cut_sets=max_exact_cut_sets)
    if method == "rare-event":
        return rare_event_approximation(sets, probabilities)
    if method == "min-cut-upper-bound":
        return birnbaum_bound(sets, probabilities)
    if method == "auto":
        if len(sets) <= max_exact_cut_sets:
            return exact_top_event_probability(
                sets, probabilities, max_cut_sets=max_exact_cut_sets
            )
        return birnbaum_bound(sets, probabilities)
    raise AnalysisError(
        f"unknown method {method!r}; expected 'exact', 'rare-event', "
        "'min-cut-upper-bound' or 'auto'"
    )
