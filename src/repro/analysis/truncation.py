"""Probability-truncated minimal cut set enumeration.

Industrial PRA models have far too many minimal cut sets to enumerate, so
tools enumerate only those above a probability *cutoff* and bound the error of
everything discarded.  The enumeration below is a MOCUS-style top-down
expansion with safe pruning: since every probability is at most 1, the product
of the basic events already present in a candidate is an upper bound on the
probability of every cut set the candidate can still produce, so candidates
below the cutoff can be discarded without losing any retained cut set.

The MPMCS itself is never truncated as long as the cutoff is below its
probability — which gives a cheap cross-check of the MaxSAT pipeline on trees
whose full cut-set enumeration would blow up.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cutsets import CutSetCollection, minimise_cut_sets
from repro.analysis.topevent import top_event_probability_from_cut_sets
from repro.exceptions import AnalysisError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["TruncationResult", "truncated_cut_sets", "truncated_top_event_probability"]

#: Default cap on simultaneously live candidates (safety valve, like MOCUS).
DEFAULT_MAX_CANDIDATES = 500_000


@dataclass
class TruncationResult:
    """Outcome of a truncated cut-set enumeration.

    Attributes
    ----------
    collection:
        The retained minimal cut sets (all with probability at or above the
        cutoff), with probabilities attached.
    cutoff:
        The probability cutoff used.
    num_retained:
        Number of retained minimal cut sets.
    num_pruned:
        Number of candidate sets discarded by the cutoff during the expansion
        (an indicator of how much work the truncation saved, *not* a count of
        discarded minimal cut sets).
    """

    collection: CutSetCollection
    cutoff: float
    num_retained: int
    num_pruned: int

    def most_probable(self) -> Tuple[Tuple[str, ...], float]:
        """The MPMCS among the retained cut sets."""
        cut_set, probability = self.collection.most_probable()
        return tuple(sorted(cut_set)), probability


def truncated_cut_sets(
    tree: FaultTree,
    cutoff: float,
    *,
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> TruncationResult:
    """Enumerate every minimal cut set whose probability is at least ``cutoff``.

    Parameters
    ----------
    tree:
        The fault tree to analyse (validated first).
    cutoff:
        Probability cutoff in ``(0, 1]``.  Cut sets strictly below it are
        discarded (and so are, safely, all candidates that can only lead to
        such cut sets).
    max_candidates:
        Abort with :class:`AnalysisError` when the number of live candidates
        exceeds this bound.
    """
    if not 0.0 < cutoff <= 1.0:
        raise AnalysisError(f"cutoff must lie in (0, 1], got {cutoff}")
    tree.validate()
    probabilities = tree.probabilities()

    def bound(candidate: FrozenSet[str]) -> float:
        product = 1.0
        for name in candidate:
            if tree.is_event(name):
                product *= probabilities[name]
        return product

    candidates: Set[FrozenSet[str]] = {frozenset({tree.top_event})}
    finished: Set[FrozenSet[str]] = set()
    num_pruned = 0

    while candidates:
        if len(candidates) + len(finished) > max_candidates:
            raise AnalysisError(
                f"truncated enumeration exceeded the candidate limit of {max_candidates} "
                f"sets on fault tree {tree.name!r}"
            )
        candidate = candidates.pop()
        if bound(candidate) < cutoff:
            num_pruned += 1
            continue
        gate_name = next((name for name in candidate if tree.is_gate(name)), None)
        if gate_name is None:
            finished.add(candidate)
            continue
        remainder = candidate - {gate_name}
        gate = tree.gates[gate_name]
        if gate.gate_type is GateType.AND:
            candidates.add(remainder | set(gate.children))
        elif gate.gate_type is GateType.OR:
            for child in gate.children:
                candidates.add(remainder | {child})
        elif gate.gate_type is GateType.VOTING:
            for combo in combinations(gate.children, gate.k or 1):
                candidates.add(remainder | set(combo))
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unsupported gate type {gate.gate_type!r}")

    retained = [
        cut_set
        for cut_set in minimise_cut_sets(finished)
        if bound(cut_set) >= cutoff
    ]
    collection = CutSetCollection(cut_sets=retained, probabilities=probabilities)
    return TruncationResult(
        collection=collection,
        cutoff=cutoff,
        num_retained=len(collection),
        num_pruned=num_pruned,
    )


def truncated_top_event_probability(
    tree: FaultTree,
    cutoff: float,
    *,
    method: str = "min-cut-upper-bound",
    max_candidates: int = DEFAULT_MAX_CANDIDATES,
) -> Dict[str, object]:
    """Top-event probability computed from the truncated cut-set list.

    Returns a dictionary with the retained-set probability, the cutoff, and
    the counts from the truncation — the standard way PRA tools report
    truncated results.  The value is a *lower* bound of the same combination
    method applied to the full cut-set list, since truncation only removes
    positive contributions.
    """
    result = truncated_cut_sets(tree, cutoff, max_candidates=max_candidates)
    if result.num_retained == 0:
        probability = 0.0
    else:
        probability = top_event_probability_from_cut_sets(
            list(result.collection), tree.probabilities(), method=method
        )
    return {
        "tree": tree.name,
        "cutoff": cutoff,
        "method": method,
        "probability": probability,
        "num_retained": result.num_retained,
        "num_pruned": result.num_pruned,
    }
