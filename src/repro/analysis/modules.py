"""Detection of independent modules in a fault tree.

A *module* is a gate whose descendant nodes appear nowhere else in the tree:
the sub-tree rooted at the gate shares no event or gate with the rest of the
model.  Modules matter because they can be analysed independently — their
probability (or their minimal cut sets) can be computed once and substituted
as if they were single basic events, which is the classical divide-and-conquer
speed-up used by BDD-based and MOCUS-based tools.

The detection implemented here follows the standard parent-counting argument:
a gate ``g`` is a module when every strict descendant of ``g`` has *all* of its
parents inside the sub-tree rooted at ``g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.fta.tree import FaultTree

__all__ = ["Module", "find_modules", "modularisation_report"]


@dataclass(frozen=True)
class Module:
    """An independent module of a fault tree.

    Attributes
    ----------
    gate:
        Name of the gate at the root of the module.
    events:
        Basic events contained in the module.
    gates:
        Gates contained in the module (including the root gate itself).
    """

    gate: str
    events: FrozenSet[str]
    gates: FrozenSet[str]

    @property
    def size(self) -> int:
        """Total number of nodes in the module."""
        return len(self.events) + len(self.gates)


def _parents_of(tree: FaultTree) -> Dict[str, Set[str]]:
    parents: Dict[str, Set[str]] = {name: set() for name in tree.event_names}
    parents.update({name: set() for name in tree.gate_names})
    for gate in tree.gates.values():
        for child in gate.children:
            parents[child].add(gate.name)
    return parents


def find_modules(tree: FaultTree, *, include_top: bool = True) -> List[Module]:
    """Return every gate that roots an independent module.

    Parameters
    ----------
    tree:
        The fault tree to analyse (validated first).
    include_top:
        Whether to report the top gate, which is trivially a module, as one
        (default true, matching the convention of classical FTA tools).

    The result is sorted by decreasing module size so that the most useful
    decomposition candidates come first.
    """
    tree.validate()
    parents = _parents_of(tree)
    top = tree.top_event

    modules: List[Module] = []
    for gate_name in tree.gate_names:
        if gate_name == top and not include_top:
            continue
        descendants = set(tree.reachable_from(gate_name))
        strict = descendants - {gate_name}
        is_module = all(parents[node] <= descendants for node in strict)
        if not is_module:
            continue
        modules.append(
            Module(
                gate=gate_name,
                events=frozenset(name for name in descendants if tree.is_event(name)),
                gates=frozenset(name for name in descendants if tree.is_gate(name)),
            )
        )
    modules.sort(key=lambda module: (-module.size, module.gate))
    return modules


def modularisation_report(tree: FaultTree) -> Dict[str, object]:
    """Summary of the modular structure of ``tree`` (used by reports and the CLI).

    Reports the number of modules, the largest proper module (excluding the
    top gate) and the fraction of gates that root a module — a rough indicator
    of how much a divide-and-conquer analysis could save.
    """
    modules = find_modules(tree)
    proper = [module for module in modules if module.gate != tree.top_event]
    largest_proper: Tuple[str, int] = ("", 0)
    if proper:
        largest_proper = (proper[0].gate, proper[0].size)
    return {
        "tree": tree.name,
        "num_gates": tree.num_gates,
        "num_modules": len(modules),
        "num_proper_modules": len(proper),
        "module_gates": [module.gate for module in modules],
        "largest_proper_module": largest_proper[0],
        "largest_proper_module_size": largest_proper[1],
        "module_fraction": len(modules) / tree.num_gates if tree.num_gates else 0.0,
    }
