"""Minimal path sets and the most reliable success path.

A *minimal path set* (MPS) is the dual of a minimal cut set: an
inclusion-minimal set of basic events whose joint **non-occurrence guarantees
the top event cannot happen**.  Path sets describe what must keep working for
the system to survive, and are the qualitative output of success-tree analysis
— the very transformation Step 1 of the paper performs.

Two results are provided:

* :func:`minimal_path_sets` — all minimal path sets, obtained by running the
  MOCUS expansion on the *dual* fault tree (AND/OR swapped, k-of-n dualised to
  (n-k+1)-of-n).
* :func:`most_probable_path_set` — the path set with the highest probability
  of being failure-free, i.e. maximising ``prod(1 - p(x_i))``.  It is computed
  with the same MaxSAT machinery as the MPMCS: weights are
  ``-log(1 - p(x_i))`` and the hard constraint is the success (complemented)
  structure function, a direct application of the paper's encoding to the dual
  problem.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.analysis.cutsets import CutSetCollection
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.core.weights import MIN_WEIGHT
from repro.exceptions import AnalysisError
from repro.fta.formula import structure_function
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree
from repro.logic.simplify import complement
from repro.logic.tseitin import tseitin_encode
from repro.maxsat import MaxSATStatus, PortfolioSolver, RC2Engine, WPMaxSATInstance
from repro.maxsat.engine import MaxSATEngine

__all__ = ["dual_tree", "minimal_path_sets", "most_probable_path_set"]


def dual_tree(tree: FaultTree, *, name: Optional[str] = None) -> FaultTree:
    """Return the dual (success-oriented) fault tree.

    AND gates become OR gates and vice versa; a k-of-n voting gate becomes an
    (n-k+1)-of-n gate.  Basic events and probabilities are kept as-is — the
    dual tree's cut sets are exactly the original tree's path sets.
    """
    tree.validate()
    dual = FaultTree(name or f"{tree.name}-dual", top_event=tree.top_event)
    for event in tree.events.values():
        dual.add_event(event)
    for gate in tree.gates.values():
        if gate.gate_type is GateType.AND:
            dual.add_gate(gate.name, GateType.OR, gate.children, description=gate.description)
        elif gate.gate_type is GateType.OR:
            dual.add_gate(gate.name, GateType.AND, gate.children, description=gate.description)
        else:
            dual_k = len(gate.children) - (gate.k or 1) + 1
            dual.add_gate(
                gate.name,
                GateType.VOTING,
                gate.children,
                k=dual_k,
                description=gate.description,
            )
    dual.validate()
    return dual


def minimal_path_sets(tree: FaultTree, *, max_candidates: int = 200_000) -> CutSetCollection:
    """All minimal path sets of ``tree`` (MOCUS on the dual tree).

    The returned collection carries the *success* probabilities
    ``1 - p(x_i)`` so that its ranking helpers order path sets by the
    probability that every member stays failure-free.
    """
    dual = dual_tree(tree)
    collection = mocus_minimal_cut_sets(dual, max_candidates=max_candidates)
    survival_probabilities = {
        name: 1.0 - probability for name, probability in tree.probabilities().items()
    }
    return CutSetCollection(
        cut_sets=list(collection), probabilities=survival_probabilities
    )


def most_probable_path_set(
    tree: FaultTree,
    *,
    engine: Optional[MaxSATEngine] = None,
) -> Tuple[Tuple[str, ...], float]:
    """The minimal path set with the highest probability of being failure-free.

    Returns ``(sorted event tuple, probability)`` where the probability is
    ``prod(1 - p(x_i))`` over the members.  This is the MPMCS encoding applied
    to the dual problem: hard clauses assert the *success* function ``¬f(t)``
    and each event carries the weight ``-log(1 - p(x_i))``.
    """
    tree.validate()
    success = complement(structure_function(tree))
    encoding = tseitin_encode(success, assert_root=True)

    instance = WPMaxSATInstance()
    instance.add_hard_cnf(encoding.cnf)

    probabilities = tree.probabilities()
    event_vars: Dict[str, int] = {}
    for name in tree.events_reachable_from_top():
        var = encoding.cnf.name_to_var.get(name)
        if var is None:
            # The event vanished from the success function (cannot happen for
            # validated coherent trees, guarded defensively).
            continue
        event_vars[name] = var
        survival = 1.0 - probabilities[name]
        if survival <= 0.0:
            # A probability-1 event can never be part of a surviving path set;
            # forbid selecting it instead of giving it an infinite weight.
            instance.add_hard([var])
            continue
        weight = max(-math.log(survival), MIN_WEIGHT)
        instance.add_soft([var], weight, label=name)

    solver = engine if engine is not None else RC2Engine()
    result = solver.solve(instance)
    if result.status is MaxSATStatus.UNSATISFIABLE:
        raise AnalysisError(
            f"fault tree {tree.name!r} has no path set: the top event always occurs"
        )
    if result.status is not MaxSATStatus.OPTIMUM or result.model is None:
        raise AnalysisError("MaxSAT resolution of the path-set problem was inconclusive")

    # Selected members are the events kept failure-free, i.e. assigned False.
    members = tuple(
        sorted(name for name, var in event_vars.items() if not result.model.get(var, False))
    )
    probability = 1.0
    for name in members:
        probability *= 1.0 - probabilities[name]
    return members, probability
