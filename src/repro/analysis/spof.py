"""Single points of failure (SPOF) detection.

A single point of failure is a basic event that triggers the top event on its
own, i.e. a minimal cut set of size one.  The paper lists SPOF identification
among the standard qualitative FTA techniques; it falls out directly from the
structure function, so no cut-set enumeration is needed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fta.tree import FaultTree

__all__ = ["single_points_of_failure"]


def single_points_of_failure(tree: FaultTree) -> List[Tuple[str, float]]:
    """Return the single points of failure with their probabilities.

    The result is sorted by decreasing probability (most likely SPOF first) —
    the size-one analogue of the MPMCS ranking.
    """
    tree.validate()
    spofs: List[Tuple[str, float]] = []
    for name in tree.events_reachable_from_top():
        if tree.evaluate({name: True}):
            spofs.append((name, tree.probability(name)))
    return sorted(spofs, key=lambda item: (-item[1], item[0]))
