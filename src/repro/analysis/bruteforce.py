"""Brute-force reference analyses.

These enumerators are exponential in the number of basic events and exist to
provide *ground truth* for small fault trees: the property-based tests compare
the MaxSAT pipeline, MOCUS and the BDD engine against them.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from repro.analysis.cutsets import CutSet, CutSetCollection, minimise_cut_sets
from repro.core.weights import probability_of_cut_set
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = ["brute_force_minimal_cut_sets", "brute_force_mpmcs"]

#: Refuse to enumerate beyond this many basic events (2^n blow-up).
_MAX_EVENTS = 22


def brute_force_minimal_cut_sets(
    tree: FaultTree, *, max_events: int = _MAX_EVENTS
) -> CutSetCollection:
    """Enumerate every minimal cut set by exhaustive subset search.

    Subsets of basic events are explored in increasing size; a subset is kept
    when it triggers the top event and no already-kept (hence smaller or equal)
    cut set is contained in it — which yields exactly the inclusion-minimal
    cut sets.
    """
    tree.validate()
    events = sorted(tree.events_reachable_from_top())
    if len(events) > max_events:
        raise AnalysisError(
            f"brute-force enumeration over {len(events)} events would require "
            f"2^{len(events)} evaluations; limit is {max_events} events"
        )

    minimal: List[CutSet] = []
    for size in range(1, len(events) + 1):
        for combo in combinations(events, size):
            candidate = frozenset(combo)
            if any(kept <= candidate for kept in minimal):
                continue
            if tree.is_cut_set(candidate):
                minimal.append(candidate)
    return CutSetCollection(cut_sets=minimal, probabilities=tree.probabilities())


def brute_force_mpmcs(
    tree: FaultTree, *, max_events: int = _MAX_EVENTS
) -> Tuple[Tuple[str, ...], float]:
    """Return the Maximum Probability Minimal Cut Set by exhaustive search.

    Returns a ``(sorted event tuple, probability)`` pair — the ground truth the
    MaxSAT pipeline is validated against.
    """
    collection = brute_force_minimal_cut_sets(tree, max_events=max_events)
    if not len(collection):
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set")
    cut_set, probability = collection.most_probable()
    return tuple(sorted(cut_set)), probability
