"""Cut-set contribution analysis: how much of the risk each cut set carries.

The paper motivates the MPMCS as a tool for "decision making, risk assessment
and fault prioritisation".  The natural companion question is *how dominant*
the MPMCS actually is: the fraction of the total (rare-event) risk it
contributes, and how many of the top cut sets are needed to cover a given
fraction of the risk.  These are the quantities this module computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.cutsets import CutSetCollection
from repro.exceptions import AnalysisError

__all__ = [
    "CutSetContribution",
    "cut_set_contributions",
    "cut_sets_covering",
    "mpmcs_dominance",
]


@dataclass(frozen=True)
class CutSetContribution:
    """One cut set's share of the total rare-event risk."""

    rank: int
    events: Tuple[str, ...]
    probability: float
    fraction: float
    cumulative_fraction: float

    @property
    def size(self) -> int:
        return len(self.events)


def cut_set_contributions(collection: CutSetCollection) -> List[CutSetContribution]:
    """Rank every minimal cut set by its contribution to the rare-event total.

    The fraction of cut set ``i`` is ``P(MCS_i) / sum_j P(MCS_j)``; cumulative
    fractions are reported in decreasing-probability order, so the first entry
    is the MPMCS and its fraction is the :func:`mpmcs_dominance`.
    """
    ranked = collection.ranked()
    if not ranked:
        raise AnalysisError("cannot compute contributions of an empty cut-set collection")
    total = sum(probability for _, probability in ranked)
    if total <= 0.0:
        raise AnalysisError("total cut-set probability is zero")

    contributions: List[CutSetContribution] = []
    cumulative = 0.0
    for rank, (cut_set, probability) in enumerate(ranked, start=1):
        fraction = probability / total
        cumulative += fraction
        contributions.append(
            CutSetContribution(
                rank=rank,
                events=tuple(sorted(cut_set)),
                probability=probability,
                fraction=fraction,
                cumulative_fraction=min(cumulative, 1.0),
            )
        )
    return contributions


def cut_sets_covering(collection: CutSetCollection, fraction: float) -> int:
    """Number of top cut sets needed to cover ``fraction`` of the total risk.

    ``fraction`` must lie in ``(0, 1]``.  The answer is the smallest ``k`` such
    that the ``k`` most probable cut sets together contribute at least the
    requested fraction of the rare-event total.
    """
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError(f"fraction must lie in (0, 1], got {fraction}")
    contributions = cut_set_contributions(collection)
    for contribution in contributions:
        if contribution.cumulative_fraction >= fraction - 1e-12:
            return contribution.rank
    return len(contributions)


def mpmcs_dominance(collection: CutSetCollection) -> float:
    """Fraction of the total rare-event risk contributed by the MPMCS alone."""
    return cut_set_contributions(collection)[0].fraction
