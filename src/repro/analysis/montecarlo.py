"""Monte Carlo estimation of the top-event probability.

Exact quantitative FTA (inclusion–exclusion or BDD) becomes infeasible on very
large models; standard practice is then to estimate ``P(top)`` by sampling
basic-event states.  The estimator here is the plain (crude) Monte Carlo
estimator with a normal-approximation confidence interval, plus an optional
importance-sampling mode for rare top events in which every event probability
is inflated by a caller-supplied factor and the estimate is corrected with the
likelihood ratio.

Besides being useful on its own, the estimator acts as an independent
validation substrate: the test suite checks it against the exact BDD
probability on mid-sized trees.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = ["MonteCarloEstimate", "estimate_top_event_probability"]


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Result of a Monte Carlo top-event estimation."""

    probability: float
    standard_error: float
    confidence_low: float
    confidence_high: float
    samples: int
    hits: float
    seed: int

    def within(self, reference: float, *, sigmas: float = 4.0) -> bool:
        """True when ``reference`` lies within ``sigmas`` standard errors."""
        margin = sigmas * self.standard_error
        return self.probability - margin <= reference <= self.probability + margin


def estimate_top_event_probability(
    tree: FaultTree,
    *,
    samples: int = 10_000,
    seed: int = 0,
    importance_factor: float = 1.0,
    confidence: float = 0.95,
) -> MonteCarloEstimate:
    """Estimate ``P(top event)`` by Monte Carlo sampling.

    Parameters
    ----------
    tree:
        The fault tree (validated first).
    samples:
        Number of independent samples to draw.
    seed:
        PRNG seed; results are reproducible for a fixed seed.
    importance_factor:
        When greater than 1, each event probability is inflated by this factor
        (capped at 0.5) for sampling and the estimate is corrected with the
        likelihood ratio — a simple importance-sampling scheme that reduces the
        variance for rare top events.
    confidence:
        Two-sided confidence level for the reported interval (normal
        approximation).
    """
    tree.validate()
    if samples <= 0:
        raise AnalysisError("samples must be a positive integer")
    if importance_factor < 1.0:
        raise AnalysisError("importance_factor must be >= 1")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError("confidence must lie in (0, 1)")

    probabilities = tree.probabilities()
    events = sorted(tree.events_reachable_from_top())
    sampling_probabilities = {
        name: min(0.5, probabilities[name] * importance_factor)
        if probabilities[name] < 0.5
        else probabilities[name]
        for name in events
    }

    rng = random.Random(seed)
    order = tree.topological_order()
    gates = tree.gates

    total_weight = 0.0
    total_weight_squared = 0.0

    for _ in range(samples):
        states: Dict[str, bool] = {}
        likelihood_ratio = 1.0
        for name in events:
            q = sampling_probabilities[name]
            p = probabilities[name]
            occurred = rng.random() < q
            states[name] = occurred
            if importance_factor != 1.0:
                likelihood_ratio *= (p / q) if occurred else ((1.0 - p) / (1.0 - q))
        top_occurred = _evaluate(order, gates, states)
        weight = likelihood_ratio if top_occurred else 0.0
        total_weight += weight
        total_weight_squared += weight * weight

    mean = total_weight / samples
    variance = max(total_weight_squared / samples - mean * mean, 0.0)
    standard_error = math.sqrt(variance / samples)
    z = _z_score(confidence)
    return MonteCarloEstimate(
        probability=mean,
        standard_error=standard_error,
        confidence_low=max(0.0, mean - z * standard_error),
        confidence_high=min(1.0, mean + z * standard_error),
        samples=samples,
        hits=total_weight,
        seed=seed,
    )


def _evaluate(order, gates, states: Dict[str, bool]) -> bool:
    """Evaluate the tree bottom-up given sampled basic-event states."""
    values: Dict[str, bool] = {}
    for name in order:
        gate = gates.get(name)
        if gate is None:
            values[name] = states.get(name, False)
            continue
        child_values = [values[child] for child in gate.children]
        if gate.gate_type.value == "and":
            values[name] = all(child_values)
        elif gate.gate_type.value == "or":
            values[name] = any(child_values)
        else:
            values[name] = sum(child_values) >= (gate.k or 0)
    return values[order[-1]]


def _z_score(confidence: float) -> float:
    """Two-sided z-score for a given confidence level (small lookup + fallback)."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.999: 3.2905}
    if confidence in table:
        return table[confidence]
    # Rational approximation (Beasley-Springer/Moro) for other levels.
    p = 1.0 - (1.0 - confidence) / 2.0
    # Acklam's approximation of the inverse normal CDF.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )
