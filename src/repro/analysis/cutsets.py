"""Cut-set algebra.

A *cut set* is a set of basic events whose joint occurrence triggers the top
event; a *minimal cut set* (MCS) contains no proper subset that is itself a
cut set.  This module provides the set-algebra helpers shared by MOCUS, the
BDD extraction and the brute-force enumerators: subsumption-based
minimisation, containment queries, probability ranking, and a small container
class used across analyses and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.weights import probability_of_cut_set
from repro.exceptions import AnalysisError

__all__ = ["CutSet", "CutSetCollection", "minimise_cut_sets", "is_subsumed"]

CutSet = FrozenSet[str]


def minimise_cut_sets(cut_sets: Iterable[Iterable[str]]) -> List[CutSet]:
    """Remove every cut set that is a superset of another (subsumption).

    The result contains only inclusion-minimal sets, sorted by size then
    lexicographically for determinism.  Duplicates are removed.
    """
    unique: List[CutSet] = sorted(
        {frozenset(cs) for cs in cut_sets}, key=lambda cs: (len(cs), sorted(cs))
    )
    minimal: List[CutSet] = []
    for candidate in unique:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal


def is_subsumed(candidate: Iterable[str], cut_sets: Iterable[Iterable[str]]) -> bool:
    """True when ``candidate`` is a superset of (or equal to) some set in ``cut_sets``."""
    candidate_set = frozenset(candidate)
    return any(frozenset(cs) <= candidate_set for cs in cut_sets)


@dataclass
class CutSetCollection:
    """A collection of minimal cut sets with probability-aware helpers.

    Parameters
    ----------
    cut_sets:
        The minimal cut sets (they are re-minimised defensively on
        construction so the invariants always hold).
    probabilities:
        Optional mapping of event probabilities enabling the quantitative
        queries (:meth:`ranked`, :meth:`most_probable`, :meth:`probability_of`).
    """

    cut_sets: List[CutSet] = field(default_factory=list)
    probabilities: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        self.cut_sets = minimise_cut_sets(self.cut_sets)

    @classmethod
    def from_minimal(
        cls,
        cut_sets: Sequence[CutSet],
        probabilities: Optional[Mapping[str, float]] = None,
    ) -> "CutSetCollection":
        """Wrap cut sets that are *already* inclusion-minimal, skipping re-minimisation.

        The defensive subsumption pass in ``__post_init__`` is quadratic in
        the number of cut sets; producers that guarantee minimality by
        construction (e.g. the incremental per-gate composition in
        :mod:`repro.scenarios.incremental`, whose every step ends in
        :func:`minimise_cut_sets`) use this constructor to avoid paying it
        again on every scenario of a sweep.  The canonical size-then-lexical
        order is restored cheaply.
        """
        collection = cls.__new__(cls)
        collection.cut_sets = sorted(cut_sets, key=lambda cs: (len(cs), sorted(cs)))
        collection.probabilities = probabilities
        return collection

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cut_sets)

    def __iter__(self) -> Iterator[CutSet]:
        return iter(self.cut_sets)

    def __contains__(self, events: Iterable[str]) -> bool:
        return frozenset(events) in set(self.cut_sets)

    # -- qualitative queries -------------------------------------------------------

    def order(self) -> int:
        """Size of the smallest cut set (the classical *order* of the tree)."""
        if not self.cut_sets:
            raise AnalysisError("empty cut-set collection has no order")
        return min(len(cs) for cs in self.cut_sets)

    def of_order(self, order: int) -> List[CutSet]:
        """All cut sets with exactly ``order`` events."""
        return [cs for cs in self.cut_sets if len(cs) == order]

    def events(self) -> FrozenSet[str]:
        """Union of all events appearing in some minimal cut set."""
        out: set[str] = set()
        for cs in self.cut_sets:
            out |= cs
        return frozenset(out)

    # -- quantitative queries -------------------------------------------------------

    def _require_probabilities(self) -> Mapping[str, float]:
        if self.probabilities is None:
            raise AnalysisError("cut-set collection was built without probabilities")
        return self.probabilities

    def probability_of(self, cut_set: Iterable[str]) -> float:
        """Joint probability of one cut set (independent events)."""
        return probability_of_cut_set(cut_set, self._require_probabilities())

    def ranked(self) -> List[Tuple[CutSet, float]]:
        """All cut sets sorted by decreasing probability.

        Ties are broken canonically — smaller cut sets first, then the
        lexicographically smallest sorted event tuple — so that every backend
        (MOCUS, BDD, brute force, canonicalised MaxSAT) ranks identically and
        cross-backend equality checks are reproducible.
        """
        probabilities = self._require_probabilities()
        scored = [(cs, probability_of_cut_set(cs, probabilities)) for cs in self.cut_sets]
        return sorted(scored, key=lambda item: (-item[1], len(item[0]), tuple(sorted(item[0]))))

    def most_probable(self) -> Tuple[CutSet, float]:
        """The Maximum Probability Minimal Cut Set and its probability.

        This is the brute-force/baseline definition of the MPMCS used to
        validate the MaxSAT pipeline.
        """
        ranked = self.ranked()
        if not ranked:
            raise AnalysisError("empty cut-set collection has no MPMCS")
        return ranked[0]

    def to_sorted_tuples(self) -> List[Tuple[str, ...]]:
        """Deterministic plain-tuple form (for reports and tests)."""
        return [tuple(sorted(cs)) for cs in self.cut_sets]
