"""Sensitivity and uncertainty analysis of the MPMCS.

The MPMCS depends on point estimates of the basic-event probabilities, which
in practice carry substantial uncertainty.  Two complementary analyses are
provided:

* :func:`mpmcs_stability` — epistemic-uncertainty propagation: event
  probabilities are perturbed (log-uniformly within a multiplicative error
  factor), the MPMCS is recomputed for every perturbed model, and the result
  reports how often each cut set comes out on top.  A dominant cut set that
  wins in (say) 95% of the samples is a robust conclusion; a 55/45 split warns
  the analyst that the ranking is not trustworthy at the current data quality.
* :func:`tornado_analysis` — one-at-a-time sensitivity of the top-event
  probability: each event's probability is scaled down/up by a factor and the
  resulting swing of ``P(top)`` (computed exactly with the BDD engine) is
  reported, sorted by impact — the classical "tornado diagram" data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bdd.probability import top_event_probability
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.maxsat import RC2Engine

__all__ = ["MPMCSStabilityReport", "TornadoEntry", "mpmcs_stability", "tornado_analysis"]


@dataclass
class MPMCSStabilityReport:
    """Outcome of the MPMCS stability analysis under probability uncertainty."""

    baseline: Tuple[str, ...]
    samples: int
    error_factor: float
    win_counts: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    probability_range: Tuple[float, float] = (0.0, 0.0)

    @property
    def baseline_win_rate(self) -> float:
        """Fraction of perturbed models whose MPMCS equals the baseline MPMCS."""
        if self.samples == 0:
            return 0.0
        return self.win_counts.get(self.baseline, 0) / self.samples

    def ranked(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Cut sets sorted by how often they were the MPMCS (win rate)."""
        return sorted(
            ((events, count / self.samples) for events, count in self.win_counts.items()),
            key=lambda item: -item[1],
        )


def mpmcs_stability(
    tree: FaultTree,
    *,
    samples: int = 50,
    error_factor: float = 3.0,
    seed: int = 0,
    solver: Optional[MPMCSSolver] = None,
) -> MPMCSStabilityReport:
    """Quantify how robust the MPMCS is to basic-event probability uncertainty.

    Every sample multiplies each event probability by a factor drawn
    log-uniformly from ``[1/error_factor, error_factor]`` (clamped to 1.0) and
    recomputes the MPMCS.
    """
    tree.validate()
    if samples <= 0:
        raise AnalysisError("samples must be a positive integer")
    if error_factor <= 1.0:
        raise AnalysisError("error_factor must be greater than 1")

    pipeline = solver if solver is not None else MPMCSSolver(single_engine=RC2Engine())
    baseline = pipeline.solve(tree)

    rng = random.Random(seed)
    import math

    log_range = math.log(error_factor)
    win_counts: Dict[Tuple[str, ...], int] = {}
    lowest, highest = float("inf"), 0.0

    for _ in range(samples):
        perturbed = tree.copy(name=f"{tree.name}-perturbed")
        for name, probability in tree.probabilities().items():
            factor = math.exp(rng.uniform(-log_range, log_range))
            perturbed.set_probability(name, min(1.0, probability * factor))
        result = pipeline.solve(perturbed)
        win_counts[result.events] = win_counts.get(result.events, 0) + 1
        lowest = min(lowest, result.probability)
        highest = max(highest, result.probability)

    return MPMCSStabilityReport(
        baseline=baseline.events,
        samples=samples,
        error_factor=error_factor,
        win_counts=win_counts,
        probability_range=(lowest, highest),
    )


@dataclass(frozen=True)
class TornadoEntry:
    """One bar of the tornado diagram: the P(top) swing caused by one event."""

    event: str
    baseline_probability: float
    low_top_probability: float
    high_top_probability: float

    @property
    def swing(self) -> float:
        """Width of the P(top) interval induced by the event's uncertainty."""
        return self.high_top_probability - self.low_top_probability


def tornado_analysis(
    tree: FaultTree,
    *,
    factor: float = 10.0,
    events: Optional[List[str]] = None,
) -> List[TornadoEntry]:
    """One-at-a-time sensitivity of the exact top-event probability.

    Each selected event's probability is divided and multiplied by ``factor``
    (clamped to (0, 1]) while all others stay at their point estimates; the
    exact top-event probability is recomputed with the BDD engine for both
    variants.  Entries are returned sorted by decreasing swing.
    """
    tree.validate()
    if factor <= 1.0:
        raise AnalysisError("factor must be greater than 1")
    selected = events if events is not None else sorted(tree.events_reachable_from_top())
    for name in selected:
        if not tree.is_event(name):
            raise AnalysisError(f"unknown basic event {name!r}")

    entries: List[TornadoEntry] = []
    for name in selected:
        baseline_probability = tree.probability(name)
        low_tree = tree.copy(name=f"{tree.name}-low")
        low_tree.set_probability(name, max(baseline_probability / factor, 1e-300))
        high_tree = tree.copy(name=f"{tree.name}-high")
        high_tree.set_probability(name, min(baseline_probability * factor, 1.0))
        entries.append(
            TornadoEntry(
                event=name,
                baseline_probability=baseline_probability,
                low_top_probability=top_event_probability(low_tree),
                high_top_probability=top_event_probability(high_tree),
            )
        )
    return sorted(entries, key=lambda entry: -entry.swing)
