"""Fault tree modelling.

This package provides the fault-tree domain model used throughout the library:
basic events with occurrence probabilities, logic gates (AND, OR and k-of-n
voting gates), the :class:`~repro.fta.tree.FaultTree` container with structural
validation, a fluent builder, conversion to Boolean structure functions
(Section II of the paper), and parsers/serialisers for the Galileo ``.dft``
format and a JSON format equivalent to the one consumed by MPMCS4FTA.

Dynamic fault trees (PAND / SEQ / FDEP / SPARE gates over failure rates) live
in :mod:`repro.fta.dynamic`, with a Monte Carlo evaluator in
:mod:`repro.fta.simulation` and a conservative static approximation that plugs
into the MPMCS MaxSAT pipeline.
"""

from repro.fta.events import BasicEvent
from repro.fta.gates import Gate, GateType
from repro.fta.tree import FaultTree
from repro.fta.builder import FaultTreeBuilder
from repro.fta.ccf import CCFGroup, apply_beta_factor_model
from repro.fta.dynamic import DynamicFaultTree, DynamicGate, DynamicGateType, RatedEvent
from repro.fta.formula import structure_function, success_function
from repro.fta.simulation import DFTSimulationResult, simulate_dft
from repro.fta.parsers.galileo import parse_galileo, parse_galileo_file
from repro.fta.parsers.json_format import parse_json, parse_json_file
from repro.fta.parsers.openpsa import parse_openpsa, parse_openpsa_file, to_openpsa
from repro.fta.serializers import to_galileo, to_json, to_json_document

__all__ = [
    "BasicEvent",
    "CCFGroup",
    "DFTSimulationResult",
    "DynamicFaultTree",
    "DynamicGate",
    "DynamicGateType",
    "FaultTree",
    "FaultTreeBuilder",
    "Gate",
    "GateType",
    "RatedEvent",
    "apply_beta_factor_model",
    "parse_galileo",
    "simulate_dft",
    "parse_galileo_file",
    "parse_json",
    "parse_json_file",
    "parse_openpsa",
    "parse_openpsa_file",
    "structure_function",
    "success_function",
    "to_galileo",
    "to_json",
    "to_json_document",
    "to_openpsa",
]
