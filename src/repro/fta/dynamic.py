"""Dynamic fault trees: priority-AND, sequence, functional dependency, spares.

Static fault trees (the paper's setting) cannot express order-dependent
failure behaviour.  Dynamic fault trees (DFTs) add gates whose semantics
depend on *when* inputs fail:

``PAND``
    Priority-AND: fails when all inputs fail **in left-to-right order**.
``SEQ``
    Sequence enforcing gate: inputs can only fail in left-to-right order; the
    gate fails when all of them have failed (analysed here with the same
    failure-time semantics as PAND).
``FDEP``
    Functional dependency: when the *trigger* (first input) fails, all the
    dependent basic events (remaining inputs) fail immediately.  The gate
    itself never propagates a failure.
``SPARE``
    Spare gate: a primary unit backed by one or more spares that are activated
    in order as the active unit fails.  A *dormancy factor* in ``[0, 1]``
    scales the failure rate of a spare while it waits (0 = cold spare,
    1 = hot spare).

A :class:`DynamicFaultTree` combines exponentially distributed basic events
(failure rates, not probabilities), ordinary static gates and dynamic gates.
Two analyses are provided:

* :meth:`DynamicFaultTree.to_static_tree` — the standard conservative static
  approximation evaluated at a mission time, which plugs directly into the
  MPMCS MaxSAT pipeline (PAND/SEQ/SPARE become AND, FDEP rewires dependent
  events through an OR with the trigger);
* :func:`repro.fta.simulation.simulate_dft` — Monte Carlo evaluation of the
  exact dynamic semantics, validated against hand-built CTMCs in the tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import FaultTreeError, ProbabilityError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["DynamicGateType", "DynamicGate", "RatedEvent", "DynamicFaultTree"]


class DynamicGateType(enum.Enum):
    """Dynamic gate flavours (static AND/OR/VOTING are handled by GateType)."""

    PAND = "pand"
    SEQ = "seq"
    FDEP = "fdep"
    SPARE = "spare"

    @classmethod
    def from_string(cls, text: str) -> "DynamicGateType":
        normalised = text.strip().lower()
        aliases = {
            "pand": cls.PAND,
            "priority-and": cls.PAND,
            "seq": cls.SEQ,
            "sequence": cls.SEQ,
            "fdep": cls.FDEP,
            "spare": cls.SPARE,
            "csp": cls.SPARE,
            "wsp": cls.SPARE,
            "hsp": cls.SPARE,
        }
        try:
            return aliases[normalised]
        except KeyError as exc:
            raise FaultTreeError(f"unknown dynamic gate type {text!r}") from exc


@dataclass(frozen=True)
class RatedEvent:
    """A basic event with an exponential failure rate (per hour)."""

    name: str
    failure_rate: float
    description: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ProbabilityError("rated event name must be a non-empty string")
        rate = self.failure_rate
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise ProbabilityError(f"failure rate of {self.name!r} must be a number")
        if not math.isfinite(rate) or rate <= 0.0:
            raise ProbabilityError(
                f"failure rate of {self.name!r} must be positive and finite, got {rate}"
            )

    def probability_at(self, mission_time: float) -> float:
        """Unreliability ``1 - exp(-rate * t)`` at the given mission time."""
        if mission_time < 0.0 or not math.isfinite(mission_time):
            raise ProbabilityError(f"mission time must be non-negative, got {mission_time}")
        return 1.0 - math.exp(-self.failure_rate * mission_time)


@dataclass(frozen=True)
class DynamicGate:
    """A dynamic gate.

    ``children`` order matters for every dynamic gate type:

    * PAND / SEQ — the required failure order;
    * FDEP — ``children[0]`` is the trigger, the rest are the dependent basic
      events;
    * SPARE — ``children[0]`` is the primary unit, the rest are the spares in
      activation order (all must be basic events).
    """

    name: str
    gate_type: DynamicGateType
    children: Tuple[str, ...]
    dormancy: float = 0.0
    description: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise FaultTreeError("dynamic gate name must be a non-empty string")
        if not isinstance(self.gate_type, DynamicGateType):
            raise FaultTreeError(f"gate {self.name!r}: invalid dynamic gate type")
        children = tuple(self.children)
        object.__setattr__(self, "children", children)
        if len(children) < 2:
            raise FaultTreeError(f"dynamic gate {self.name!r} needs at least two children")
        if len(set(children)) != len(children):
            raise FaultTreeError(f"dynamic gate {self.name!r} has duplicate children")
        if not 0.0 <= self.dormancy <= 1.0:
            raise FaultTreeError(
                f"dynamic gate {self.name!r}: dormancy must lie in [0, 1], got {self.dormancy}"
            )
        if self.gate_type is not DynamicGateType.SPARE and self.dormancy != 0.0:
            raise FaultTreeError(
                f"dynamic gate {self.name!r}: dormancy is only meaningful for SPARE gates"
            )

    @property
    def arity(self) -> int:
        return len(self.children)


StaticGateSpec = Tuple[str, GateType, Tuple[str, ...], Optional[int]]


class DynamicFaultTree:
    """A dynamic fault tree over exponentially distributed basic events.

    Nodes are added with :meth:`add_event`, :meth:`add_gate` (static AND / OR /
    VOTING) and :meth:`add_dynamic_gate`; :meth:`validate` checks the
    structural rules specific to dynamic gates.
    """

    def __init__(self, name: str = "dynamic-fault-tree", *, top_event: Optional[str] = None) -> None:
        if not name:
            raise FaultTreeError("dynamic fault tree name must be non-empty")
        self.name = name
        self._events: Dict[str, RatedEvent] = {}
        self._static_gates: Dict[str, StaticGateSpec] = {}
        self._dynamic_gates: Dict[str, DynamicGate] = {}
        self._top_event: Optional[str] = top_event

    # -- construction ----------------------------------------------------------

    def add_event(
        self, name: str, failure_rate: float, *, description: Optional[str] = None
    ) -> RatedEvent:
        event = RatedEvent(name=name, failure_rate=failure_rate, description=description)
        self._check_fresh(name)
        self._events[name] = event
        return event

    def add_gate(
        self,
        name: str,
        gate_type: Union[GateType, str],
        children: Sequence[str],
        *,
        k: Optional[int] = None,
        description: Optional[str] = None,
    ) -> None:
        """Add a static AND / OR / VOTING gate."""
        if isinstance(gate_type, str):
            gate_type = GateType.from_string(gate_type)
        self._check_fresh(name)
        self._static_gates[name] = (name, gate_type, tuple(children), k)
        _ = description

    def add_dynamic_gate(
        self,
        name: str,
        gate_type: Union[DynamicGateType, str],
        children: Sequence[str],
        *,
        dormancy: float = 0.0,
        description: Optional[str] = None,
    ) -> DynamicGate:
        if isinstance(gate_type, str):
            gate_type = DynamicGateType.from_string(gate_type)
        gate = DynamicGate(
            name=name,
            gate_type=gate_type,
            children=tuple(children),
            dormancy=dormancy,
            description=description,
        )
        self._check_fresh(name)
        self._dynamic_gates[name] = gate
        return gate

    def set_top_event(self, name: str) -> None:
        self._top_event = name

    def _check_fresh(self, name: str) -> None:
        if name in self._events or name in self._static_gates or name in self._dynamic_gates:
            raise FaultTreeError(f"node name {name!r} is already used in {self.name!r}")

    # -- accessors ----------------------------------------------------------------

    @property
    def top_event(self) -> str:
        if self._top_event is None:
            raise FaultTreeError(f"dynamic fault tree {self.name!r} has no top event")
        return self._top_event

    @property
    def events(self) -> Dict[str, RatedEvent]:
        return dict(self._events)

    @property
    def dynamic_gates(self) -> Dict[str, DynamicGate]:
        return dict(self._dynamic_gates)

    @property
    def static_gates(self) -> Dict[str, StaticGateSpec]:
        return dict(self._static_gates)

    @property
    def num_nodes(self) -> int:
        return len(self._events) + len(self._static_gates) + len(self._dynamic_gates)

    def is_event(self, name: str) -> bool:
        return name in self._events

    def is_gate(self, name: str) -> bool:
        return name in self._static_gates or name in self._dynamic_gates

    def children_of(self, name: str) -> Tuple[str, ...]:
        if name in self._static_gates:
            return self._static_gates[name][2]
        if name in self._dynamic_gates:
            return self._dynamic_gates[name].children
        return ()

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants, including the dynamic-gate restrictions."""
        if self._top_event is None:
            raise FaultTreeError(f"dynamic fault tree {self.name!r} has no top event")
        if not self.is_event(self._top_event) and not self.is_gate(self._top_event):
            raise FaultTreeError(f"top event {self._top_event!r} is not a node")
        if not self._events:
            raise FaultTreeError(f"dynamic fault tree {self.name!r} has no basic events")

        for name in list(self._static_gates) + list(self._dynamic_gates):
            for child in self.children_of(name):
                if not self.is_event(child) and not self.is_gate(child):
                    raise FaultTreeError(f"gate {name!r} references undefined child {child!r}")

        for gate in self._dynamic_gates.values():
            if gate.gate_type is DynamicGateType.SPARE:
                for child in gate.children:
                    if not self.is_event(child):
                        raise FaultTreeError(
                            f"SPARE gate {gate.name!r}: child {child!r} must be a basic event"
                        )
            if gate.gate_type is DynamicGateType.FDEP:
                for child in gate.children[1:]:
                    if not self.is_event(child):
                        raise FaultTreeError(
                            f"FDEP gate {gate.name!r}: dependent {child!r} must be a basic event"
                        )

        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}

        def visit(node: str, trail: Tuple[str, ...]) -> None:
            if state.get(node) == 2:
                return
            if state.get(node) == 1:
                raise FaultTreeError(
                    f"dynamic fault tree {self.name!r} contains a cycle through {node!r}"
                )
            state[node] = 1
            for child in self.children_of(node):
                visit(child, trail + (node,))
            state[node] = 2

        for name in list(self._static_gates) + list(self._dynamic_gates):
            visit(name, ())

    # -- static approximation ------------------------------------------------------------

    def to_static_tree(self, mission_time: float) -> FaultTree:
        """Conservative static approximation frozen at ``mission_time``.

        * every rated event becomes a basic event with probability
          ``1 - exp(-rate * t)``;
        * PAND, SEQ and SPARE gates become AND gates (ignoring order and
          dormancy — failure is over-approximated);
        * an FDEP gate contributes no failure itself (it becomes an OR over
          its trigger, which is always true when the trigger fails, to keep
          the node referenced); each dependent basic event ``e`` is replaced,
          everywhere it is referenced, by ``OR(e, trigger)``.

        The resulting :class:`FaultTree` can be fed to every static analysis
        in the library, including the MPMCS MaxSAT pipeline.
        """
        self.validate()
        if mission_time <= 0.0 or not math.isfinite(mission_time):
            raise FaultTreeError(f"mission time must be positive and finite, got {mission_time}")

        # FDEP rewiring: dependent event e is referenced as OR(e, trigger...).
        dependents: Dict[str, List[str]] = {}
        fdep_gates: Set[str] = set()
        for gate in self._dynamic_gates.values():
            if gate.gate_type is DynamicGateType.FDEP:
                fdep_gates.add(gate.name)
                trigger = gate.children[0]
                for dependent in gate.children[1:]:
                    dependents.setdefault(dependent, []).append(trigger)
        if self.top_event in fdep_gates:
            raise FaultTreeError("the top event of a dynamic fault tree cannot be an FDEP gate")

        def resolve(child: str) -> str:
            """Follow FDEP gate references down to their trigger node."""
            seen: Set[str] = set()
            while child in fdep_gates:
                if child in seen:
                    raise FaultTreeError(f"circular FDEP reference through {child!r}")
                seen.add(child)
                child = self._dynamic_gates[child].children[0]
            return child

        def reference(child: str) -> str:
            """Name used when a gate references ``child`` in the static tree."""
            child = resolve(child)
            if child in dependents:
                return f"__fdep_{child}"
            return child

        # Reachability over the rewired structure, starting from the top event.
        reachable: Set[str] = set()
        stack = [resolve(self.top_event)]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            if node in dependents and self.is_event(node):
                stack.extend(resolve(trigger) for trigger in dependents[node])
            for child in self.children_of(node):
                stack.append(resolve(child))

        tree = FaultTree(f"{self.name}@t={mission_time:g}")

        for name, event in self._events.items():
            if name not in reachable:
                continue
            probability = max(event.probability_at(mission_time), 1e-15)
            tree.add_basic_event(name, probability, description=event.description)

        for dependent, triggers in dependents.items():
            if dependent not in reachable:
                continue
            trigger_refs = []
            for trigger in triggers:
                ref = reference(trigger)
                if ref not in trigger_refs and ref != dependent:
                    trigger_refs.append(ref)
            tree.add_gate(f"__fdep_{dependent}", GateType.OR, [dependent] + trigger_refs)

        for name, gate_type, children, k in self._static_gates.values():
            if name not in reachable:
                continue
            tree.add_gate(name, gate_type, [reference(child) for child in children], k=k)

        for gate in self._dynamic_gates.values():
            if gate.name not in reachable or gate.gate_type is DynamicGateType.FDEP:
                continue
            children = [reference(child) for child in gate.children]
            tree.add_gate(gate.name, GateType.AND, children)

        tree.set_top_event(reference(self.top_event))
        tree.validate()
        return tree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicFaultTree(name={self.name!r}, events={len(self._events)}, "
            f"static_gates={len(self._static_gates)}, dynamic_gates={len(self._dynamic_gates)})"
        )
