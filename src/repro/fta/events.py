"""Basic events of a fault tree.

A basic event models an elementary failure cause (hardware fault, human error,
software error, communication failure, cyber attack, ...) together with its
probability of occurrence ``p(x_i)`` — the quantity the MPMCS objective
multiplies across a cut set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ProbabilityError

__all__ = ["BasicEvent"]


@dataclass(frozen=True)
class BasicEvent:
    """A basic (leaf) event of a fault tree.

    Parameters
    ----------
    name:
        Unique identifier of the event within its fault tree (e.g. ``"x1"``).
    probability:
        Probability of occurrence, a float in the half-open interval ``(0, 1]``.
        Zero is rejected because a zero-probability event can never contribute
        to a cut set and its ``-log`` weight would be infinite (paper Step 3).
    description:
        Optional human-readable description used in reports.
    """

    name: str
    probability: float
    description: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ProbabilityError("basic event name must be a non-empty string")
        probability = self.probability
        if not isinstance(probability, (int, float)) or isinstance(probability, bool):
            raise ProbabilityError(
                f"probability of {self.name!r} must be a number, got {type(probability).__name__}"
            )
        if not math.isfinite(probability) or not 0.0 < probability <= 1.0:
            raise ProbabilityError(
                f"probability of {self.name!r} must lie in (0, 1], got {probability}"
            )

    @property
    def log_weight(self) -> float:
        """The ``-log(p)`` weight of this event (paper Step 3, Table I)."""
        return -math.log(self.probability)

    def with_probability(self, probability: float) -> "BasicEvent":
        """Return a copy of this event with a different probability."""
        return BasicEvent(name=self.name, probability=probability, description=self.description)
