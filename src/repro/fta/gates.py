"""Fault-tree logic gates.

The paper's core encoding handles AND and OR gates; k-of-n *voting* gates are
listed as future work and implemented here as well (they are monotone, so the
MPMCS theory carries over unchanged).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import FaultTreeError

__all__ = ["GateType", "Gate"]


class GateType(enum.Enum):
    """Supported gate types (all monotone/coherent)."""

    AND = "and"
    OR = "or"
    VOTING = "voting"  # k-of-n: output occurs when at least k inputs occur

    @classmethod
    def from_string(cls, text: str) -> "GateType":
        """Parse a gate type from its textual name (case-insensitive)."""
        normalised = text.strip().lower()
        aliases = {
            "and": cls.AND,
            "or": cls.OR,
            "voting": cls.VOTING,
            "vot": cls.VOTING,
            "atleast": cls.VOTING,
            "k-of-n": cls.VOTING,
            "kofn": cls.VOTING,
        }
        try:
            return aliases[normalised]
        except KeyError as exc:
            raise FaultTreeError(f"unknown gate type {text!r}") from exc


@dataclass(frozen=True)
class Gate:
    """An internal node of a fault tree.

    Parameters
    ----------
    name:
        Unique identifier of the gate within its fault tree.
    gate_type:
        One of :class:`GateType`.
    children:
        Names of the child nodes (gates or basic events), in order.
    k:
        Threshold for voting gates: the gate output occurs when at least ``k``
        of its children occur.  Must be ``None`` for AND/OR gates.
    description:
        Optional human-readable description used in reports.
    """

    name: str
    gate_type: GateType
    children: Tuple[str, ...]
    k: Optional[int] = None
    description: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise FaultTreeError("gate name must be a non-empty string")
        if not isinstance(self.gate_type, GateType):
            raise FaultTreeError(f"gate {self.name!r}: invalid gate type {self.gate_type!r}")
        children = tuple(self.children)
        object.__setattr__(self, "children", children)
        if not children:
            raise FaultTreeError(f"gate {self.name!r} must have at least one child")
        if len(set(children)) != len(children):
            raise FaultTreeError(f"gate {self.name!r} has duplicate children")
        if self.name in children:
            raise FaultTreeError(f"gate {self.name!r} cannot be its own child")
        if self.gate_type is GateType.VOTING:
            if self.k is None:
                raise FaultTreeError(f"voting gate {self.name!r} requires a threshold k")
            if not isinstance(self.k, int) or not 1 <= self.k <= len(children):
                raise FaultTreeError(
                    f"voting gate {self.name!r}: k={self.k!r} must be an integer in "
                    f"[1, {len(children)}]"
                )
        elif self.k is not None:
            raise FaultTreeError(
                f"gate {self.name!r} of type {self.gate_type.value} must not define k"
            )

    @property
    def arity(self) -> int:
        """Number of children."""
        return len(self.children)

    def describe(self) -> str:
        """Short human-readable summary, e.g. ``"G1: 2-of-3 voting gate"``."""
        if self.gate_type is GateType.VOTING:
            return f"{self.name}: {self.k}-of-{self.arity} voting gate"
        return f"{self.name}: {self.gate_type.value.upper()} gate with {self.arity} children"
