"""Fault-tree file-format parsers (Galileo ``.dft``, JSON, Open-PSA MEF XML)."""

from repro.fta.parsers.galileo import parse_galileo, parse_galileo_file
from repro.fta.parsers.json_format import parse_json, parse_json_file
from repro.fta.parsers.openpsa import parse_openpsa, parse_openpsa_file, to_openpsa

__all__ = [
    "parse_galileo",
    "parse_galileo_file",
    "parse_json",
    "parse_json_file",
    "parse_openpsa",
    "parse_openpsa_file",
    "to_openpsa",
]
