"""Parser for the Galileo static fault tree format (``.dft``).

Galileo is the de-facto standard exchange format used by the public fault-tree
benchmark collections the paper's scalability experiment draws on.  A static
Galileo file is a sequence of ``;``-terminated statements:

.. code-block:: text

    toplevel "System";
    "System" or "Detection" "Suppression";
    "Detection" and "x1" "x2";
    "Vote" 2of3 "a" "b" "c";
    "x1" prob=0.2;
    "x2" lambda=0.001;

Supported constructs:

* ``toplevel "<name>";`` — designates the top event;
* gate statements — ``and``, ``or``, and ``<k>of<n>`` voting gates;
* basic events with either a fixed probability (``prob=``) or an exponential
  failure rate (``lambda=``), the latter converted to a probability with the
  mission time supplied to the parser (``p = 1 - exp(-lambda * t)``);
* ``dorm=`` attributes on basic events are accepted and ignored (dormancy only
  matters for dynamic gates, which are outside the scope of the paper).

Dynamic gates (SPARE, FDEP, PAND, ...) are rejected with a clear error message
because the MPMCS encoding is defined for static (combinatorial) fault trees.
"""

from __future__ import annotations

import math
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import ParseError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["parse_galileo", "parse_galileo_file"]

_VOTING_RE = re.compile(r"^(\d+)of(\d+)$")
_DYNAMIC_GATES = {"pand", "por", "seq", "spare", "wsp", "csp", "hsp", "fdep", "pdep"}


def parse_galileo_file(
    path: Union[str, Path],
    *,
    mission_time: float = 1.0,
    name: Optional[str] = None,
) -> FaultTree:
    """Parse a Galileo ``.dft`` file from disk."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ParseError(f"cannot read Galileo file {path}: {exc}") from exc
    return parse_galileo(text, mission_time=mission_time, name=name or path.stem)


def parse_galileo(
    text: str,
    *,
    mission_time: float = 1.0,
    name: str = "galileo-tree",
) -> FaultTree:
    """Parse Galileo fault-tree text into a :class:`FaultTree`."""
    if mission_time <= 0:
        raise ParseError(f"mission time must be positive, got {mission_time}")

    statements = _split_statements(text)
    if not statements:
        raise ParseError("empty Galileo document")

    tree = FaultTree(name)
    top_event: Optional[str] = None

    for lineno, tokens in statements:
        head = tokens[0]
        if head.lower() == "toplevel":
            if len(tokens) != 2:
                raise ParseError(f"line {lineno}: toplevel statement expects exactly one name")
            if top_event is not None:
                raise ParseError(f"line {lineno}: duplicate toplevel statement")
            top_event = _unquote(tokens[1])
            continue

        node_name = _unquote(head)
        if len(tokens) < 2:
            raise ParseError(f"line {lineno}: incomplete statement for node {node_name!r}")

        keyword = tokens[1].lower()
        if keyword in _DYNAMIC_GATES:
            raise ParseError(
                f"line {lineno}: dynamic gate {keyword!r} is not supported; the MPMCS "
                "encoding applies to static fault trees"
            )
        if keyword in ("and", "or"):
            children = [_unquote(tok) for tok in tokens[2:]]
            if not children:
                raise ParseError(f"line {lineno}: gate {node_name!r} has no children")
            tree.add_gate(node_name, GateType.from_string(keyword), children)
            continue
        voting = _VOTING_RE.match(keyword)
        if voting:
            k = int(voting.group(1))
            children = [_unquote(tok) for tok in tokens[2:]]
            if not children:
                raise ParseError(f"line {lineno}: voting gate {node_name!r} has no children")
            declared_n = int(voting.group(2))
            if declared_n != len(children):
                raise ParseError(
                    f"line {lineno}: voting gate {node_name!r} declares {declared_n} inputs "
                    f"but lists {len(children)} children"
                )
            tree.add_gate(node_name, GateType.VOTING, children, k=k)
            continue

        # Otherwise: a basic event definition with key=value attributes.
        attributes = _parse_attributes(tokens[1:], lineno)
        probability = _probability_from_attributes(attributes, mission_time, node_name, lineno)
        tree.add_basic_event(node_name, probability)

    if top_event is None:
        raise ParseError("Galileo document has no toplevel statement")
    tree.set_top_event(top_event)
    tree.validate()
    return tree


# -- helpers -------------------------------------------------------------------------


def _split_statements(text: str) -> List[Tuple[int, List[str]]]:
    """Split the document into ``;``-terminated statements with line numbers."""
    statements: List[Tuple[int, List[str]]] = []
    current: List[str] = []
    current_line = 1
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//")[0].strip()
        if not line or line.startswith(("/*", "*")):
            continue
        while line:
            if ";" in line:
                chunk, line = line.split(";", 1)
                tokens = chunk.split()
                if not current:
                    current_line = lineno
                current.extend(tokens)
                if current:
                    statements.append((current_line, current))
                current = []
            else:
                if not current:
                    current_line = lineno
                current.extend(line.split())
                line = ""
    if current:
        raise ParseError(f"line {current_line}: statement not terminated by ';'")
    return statements


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        token = token[1:-1]
    if not token:
        raise ParseError("empty node name")
    return token


def _parse_attributes(tokens: List[str], lineno: int) -> Dict[str, float]:
    attributes: Dict[str, float] = {}
    for token in tokens:
        if "=" not in token:
            raise ParseError(
                f"line {lineno}: expected key=value attribute or gate keyword, got {token!r}"
            )
        key, _, value = token.partition("=")
        key = key.strip().lower()
        try:
            attributes[key] = float(value)
        except ValueError as exc:
            raise ParseError(f"line {lineno}: invalid numeric value in {token!r}") from exc
    return attributes


def _probability_from_attributes(
    attributes: Dict[str, float], mission_time: float, node_name: str, lineno: int
) -> float:
    if "prob" in attributes:
        return attributes["prob"]
    if "lambda" in attributes:
        rate = attributes["lambda"]
        if rate < 0:
            raise ParseError(f"line {lineno}: negative failure rate for {node_name!r}")
        return 1.0 - math.exp(-rate * mission_time)
    raise ParseError(
        f"line {lineno}: basic event {node_name!r} needs a 'prob=' or 'lambda=' attribute"
    )
