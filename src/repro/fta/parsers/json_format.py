"""JSON fault-tree format (MPMCS4FTA-compatible document structure).

The original MPMCS4FTA tool reads its models from JSON and writes its results
as JSON for the browser-based viewer (paper Fig. 2).  This module parses a
JSON document of the following shape into a :class:`FaultTree`:

.. code-block:: json

    {
      "name": "fps",
      "top": "TE",
      "events": [
        {"name": "x1", "probability": 0.2, "description": "sensor 1 fails"}
      ],
      "gates": [
        {"name": "TE", "type": "or", "children": ["detection", "x3"]},
        {"name": "vote", "type": "voting", "k": 2, "children": ["a", "b", "c"]}
      ]
    }

The writer lives in :mod:`repro.fta.serializers`; parse/serialise round-trips
are covered by property-based tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.exceptions import FaultTreeError, ParseError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["parse_json", "parse_json_file", "parse_json_document"]


def parse_json_file(path: Union[str, Path], *, name: Optional[str] = None) -> FaultTree:
    """Parse a JSON fault-tree file from disk."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ParseError(f"cannot read JSON fault tree {path}: {exc}") from exc
    return parse_json(text, name=name or path.stem)


def parse_json(text: str, *, name: Optional[str] = None) -> FaultTree:
    """Parse JSON fault-tree text into a :class:`FaultTree`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    return parse_json_document(document, name=name)


def parse_json_document(document: Mapping[str, Any], *, name: Optional[str] = None) -> FaultTree:
    """Build a :class:`FaultTree` from an already-decoded JSON document."""
    if not isinstance(document, Mapping):
        raise ParseError("fault tree document must be a JSON object")

    tree_name = name or document.get("name") or "json-tree"
    tree = FaultTree(str(tree_name))

    events = document.get("events")
    if not isinstance(events, list) or not events:
        raise ParseError("document must contain a non-empty 'events' list")
    for entry in events:
        if not isinstance(entry, Mapping):
            raise ParseError(f"event entry must be an object, got {entry!r}")
        event_name = entry.get("name")
        probability = entry.get("probability", entry.get("prob"))
        if event_name is None or probability is None:
            raise ParseError(f"event entry {entry!r} needs 'name' and 'probability'")
        try:
            tree.add_basic_event(
                str(event_name), float(probability), description=entry.get("description")
            )
        except FaultTreeError as exc:
            raise ParseError(str(exc)) from exc

    gates = document.get("gates", [])
    if not isinstance(gates, list):
        raise ParseError("'gates' must be a list")
    for entry in gates:
        if not isinstance(entry, Mapping):
            raise ParseError(f"gate entry must be an object, got {entry!r}")
        gate_name = entry.get("name")
        gate_type = entry.get("type")
        children = entry.get("children")
        if gate_name is None or gate_type is None or children is None:
            raise ParseError(f"gate entry {entry!r} needs 'name', 'type' and 'children'")
        if not isinstance(children, list) or not children:
            raise ParseError(f"gate {gate_name!r} must list at least one child")
        try:
            tree.add_gate(
                str(gate_name),
                GateType.from_string(str(gate_type)),
                [str(child) for child in children],
                k=entry.get("k"),
                description=entry.get("description"),
            )
        except FaultTreeError as exc:
            raise ParseError(str(exc)) from exc

    top = document.get("top") or document.get("top_event")
    if not top:
        raise ParseError("document must declare a 'top' event")
    tree.set_top_event(str(top))

    try:
        tree.validate()
    except FaultTreeError as exc:
        raise ParseError(f"invalid fault tree: {exc}") from exc
    return tree
