"""Parser and writer for the Open-PSA Model Exchange Format (subset).

The Open-PSA MEF is the XML interchange format used by several probabilistic
safety assessment tools (XFTA, SCRAM, ...).  This module supports the static
fault-tree subset relevant to MPMCS analysis:

.. code-block:: xml

    <opsa-mef>
      <define-fault-tree name="fps">
        <define-gate name="top">
          <or> <gate name="detection"/> <basic-event name="x3"/> </or>
        </define-gate>
        <define-gate name="detection">
          <and> <basic-event name="x1"/> <basic-event name="x2"/> </and>
        </define-gate>
      </define-fault-tree>
      <model-data>
        <define-basic-event name="x1"> <float value="0.2"/> </define-basic-event>
      </model-data>
    </opsa-mef>

Supported gate connectives: ``and``, ``or`` and ``atleast`` (with a ``min``
attribute, i.e. voting gates).  Basic-event probabilities may be given either
inside the fault tree or in ``model-data``; events referenced but never given
a probability are rejected.  Dynamic constructs are rejected with a clear
error message, mirroring the Galileo parser.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union
from xml.dom import minidom

from repro.exceptions import FaultTreeError, ParseError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["parse_openpsa", "parse_openpsa_file", "to_openpsa"]

_CONNECTIVES = {"and": GateType.AND, "or": GateType.OR, "atleast": GateType.VOTING}
_UNSUPPORTED = {"not", "xor", "nand", "nor", "imply", "iff", "cardinality"}


def parse_openpsa_file(path: Union[str, Path], *, name: Optional[str] = None) -> FaultTree:
    """Parse an Open-PSA MEF XML file from disk."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ParseError(f"cannot read Open-PSA file {path}: {exc}") from exc
    return parse_openpsa(text, name=name or path.stem)


def parse_openpsa(text: str, *, name: Optional[str] = None) -> FaultTree:
    """Parse Open-PSA MEF XML text into a :class:`FaultTree`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"invalid XML: {exc}") from exc
    if root.tag != "opsa-mef":
        raise ParseError(f"expected an <opsa-mef> document, got <{root.tag}>")

    tree_elements = root.findall("define-fault-tree")
    if not tree_elements:
        raise ParseError("document defines no <define-fault-tree>")
    if len(tree_elements) > 1:
        raise ParseError("multiple <define-fault-tree> definitions are not supported")
    tree_element = tree_elements[0]
    tree_name = name or tree_element.get("name") or "openpsa-tree"

    gates: Dict[str, Tuple[GateType, Optional[int], List[str]]] = {}
    probabilities: Dict[str, float] = {}

    for gate_element in tree_element.findall("define-gate"):
        gate_name = gate_element.get("name")
        if not gate_name:
            raise ParseError("<define-gate> without a name attribute")
        gates[gate_name] = _parse_gate_body(gate_element, gate_name)

    # Basic events may be defined inside the fault tree or under <model-data>.
    for scope in (tree_element, root.find("model-data")):
        if scope is None:
            continue
        for event_element in scope.findall("define-basic-event"):
            event_name = event_element.get("name")
            if not event_name:
                raise ParseError("<define-basic-event> without a name attribute")
            probabilities[event_name] = _parse_probability(event_element, event_name)

    referenced_events = {
        child
        for _, _, children in gates.values()
        for child in children
        if child not in gates
    }
    missing = referenced_events - set(probabilities)
    if missing:
        raise ParseError(
            f"basic events referenced but never given a probability: {sorted(missing)}"
        )

    tree = FaultTree(tree_name)
    try:
        for event_name in sorted(referenced_events | set(probabilities)):
            if event_name in probabilities:
                tree.add_basic_event(event_name, probabilities[event_name])
        for gate_name, (gate_type, k, children) in gates.items():
            tree.add_gate(gate_name, gate_type, children, k=k)
    except FaultTreeError as exc:
        raise ParseError(str(exc)) from exc

    top = tree_element.get("top-event") or _infer_top(gates)
    tree.set_top_event(top)
    try:
        tree.validate()
    except FaultTreeError as exc:
        raise ParseError(f"invalid fault tree: {exc}") from exc
    return tree


def _parse_gate_body(
    gate_element: ET.Element, gate_name: str
) -> Tuple[GateType, Optional[int], List[str]]:
    connectives = [child for child in gate_element if child.tag != "label"]
    if len(connectives) != 1:
        raise ParseError(f"gate {gate_name!r} must contain exactly one connective element")
    connective = connectives[0]
    tag = connective.tag
    if tag in _UNSUPPORTED:
        raise ParseError(
            f"gate {gate_name!r}: connective <{tag}> is not supported by the MPMCS "
            "encoding (only monotone and/or/atleast gates are)"
        )
    if tag not in _CONNECTIVES:
        raise ParseError(f"gate {gate_name!r}: unknown connective <{tag}>")

    children: List[str] = []
    for reference in connective:
        if reference.tag in ("gate", "basic-event", "event", "house-event"):
            child_name = reference.get("name")
            if not child_name:
                raise ParseError(f"gate {gate_name!r}: child reference without a name")
            children.append(child_name)
        else:
            raise ParseError(
                f"gate {gate_name!r}: nested <{reference.tag}> elements are not supported; "
                "define intermediate gates explicitly"
            )
    if not children:
        raise ParseError(f"gate {gate_name!r} has no children")

    k: Optional[int] = None
    gate_type = _CONNECTIVES[tag]
    if gate_type is GateType.VOTING:
        min_attribute = connective.get("min")
        if min_attribute is None:
            raise ParseError(f"gate {gate_name!r}: <atleast> requires a 'min' attribute")
        try:
            k = int(min_attribute)
        except ValueError as exc:
            raise ParseError(f"gate {gate_name!r}: invalid min={min_attribute!r}") from exc
    return gate_type, k, children


def _parse_probability(event_element: ET.Element, event_name: str) -> float:
    value_element = event_element.find("float")
    if value_element is None:
        raise ParseError(
            f"basic event {event_name!r}: only constant <float value=...> probabilities "
            "are supported"
        )
    raw = value_element.get("value")
    try:
        return float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ParseError(f"basic event {event_name!r}: invalid probability {raw!r}") from exc


def _infer_top(gates: Dict[str, Tuple[GateType, Optional[int], List[str]]]) -> str:
    """The top event is the unique gate that no other gate references."""
    if not gates:
        raise ParseError("fault tree defines no gates; cannot infer a top event")
    referenced = {child for _, _, children in gates.values() for child in children}
    candidates = [name for name in gates if name not in referenced]
    if len(candidates) != 1:
        raise ParseError(
            f"cannot infer the top event: candidate roots are {sorted(candidates)}; "
            "set the 'top-event' attribute on <define-fault-tree>"
        )
    return candidates[0]


def to_openpsa(tree: FaultTree) -> str:
    """Serialise ``tree`` to Open-PSA MEF XML text."""
    tree.validate()
    root = ET.Element("opsa-mef")
    tree_element = ET.SubElement(
        root, "define-fault-tree", {"name": tree.name, "top-event": tree.top_event}
    )
    for gate in tree.gates.values():
        gate_element = ET.SubElement(tree_element, "define-gate", {"name": gate.name})
        if gate.gate_type is GateType.VOTING:
            connective = ET.SubElement(gate_element, "atleast", {"min": str(gate.k)})
        else:
            connective = ET.SubElement(gate_element, gate.gate_type.value)
        for child in gate.children:
            tag = "gate" if tree.is_gate(child) else "basic-event"
            ET.SubElement(connective, tag, {"name": child})

    model_data = ET.SubElement(root, "model-data")
    for event in tree.events.values():
        event_element = ET.SubElement(model_data, "define-basic-event", {"name": event.name})
        ET.SubElement(event_element, "float", {"value": repr(event.probability)})

    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")
