"""The fault tree container.

A :class:`FaultTree` is a directed acyclic graph of gates and basic events
with a designated *top event* (the undesired system state).  Although commonly
called a tree, sharing of sub-trees and basic events between gates is allowed,
as in the Galileo format and real-world models.

The class enforces the structural invariants the rest of the library relies
on (unique names, defined children, acyclicity, a reachable top event) and
offers traversal and statistics helpers used by the analyses, the workload
generator, and the reporting layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.exceptions import FaultTreeError
from repro.fta.events import BasicEvent
from repro.fta.gates import Gate, GateType

__all__ = ["FaultTree"]

Node = Union[BasicEvent, Gate]


class FaultTree:
    """A fault tree (more precisely, a fault DAG) with probabilities.

    Nodes are added with :meth:`add_basic_event` and :meth:`add_gate`; the top
    event is set either explicitly through :meth:`set_top_event` or via the
    ``top_event`` constructor argument.  :meth:`validate` checks the full set
    of structural invariants and is called automatically by the analyses.
    """

    def __init__(self, name: str = "fault-tree", *, top_event: Optional[str] = None) -> None:
        if not name:
            raise FaultTreeError("fault tree name must be non-empty")
        self.name = name
        self._events: Dict[str, BasicEvent] = {}
        self._gates: Dict[str, Gate] = {}
        self._top_event: Optional[str] = top_event
        self._version = 0
        # Version-keyed memos for the two traversals every analysis repeats.
        # Mutating methods bump _version, which invalidates both implicitly.
        self._validated_version: Optional[int] = None
        self._topo_memo: Optional[Tuple[int, Tuple[str, ...]]] = None

    # -- construction -------------------------------------------------------------

    def add_basic_event(
        self,
        name: str,
        probability: float,
        *,
        description: Optional[str] = None,
    ) -> BasicEvent:
        """Add a basic event; returns the created :class:`BasicEvent`."""
        event = BasicEvent(name=name, probability=probability, description=description)
        self._check_fresh_name(name)
        self._events[name] = event
        self._version += 1
        return event

    def add_event(self, event: BasicEvent) -> BasicEvent:
        """Add an already-constructed :class:`BasicEvent`."""
        self._check_fresh_name(event.name)
        self._events[event.name] = event
        self._version += 1
        return event

    def add_gate(
        self,
        name: str,
        gate_type: Union[GateType, str],
        children: Sequence[str],
        *,
        k: Optional[int] = None,
        description: Optional[str] = None,
    ) -> Gate:
        """Add a gate; returns the created :class:`Gate`.

        Children may be declared before or after the gate itself; undefined
        children are only rejected at :meth:`validate` time, which makes
        top-down model construction convenient.
        """
        if isinstance(gate_type, str):
            gate_type = GateType.from_string(gate_type)
        gate = Gate(
            name=name,
            gate_type=gate_type,
            children=tuple(children),
            k=k,
            description=description,
        )
        self._check_fresh_name(name)
        self._gates[name] = gate
        self._version += 1
        return gate

    def set_top_event(self, name: str) -> None:
        """Declare ``name`` (an existing or future gate/event) as the top event."""
        if not name:
            raise FaultTreeError("top event name must be non-empty")
        self._top_event = name
        self._version += 1

    def _check_fresh_name(self, name: str) -> None:
        if name in self._events or name in self._gates:
            raise FaultTreeError(f"node name {name!r} is already used in fault tree {self.name!r}")

    # -- accessors -----------------------------------------------------------------

    @property
    def top_event(self) -> str:
        if self._top_event is None:
            raise FaultTreeError(f"fault tree {self.name!r} has no top event")
        return self._top_event

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every structural or probability change.

        Lets caches (e.g. :class:`repro.api.ArtifactCache`) memoise derived
        values per tree object and detect staleness without re-reading the
        whole structure.
        """
        return self._version

    @property
    def events(self) -> Dict[str, BasicEvent]:
        """Mapping of basic event name to :class:`BasicEvent` (copy)."""
        return dict(self._events)

    @property
    def gates(self) -> Dict[str, Gate]:
        """Mapping of gate name to :class:`Gate` (copy)."""
        return dict(self._gates)

    @property
    def event_names(self) -> Tuple[str, ...]:
        return tuple(self._events.keys())

    @property
    def gate_names(self) -> Tuple[str, ...]:
        return tuple(self._gates.keys())

    @property
    def num_events(self) -> int:
        return len(self._events)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    @property
    def num_nodes(self) -> int:
        """Total node count (gates plus basic events)."""
        return len(self._events) + len(self._gates)

    def node(self, name: str) -> Node:
        """Return the gate or basic event called ``name``."""
        if name in self._events:
            return self._events[name]
        if name in self._gates:
            return self._gates[name]
        raise FaultTreeError(f"unknown node {name!r} in fault tree {self.name!r}")

    def is_event(self, name: str) -> bool:
        return name in self._events

    def is_gate(self, name: str) -> bool:
        return name in self._gates

    def probability(self, event_name: str) -> float:
        """Probability of the basic event called ``event_name``."""
        if event_name not in self._events:
            raise FaultTreeError(f"unknown basic event {event_name!r}")
        return self._events[event_name].probability

    def probabilities(self) -> Dict[str, float]:
        """Mapping of every basic event name to its probability."""
        return {name: event.probability for name, event in self._events.items()}

    def set_probability(self, event_name: str, probability: float) -> None:
        """Replace the probability of an existing basic event."""
        if event_name not in self._events:
            raise FaultTreeError(f"unknown basic event {event_name!r}")
        self._events[event_name] = self._events[event_name].with_probability(probability)
        self._version += 1

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raise :class:`FaultTreeError` otherwise.

        Invariants:

        * a top event is declared and refers to an existing node;
        * every gate child refers to an existing node;
        * the gate graph is acyclic;
        * every node is reachable from the top event (unreachable nodes almost
          always indicate a modelling error);
        * the tree contains at least one basic event.

        Validation is memoised per :attr:`version`: analyses re-validate
        liberally, and re-walking an unchanged DAG every time is pure
        overhead on hot sweep paths.
        """
        if self._validated_version == self._version:
            return
        if self._top_event is None:
            raise FaultTreeError(f"fault tree {self.name!r} has no top event")
        if self._top_event not in self._events and self._top_event not in self._gates:
            raise FaultTreeError(
                f"top event {self._top_event!r} is not a node of fault tree {self.name!r}"
            )
        if not self._events:
            raise FaultTreeError(f"fault tree {self.name!r} has no basic events")

        for gate in self._gates.values():
            for child in gate.children:
                if child not in self._events and child not in self._gates:
                    raise FaultTreeError(
                        f"gate {gate.name!r} references undefined child {child!r}"
                    )

        self._check_acyclic()

        reachable = set(self.reachable_from(self._top_event))
        unreachable = (set(self._events) | set(self._gates)) - reachable
        if unreachable:
            raise FaultTreeError(
                f"nodes not reachable from the top event: {sorted(unreachable)}"
            )
        self._validated_version = self._version

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}  # 0 = unvisited, 1 = on stack, 2 = done

        for root in self._gates:
            if state.get(root, 0) == 2:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(self._children_of(root)))]
            state[root] = 1
            while stack:
                node, child_iter = stack[-1]
                advanced = False
                for child in child_iter:
                    child_state = state.get(child, 0)
                    if child_state == 1:
                        raise FaultTreeError(
                            f"fault tree {self.name!r} contains a cycle through {child!r}"
                        )
                    if child_state == 0 and child in self._gates:
                        state[child] = 1
                        stack.append((child, iter(self._children_of(child))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    stack.pop()

    def _children_of(self, name: str) -> Tuple[str, ...]:
        gate = self._gates.get(name)
        return gate.children if gate is not None else ()

    # -- traversal -------------------------------------------------------------------

    def reachable_from(self, name: str) -> Iterator[str]:
        """Yield every node reachable from ``name`` (including ``name``), DFS order."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            yield current
            stack.extend(reversed(self._children_of(current)))

    def topological_order(self) -> List[str]:
        """Return gate/event names in bottom-up topological order.

        Children always appear before their parents, so analyses can evaluate
        gates in a single pass.  Only nodes reachable from the top event are
        included.  The order is memoised per :attr:`version` (a fresh list is
        returned each call) because evaluation-heavy paths — cut-set checks,
        sweeps — ask for it thousands of times on an unchanged tree.
        """
        memo = self._topo_memo
        if memo is not None and memo[0] == self._version:
            return list(memo[1])
        self.validate()
        order: List[str] = []
        visited: Set[str] = set()

        def visit(node: str) -> None:
            stack: List[Tuple[str, int]] = [(node, 0)]
            while stack:
                current, child_index = stack.pop()
                if current in visited:
                    continue
                children = self._children_of(current)
                if child_index < len(children):
                    stack.append((current, child_index + 1))
                    child = children[child_index]
                    if child not in visited:
                        stack.append((child, 0))
                else:
                    visited.add(current)
                    order.append(current)

        visit(self.top_event)
        self._topo_memo = (self._version, tuple(order))
        return order

    def events_reachable_from_top(self) -> Tuple[str, ...]:
        """Names of basic events reachable from the top event."""
        return tuple(
            name for name in self.reachable_from(self.top_event) if name in self._events
        )

    def depth(self) -> int:
        """Length of the longest path from the top event to a leaf."""
        self.validate()
        depths: Dict[str, int] = {}
        for name in self.topological_order():
            children = self._children_of(name)
            if not children:
                depths[name] = 1
            else:
                depths[name] = 1 + max(depths[child] for child in children)
        return depths[self.top_event]

    # -- semantics ---------------------------------------------------------------------

    def evaluate(self, event_states: Mapping[str, bool]) -> bool:
        """Evaluate the top event for a given assignment of basic-event states.

        Missing events default to ``False`` (not occurred).  This is the
        structure function ``f(t)`` evaluated directly on the DAG, used as the
        ground-truth oracle by the analyses and the property-based tests.
        """
        values: Dict[str, bool] = {}
        for name in self.topological_order():
            if name in self._events:
                values[name] = bool(event_states.get(name, False))
                continue
            gate = self._gates[name]
            child_values = [values[child] for child in gate.children]
            if gate.gate_type is GateType.AND:
                values[name] = all(child_values)
            elif gate.gate_type is GateType.OR:
                values[name] = any(child_values)
            else:
                values[name] = sum(child_values) >= (gate.k or 0)
        return values[self.top_event]

    def is_cut_set(self, events: Iterable[str]) -> bool:
        """True when occurrence of exactly ``events`` triggers the top event."""
        states = {name: True for name in events}
        return self.evaluate(states)

    def is_minimal_cut_set(self, events: Iterable[str]) -> bool:
        """True when ``events`` is a cut set and no proper subset is one."""
        event_list = list(dict.fromkeys(events))
        if not self.is_cut_set(event_list):
            return False
        for index in range(len(event_list)):
            subset = event_list[:index] + event_list[index + 1 :]
            if self.is_cut_set(subset):
                return False
        return True

    # -- misc ------------------------------------------------------------------------

    def copy(self, *, name: Optional[str] = None) -> "FaultTree":
        """Return a structural copy of this tree (nodes are immutable and shared)."""
        clone = FaultTree(name or self.name, top_event=self._top_event)
        clone._events = dict(self._events)
        clone._gates = dict(self._gates)
        return clone

    def statistics(self) -> Dict[str, object]:
        """Summary statistics used by reports and the benchmark harness."""
        self.validate()
        gate_counts: Dict[str, int] = {"and": 0, "or": 0, "voting": 0}
        for gate in self._gates.values():
            gate_counts[gate.gate_type.value] += 1
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_gates": self.num_gates,
            "num_basic_events": self.num_events,
            "num_and_gates": gate_counts["and"],
            "num_or_gates": gate_counts["or"],
            "num_voting_gates": gate_counts["voting"],
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultTree(name={self.name!r}, events={self.num_events}, "
            f"gates={self.num_gates}, top={self._top_event!r})"
        )
