"""Fault-tree serialisers (JSON document/text and Galileo ``.dft`` text)."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["to_json_document", "to_json", "to_galileo"]


def to_json_document(tree: FaultTree) -> Dict[str, Any]:
    """Serialise ``tree`` to the JSON document structure of the parsers module."""
    tree.validate()
    events: List[Dict[str, Any]] = []
    for event in tree.events.values():
        entry: Dict[str, Any] = {"name": event.name, "probability": event.probability}
        if event.description:
            entry["description"] = event.description
        events.append(entry)

    gates: List[Dict[str, Any]] = []
    for gate in tree.gates.values():
        entry = {
            "name": gate.name,
            "type": gate.gate_type.value,
            "children": list(gate.children),
        }
        if gate.gate_type is GateType.VOTING:
            entry["k"] = gate.k
        if gate.description:
            entry["description"] = gate.description
        gates.append(entry)

    return {
        "name": tree.name,
        "top": tree.top_event,
        "events": events,
        "gates": gates,
    }


def to_json(tree: FaultTree, *, indent: int = 2) -> str:
    """Serialise ``tree`` to JSON text."""
    return json.dumps(to_json_document(tree), indent=indent, sort_keys=False)


def to_galileo(tree: FaultTree) -> str:
    """Serialise ``tree`` to Galileo ``.dft`` text.

    Voting gates are written with the ``<k>of<n>`` keyword; probabilities are
    written as fixed ``prob=`` attributes.
    """
    tree.validate()
    lines: List[str] = [f'toplevel "{tree.top_event}";']
    for gate in tree.gates.values():
        children = " ".join(f'"{child}"' for child in gate.children)
        if gate.gate_type is GateType.VOTING:
            keyword = f"{gate.k}of{len(gate.children)}"
        else:
            keyword = gate.gate_type.value
        lines.append(f'"{gate.name}" {keyword} {children};')
    for event in tree.events.values():
        lines.append(f'"{event.name}" prob={event.probability!r};')
    return "\n".join(lines) + "\n"
