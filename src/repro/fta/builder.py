"""Fluent builder for fault trees.

The builder offers a compact way to construct fault trees in code — used by
the examples, the canonical tree library, and the tests:

.. code-block:: python

    tree = (
        FaultTreeBuilder("fps")
        .basic_event("x1", 0.2)
        .basic_event("x2", 0.1)
        .and_gate("detection", ["x1", "x2"])
        .or_gate("top", ["detection", "x3"])
        .basic_event("x3", 0.001)
        .top("top")
        .build()
    )
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import FaultTreeError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["FaultTreeBuilder"]


class FaultTreeBuilder:
    """Incrementally build and validate a :class:`~repro.fta.tree.FaultTree`."""

    def __init__(self, name: str = "fault-tree") -> None:
        self._tree = FaultTree(name)
        self._top_set = False

    def basic_event(
        self, name: str, probability: float, *, description: Optional[str] = None
    ) -> "FaultTreeBuilder":
        """Add a basic event with its probability of occurrence."""
        self._tree.add_basic_event(name, probability, description=description)
        return self

    def and_gate(
        self, name: str, children: Sequence[str], *, description: Optional[str] = None
    ) -> "FaultTreeBuilder":
        """Add an AND gate over ``children``."""
        self._tree.add_gate(name, GateType.AND, children, description=description)
        return self

    def or_gate(
        self, name: str, children: Sequence[str], *, description: Optional[str] = None
    ) -> "FaultTreeBuilder":
        """Add an OR gate over ``children``."""
        self._tree.add_gate(name, GateType.OR, children, description=description)
        return self

    def voting_gate(
        self,
        name: str,
        k: int,
        children: Sequence[str],
        *,
        description: Optional[str] = None,
    ) -> "FaultTreeBuilder":
        """Add a k-of-n voting gate over ``children``."""
        self._tree.add_gate(name, GateType.VOTING, children, k=k, description=description)
        return self

    def top(self, name: str) -> "FaultTreeBuilder":
        """Declare the top event."""
        self._tree.set_top_event(name)
        self._top_set = True
        return self

    def build(self, *, validate: bool = True) -> FaultTree:
        """Finalise the tree; validation is on by default."""
        if not self._top_set:
            raise FaultTreeError("top event was never declared; call .top(name) before .build()")
        if validate:
            self._tree.validate()
        return self._tree
