"""Conversion of fault trees to Boolean formulas.

Section II of the paper represents a fault tree ``F`` as a Boolean equation
``f(t)`` expressing the ways the top event ``t`` can be satisfied; Step 1 of
the resolution method then builds the *success tree* ``X(t) = ¬f(t)`` by
complementing all events and swapping AND and OR gates.  Both operations live
here:

* :func:`structure_function` — the fault-tree structure function ``f(t)`` as a
  :class:`~repro.logic.formula.Formula` over the basic event variables;
* :func:`success_function` — its complement in negation normal form.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import FaultTreeError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree
from repro.logic.formula import And, AtLeast, Formula, Or, Var, conjoin, disjoin
from repro.logic.simplify import complement

__all__ = ["structure_function", "success_function"]


def structure_function(tree: FaultTree) -> Formula:
    """Return the structure function ``f(t)`` of ``tree``.

    The formula is built bottom-up over the DAG, so shared sub-trees produce
    shared (identical, hash-equal) sub-formulas, which the Tseitin encoder
    then encodes only once.
    """
    tree.validate()
    formulas: Dict[str, Formula] = {}
    for name in tree.topological_order():
        if tree.is_event(name):
            formulas[name] = Var(name)
            continue
        gate = tree.gates[name]
        children = [formulas[child] for child in gate.children]
        if gate.gate_type is GateType.AND:
            formulas[name] = conjoin(children)
        elif gate.gate_type is GateType.OR:
            formulas[name] = disjoin(children)
        elif gate.gate_type is GateType.VOTING:
            formulas[name] = AtLeast(gate.k or 1, children)
        else:  # pragma: no cover - defensive
            raise FaultTreeError(f"unsupported gate type {gate.gate_type!r}")
    return formulas[tree.top_event]


def success_function(tree: FaultTree) -> Formula:
    """Return the success-tree formula ``X(t) = ¬f(t)`` in negation normal form.

    For AND/OR trees this is exactly the classical success tree obtained by
    complementing all the events and swapping the gate types (paper Step 1);
    voting gates complement into ``(n-k+1)``-of-``n`` gates over complemented
    events.
    """
    return complement(structure_function(tree))
