"""Common cause failure (CCF) modelling with the beta-factor method.

Redundant components often fail together because of a shared root cause
(manufacturing defects, environmental stress, maintenance errors).  Ignoring
common cause failures makes redundant architectures look far safer than they
are, so standards such as IEC 61508 require CCF to be modelled explicitly.

The *beta-factor* model splits each component failure probability ``p`` into
an independent part ``(1 - β)·p`` and a common part ``β·p`` shared by every
member of the CCF group.  Structurally, each basic event ``e`` of a group is
replaced by ``OR(e_independent, group_ccf_event)``.

Because the transformation produces an ordinary (coherent) fault tree, every
analysis in this library — the MPMCS pipeline included — applies unchanged to
the transformed tree.  In particular the MPMCS frequently *shifts from an
n-component cut set to the single CCF event*, which is exactly the insight the
beta-factor model is meant to surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import FaultTreeError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["CCFGroup", "apply_beta_factor_model"]

#: Suffix appended to the independent-failure copy of a group member.
INDEPENDENT_SUFFIX = "__indep"
#: Prefix of the generated common-cause basic events.
CCF_PREFIX = "ccf__"
#: Suffix of the OR gate that replaces each group member.
MEMBER_GATE_SUFFIX = "__with_ccf"


@dataclass(frozen=True)
class CCFGroup:
    """A common cause failure group under the beta-factor model.

    Parameters
    ----------
    name:
        Group identifier (used to name the generated CCF event).
    members:
        Names of the basic events in the group (at least two).
    beta:
        Fraction of each member's failure probability attributed to the common
        cause, in the open interval (0, 1).
    """

    name: str
    members: Tuple[str, ...]
    beta: float

    def __init__(self, name: str, members: Sequence[str], beta: float) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "members", tuple(members))
        object.__setattr__(self, "beta", float(beta))
        if not name:
            raise FaultTreeError("CCF group name must be non-empty")
        if len(self.members) < 2:
            raise FaultTreeError(f"CCF group {name!r} needs at least two members")
        if len(set(self.members)) != len(self.members):
            raise FaultTreeError(f"CCF group {name!r} lists duplicate members")
        if not 0.0 < self.beta < 1.0:
            raise FaultTreeError(f"CCF group {name!r}: beta must lie in (0, 1), got {beta}")


def apply_beta_factor_model(
    tree: FaultTree,
    groups: Iterable[CCFGroup],
    *,
    name: Optional[str] = None,
) -> FaultTree:
    """Return a new fault tree with the beta-factor CCF transformation applied.

    Every member event ``e`` (probability ``p``) of each group becomes an OR
    gate ``e__with_ccf`` over:

    * a new independent basic event ``e__indep`` with probability ``(1-β)·p``;
    * the group's shared basic event ``ccf__<group>`` whose probability is
      ``β · max(p_members)`` (the conservative convention when member
      probabilities differ).

    Gates referencing ``e`` are rewired to reference ``e__with_ccf``.  The
    common-cause probability of a group

    Raises
    ------
    FaultTreeError
        If a group references unknown events, events shared between two
        groups, or the top event itself.
    """
    tree.validate()
    group_list = list(groups)
    if not group_list:
        return tree.copy(name=name or tree.name)

    _validate_groups(tree, group_list)

    transformed = FaultTree(name or f"{tree.name}-ccf")
    membership: Dict[str, CCFGroup] = {
        member: group for group in group_list for member in group.members
    }

    # Basic events: split members, keep the rest unchanged.
    for event in tree.events.values():
        group = membership.get(event.name)
        if group is None:
            transformed.add_basic_event(event.name, event.probability, description=event.description)
        else:
            independent_probability = (1.0 - group.beta) * event.probability
            transformed.add_basic_event(
                f"{event.name}{INDEPENDENT_SUFFIX}",
                independent_probability,
                description=f"{event.description or event.name} (independent part)",
            )

    # One shared CCF event per group.
    for group in group_list:
        common_probability = group.beta * max(tree.probability(member) for member in group.members)
        transformed.add_basic_event(
            f"{CCF_PREFIX}{group.name}",
            common_probability,
            description=f"Common cause failure of group {group.name!r}",
        )

    # Replacement OR gates for the members.
    for member, group in membership.items():
        transformed.add_gate(
            f"{member}{MEMBER_GATE_SUFFIX}",
            GateType.OR,
            [f"{member}{INDEPENDENT_SUFFIX}", f"{CCF_PREFIX}{group.name}"],
            description=f"{member} including common cause contribution",
        )

    # Original gates, with member children rewired to the replacement gates.
    for gate in tree.gates.values():
        children = [
            f"{child}{MEMBER_GATE_SUFFIX}" if child in membership else child
            for child in gate.children
        ]
        transformed.add_gate(
            gate.name, gate.gate_type, children, k=gate.k, description=gate.description
        )

    top = tree.top_event
    transformed.set_top_event(f"{top}{MEMBER_GATE_SUFFIX}" if top in membership else top)
    transformed.validate()
    return transformed


def _validate_groups(tree: FaultTree, groups: List[CCFGroup]) -> None:
    seen: Dict[str, str] = {}
    names = set()
    for group in groups:
        if group.name in names:
            raise FaultTreeError(f"duplicate CCF group name {group.name!r}")
        names.add(group.name)
        for member in group.members:
            if not tree.is_event(member):
                raise FaultTreeError(
                    f"CCF group {group.name!r} references unknown basic event {member!r}"
                )
            if member in seen:
                raise FaultTreeError(
                    f"basic event {member!r} belongs to CCF groups {seen[member]!r} "
                    f"and {group.name!r}; overlapping groups are not supported"
                )
            seen[member] = group.name
