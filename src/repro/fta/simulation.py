"""Monte Carlo simulation of dynamic fault trees.

The simulator draws exponential failure times for every basic event, derives
the failure time of every gate according to the dynamic semantics (order for
PAND/SEQ, activation and dormancy for SPARE, forced failures for FDEP), and
estimates the top-event unreliability at a mission time as the fraction of
samples in which the top node fails within the mission.

Modelling notes
---------------
* Spare activation uses the memoryless property of the exponential
  distribution: a warm spare that survives its dormant period starts a fresh
  exponential lifetime at activation; a cold spare cannot fail while dormant.
* A spare shared between several SPARE gates is simulated independently per
  gate (no competition for the shared unit) — a documented simplification.
* FDEP dependencies are resolved by fixed-point iteration, so cascades of
  functional dependencies (a trigger that is itself forced by another FDEP)
  are handled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.numerics import np, require_numpy

from repro.exceptions import AnalysisError
from repro.fta.dynamic import DynamicFaultTree, DynamicGateType
from repro.fta.gates import GateType

__all__ = ["DFTSimulationResult", "simulate_dft"]

_INFINITY = math.inf


@dataclass(frozen=True)
class DFTSimulationResult:
    """Monte Carlo estimate of a dynamic fault tree's unreliability."""

    tree_name: str
    mission_time: float
    num_samples: int
    failures: int
    unreliability: float
    std_error: float
    confidence_interval: Tuple[float, float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "tree": self.tree_name,
            "mission_time": self.mission_time,
            "samples": self.num_samples,
            "failures": self.failures,
            "unreliability": self.unreliability,
            "std_error": self.std_error,
            "confidence_interval": list(self.confidence_interval),
        }


def simulate_dft(
    dft: DynamicFaultTree,
    mission_time: float,
    *,
    num_samples: int = 20_000,
    seed: Optional[int] = 2020,
) -> DFTSimulationResult:
    """Estimate the unreliability of ``dft`` at ``mission_time`` by simulation."""
    require_numpy("dynamic fault-tree simulation (simulate_dft)")
    dft.validate()
    if mission_time <= 0.0 or not math.isfinite(mission_time):
        raise AnalysisError(f"mission time must be positive and finite, got {mission_time}")
    if num_samples < 1:
        raise AnalysisError(f"at least one sample is required, got {num_samples}")

    rng = np.random.default_rng(seed)
    failures = 0
    for _ in range(num_samples):
        if _sample_top_failure_time(dft, rng) <= mission_time:
            failures += 1

    unreliability = failures / num_samples
    std_error = math.sqrt(max(unreliability * (1.0 - unreliability), 0.0) / num_samples)
    half_width = 1.959963984540054 * std_error
    interval = (max(unreliability - half_width, 0.0), min(unreliability + half_width, 1.0))
    return DFTSimulationResult(
        tree_name=dft.name,
        mission_time=mission_time,
        num_samples=num_samples,
        failures=failures,
        unreliability=unreliability,
        std_error=std_error,
        confidence_interval=interval,
    )


# ------------------------------------------------------------------ sampling internals


def _sample_top_failure_time(dft: DynamicFaultTree, rng: np.random.Generator) -> float:
    """Failure time of the top node in one Monte Carlo sample."""
    raw_times: Dict[str, float] = {
        name: rng.exponential(1.0 / event.failure_rate) for name, event in dft.events.items()
    }
    effective = dict(raw_times)

    fdep_gates = [
        gate for gate in dft.dynamic_gates.values() if gate.gate_type is DynamicGateType.FDEP
    ]
    # Fixed-point iteration over FDEP cascades: each pass can only lower the
    # effective failure times, so at most len(fdep_gates) + 1 passes suffice.
    for _ in range(len(fdep_gates) + 1):
        node_times = _node_failure_times(dft, effective, rng)
        changed = False
        for gate in fdep_gates:
            trigger_time = node_times[gate.children[0]]
            for dependent in gate.children[1:]:
                forced = min(effective[dependent], trigger_time)
                if forced < effective[dependent]:
                    effective[dependent] = forced
                    changed = True
        if not changed:
            break
        node_times = None  # recompute on the next pass

    node_times = _node_failure_times(dft, effective, rng)
    return node_times[dft.top_event]


def _node_failure_times(
    dft: DynamicFaultTree,
    event_times: Dict[str, float],
    rng: np.random.Generator,
) -> Dict[str, float]:
    """Failure time of every node given the (effective) basic-event times."""
    memo: Dict[str, float] = dict(event_times)

    def visit(name: str) -> float:
        if name in memo:
            return memo[name]
        children = dft.children_of(name)
        child_times = [visit(child) for child in children]

        if name in dft.static_gates:
            _, gate_type, _, k = dft.static_gates[name]
            value = _static_gate_time(gate_type, child_times, k)
        else:
            gate = dft.dynamic_gates[name]
            if gate.gate_type in (DynamicGateType.PAND, DynamicGateType.SEQ):
                value = _priority_and_time(child_times)
            elif gate.gate_type is DynamicGateType.SPARE:
                value = _spare_time(gate, dft, child_times, rng)
            else:  # FDEP gates never propagate a failure themselves.
                value = _INFINITY
        memo[name] = value
        return value

    for node in list(dft.static_gates) + list(dft.dynamic_gates):
        visit(node)
    return memo


def _static_gate_time(gate_type: GateType, child_times: list, k: Optional[int]) -> float:
    if gate_type is GateType.AND:
        return max(child_times)
    if gate_type is GateType.OR:
        return min(child_times)
    # VOTING: the gate fails when the k-th child failure occurs.
    threshold = k or 1
    return sorted(child_times)[threshold - 1]


def _priority_and_time(child_times: list) -> float:
    """PAND/SEQ: all children fail, in left-to-right order."""
    for before, after in zip(child_times, child_times[1:]):
        if before > after:
            return _INFINITY
    last = child_times[-1]
    return last


def _spare_time(
    gate,
    dft: DynamicFaultTree,
    child_times: list,
    rng: np.random.Generator,
) -> float:
    """SPARE: primary plus spares activated in order, with dormancy scaling."""
    current = child_times[0]
    for spare_name in gate.children[1:]:
        rate = dft.events[spare_name].failure_rate
        if gate.dormancy <= 0.0:
            dormant_failure = _INFINITY
        else:
            dormant_failure = rng.exponential(1.0 / (gate.dormancy * rate))
        if dormant_failure <= current:
            continue  # the spare died while waiting and cannot take over
        current = current + rng.exponential(1.0 / rate)
    return current
