"""Continuous-time Markov chain (CTMC) substrate.

Dynamic fault-tree constructs (priority gates, spares) are classically
analysed by translating them to a CTMC and computing transient state
probabilities.  This package provides that substrate: a small, dependency-free
CTMC model with uniformization-based transient analysis and steady-state
solution, used by the dynamic fault-tree tests as an independent oracle for
the Monte Carlo simulator and usable on its own for availability models.
"""

from repro.markov.chain import ContinuousTimeMarkovChain

__all__ = ["ContinuousTimeMarkovChain"]
