"""A continuous-time Markov chain with transient and steady-state analysis.

States are identified by arbitrary hashable labels.  Transition rates are
added one by one; the chain computes

* transient state probabilities at a mission time via **uniformization**
  (Jensen's method): the CTMC is turned into a discrete-time chain subordinated
  to a Poisson process of rate ``Lambda >= max_i |q_ii|`` and the transient
  distribution is the Poisson-weighted sum of the DTMC's step distributions —
  numerically robust and with a controllable truncation error;
* the steady-state distribution by solving ``pi Q = 0`` with the
  normalisation constraint (least-squares, which also handles chains with
  absorbing states by returning the limiting distribution of the absorbing
  class reached from the initial state only when it is unique).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.numerics import np, require_numpy

from repro.exceptions import AnalysisError

__all__ = ["ContinuousTimeMarkovChain"]

State = Hashable


class ContinuousTimeMarkovChain:
    """A finite-state CTMC built incrementally from labelled transitions.

    Parameters
    ----------
    initial_state:
        The state the chain starts in at time 0.  It is registered
        immediately; other states are registered as transitions mention them
        (or explicitly via :meth:`add_state`).
    """

    def __init__(self, initial_state: State) -> None:
        require_numpy("continuous-time Markov chain analysis")
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        self._transitions: Dict[Tuple[int, int], float] = {}
        self.initial_state = initial_state
        self.add_state(initial_state)

    # -- construction ----------------------------------------------------------

    def add_state(self, state: State) -> int:
        """Register ``state`` (idempotent); returns its internal index."""
        if state not in self._index:
            self._index[state] = len(self._states)
            self._states.append(state)
        return self._index[state]

    def add_transition(self, source: State, target: State, rate: float) -> None:
        """Add a transition ``source -> target`` with the given positive rate.

        Adding the same transition twice accumulates the rates (useful when
        several independent failure mechanisms lead to the same state change).
        """
        if not math.isfinite(rate) or rate <= 0.0:
            raise AnalysisError(f"transition rate must be positive and finite, got {rate}")
        if source == target:
            raise AnalysisError("self-loop transitions are not allowed in a CTMC")
        key = (self.add_state(source), self.add_state(target))
        self._transitions[key] = self._transitions.get(key, 0.0) + rate

    # -- accessors ---------------------------------------------------------------

    @property
    def states(self) -> Tuple[State, ...]:
        return tuple(self._states)

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    def generator_matrix(self) -> np.ndarray:
        """The infinitesimal generator ``Q`` (rows sum to zero)."""
        size = self.num_states
        matrix = np.zeros((size, size))
        for (source, target), rate in self._transitions.items():
            matrix[source, target] += rate
        np.fill_diagonal(matrix, 0.0)
        matrix[np.arange(size), np.arange(size)] = -matrix.sum(axis=1)
        return matrix

    def is_absorbing(self, state: State) -> bool:
        """True when ``state`` has no outgoing transition."""
        index = self._index.get(state)
        if index is None:
            raise AnalysisError(f"unknown state {state!r}")
        return all(source != index for source, _ in self._transitions)

    # -- transient analysis ---------------------------------------------------------

    def transient_distribution(
        self,
        time: float,
        *,
        epsilon: float = 1e-12,
        max_steps: int = 100_000,
    ) -> Dict[State, float]:
        """State probabilities at mission ``time`` from the initial state.

        Uses uniformization with truncation error below ``epsilon`` (the
        remaining Poisson tail mass).
        """
        if time < 0.0 or not math.isfinite(time):
            raise AnalysisError(f"mission time must be non-negative and finite, got {time}")
        size = self.num_states
        distribution = np.zeros(size)
        distribution[self._index[self.initial_state]] = 1.0
        if time == 0.0 or not self._transitions:
            return {state: float(distribution[self._index[state]]) for state in self._states}

        generator = self.generator_matrix()
        rate = float(max(-generator.diagonal().min(), 1e-30))
        uniformized = np.eye(size) + generator / rate

        poisson_mean = rate * time
        # Iteratively accumulate sum_k Poisson(k; Lambda t) * pi0 P^k.
        term_probability = math.exp(-poisson_mean)
        accumulated = term_probability
        result = distribution * term_probability
        step_distribution = distribution.copy()
        step = 0
        while 1.0 - accumulated > epsilon:
            step += 1
            if step > max_steps:
                raise AnalysisError(
                    f"uniformization did not converge within {max_steps} steps "
                    f"(Poisson mean {poisson_mean:.3g})"
                )
            step_distribution = step_distribution @ uniformized
            if term_probability > 0.0:
                term_probability *= poisson_mean / step
            else:  # underflow guard for very large Poisson means
                term_probability = math.exp(
                    -poisson_mean + step * math.log(poisson_mean) - math.lgamma(step + 1)
                )
            accumulated += term_probability
            result += term_probability * step_distribution

        total = result.sum()
        if total > 0.0:
            result = result / total
        return {state: float(result[self._index[state]]) for state in self._states}

    def probability_in(self, states: Iterable[State], time: float, **kwargs: float) -> float:
        """Probability of being in any of ``states`` at ``time``."""
        distribution = self.transient_distribution(time, **kwargs)
        total = 0.0
        for state in states:
            if state not in self._index:
                raise AnalysisError(f"unknown state {state!r}")
            total += distribution[state]
        return min(total, 1.0)

    def absorption_probability(self, time: float, **kwargs: float) -> float:
        """Probability of having been absorbed (any absorbing state) by ``time``."""
        absorbing = [state for state in self._states if self.is_absorbing(state)]
        if not absorbing:
            raise AnalysisError("the chain has no absorbing state")
        return self.probability_in(absorbing, time, **kwargs)

    # -- steady state ------------------------------------------------------------------

    def steady_state(self) -> Dict[State, float]:
        """The stationary distribution ``pi`` solving ``pi Q = 0``, ``sum pi = 1``.

        For chains with absorbing states this returns a distribution
        concentrated on the absorbing states (the least-squares solution of the
        constrained system); for irreducible chains it is the unique
        stationary distribution.
        """
        if not self._transitions:
            return {
                state: 1.0 if state == self.initial_state else 0.0 for state in self._states
            }
        generator = self.generator_matrix()
        size = self.num_states
        system = np.vstack([generator.T, np.ones((1, size))])
        rhs = np.zeros(size + 1)
        rhs[-1] = 1.0
        solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        solution = np.clip(solution, 0.0, None)
        total = solution.sum()
        if total <= 0.0:
            raise AnalysisError("failed to compute a steady-state distribution")
        solution /= total
        return {state: float(solution[self._index[state]]) for state in self._states}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContinuousTimeMarkovChain(states={self.num_states}, "
            f"transitions={self.num_transitions})"
        )
