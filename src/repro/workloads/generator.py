"""Seeded random fault-tree generator.

The paper's evaluation claims the MaxSAT approach "is able to scale to fault
trees with thousands of nodes in seconds".  The authors' benchmark trees are
not distributed with the paper, so the scalability experiment (E4 in
DESIGN.md) drives the pipeline with synthetic trees produced here.  The
generator controls exactly the quantities that matter for that claim — total
node count, depth, gate arity, AND/OR/voting mix, and the probability
distribution of basic events — and is fully deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree

__all__ = ["GeneratorConfig", "probability_walk", "random_fault_tree"]


@dataclass
class GeneratorConfig:
    """Parameters of the random fault-tree generator.

    Attributes
    ----------
    num_basic_events:
        Number of basic events (leaves) to generate.
    gate_arity:
        Inclusive ``(min, max)`` range of children per gate.
    and_ratio / or_ratio / voting_ratio:
        Relative frequencies of the gate types.  They are normalised, so any
        positive values work; voting gates pick ``k`` uniformly in
        ``[2, arity-1]`` (falling back to AND when the arity is too small).
    probability_range:
        Inclusive ``(low, high)`` range from which event probabilities are
        drawn log-uniformly (probabilities in real models span orders of
        magnitude, so a log-uniform draw is more realistic than uniform).
    event_reuse:
        Probability that a gate child reuses an already-placed node instead of
        consuming a fresh one, producing shared sub-trees (DAG structure).
    seed:
        PRNG seed; two calls with equal configs produce identical trees.
    """

    num_basic_events: int = 100
    gate_arity: Tuple[int, int] = (2, 4)
    and_ratio: float = 0.4
    or_ratio: float = 0.55
    voting_ratio: float = 0.05
    probability_range: Tuple[float, float] = (1e-5, 0.2)
    event_reuse: float = 0.0
    seed: int = 0

    def validate(self) -> None:
        if self.num_basic_events < 2:
            raise ConfigurationError("num_basic_events must be at least 2")
        low, high = self.gate_arity
        if low < 2 or high < low:
            raise ConfigurationError(f"invalid gate arity range {self.gate_arity}")
        if min(self.and_ratio, self.or_ratio, self.voting_ratio) < 0:
            raise ConfigurationError("gate ratios cannot be negative")
        if self.and_ratio + self.or_ratio + self.voting_ratio <= 0:
            raise ConfigurationError("at least one gate ratio must be positive")
        plow, phigh = self.probability_range
        if not 0 < plow <= phigh <= 1:
            raise ConfigurationError(f"invalid probability range {self.probability_range}")
        if not 0 <= self.event_reuse < 1:
            raise ConfigurationError("event_reuse must lie in [0, 1)")


def random_fault_tree(
    config: Optional[GeneratorConfig] = None,
    *,
    name: Optional[str] = None,
    **overrides: object,
) -> FaultTree:
    """Generate a random fault tree.

    Either pass a full :class:`GeneratorConfig` or keyword overrides of its
    fields, e.g. ``random_fault_tree(num_basic_events=500, seed=3)``.

    The construction is bottom-up: starting from the basic events, nodes are
    repeatedly grouped under fresh gates until a single root remains, which
    becomes the top event.  This guarantees every node is reachable from the
    top and the result always passes :meth:`FaultTree.validate`.
    """
    if config is None:
        config = GeneratorConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise ConfigurationError("pass either a GeneratorConfig or keyword overrides, not both")
    config.validate()

    rng = random.Random(config.seed)
    tree_name = name or f"random-tree-{config.num_basic_events}-seed{config.seed}"
    tree = FaultTree(tree_name)

    plow, phigh = config.probability_range
    import math

    log_low, log_high = math.log(plow), math.log(phigh)
    for index in range(config.num_basic_events):
        probability = math.exp(rng.uniform(log_low, log_high))
        tree.add_basic_event(f"e{index + 1}", min(probability, 1.0))

    # Bottom-up accumulation: `open_nodes` are nodes not yet attached to a parent.
    open_nodes: List[str] = list(tree.event_names)
    rng.shuffle(open_nodes)
    all_nodes: List[str] = list(open_nodes)
    gate_counter = 0

    while len(open_nodes) > 1:
        arity = rng.randint(config.gate_arity[0], config.gate_arity[1])
        arity = min(arity, len(open_nodes))
        children = [open_nodes.pop() for _ in range(arity)]

        # Optionally reuse already-attached nodes as extra children (sharing).
        if config.event_reuse > 0 and len(all_nodes) > arity:
            extra_candidates = [node for node in all_nodes if node not in children]
            while extra_candidates and rng.random() < config.event_reuse:
                children.append(extra_candidates.pop(rng.randrange(len(extra_candidates))))

        gate_counter += 1
        gate_name = f"g{gate_counter}"
        gate_type, k = _pick_gate_type(rng, config, len(children))
        tree.add_gate(gate_name, gate_type, children, k=k)
        open_nodes.insert(rng.randrange(len(open_nodes) + 1), gate_name)
        all_nodes.append(gate_name)

    tree.set_top_event(open_nodes[0])
    tree.validate()
    return tree


def probability_walk(
    tree: FaultTree,
    *,
    steps: int,
    seed: int = 0,
    events_per_step: int = 1,
    volatility: float = 0.35,
    probability_range: Tuple[float, float] = (1e-6, 0.99),
):
    """Yield ``steps`` batches of basic-event probability changes.

    Each batch is a ``{event_name: new_probability}`` dict produced by a
    log-space random walk over the tree's basic events: every step picks
    ``events_per_step`` distinct events and multiplies their current
    probability by ``exp(gauss(0, volatility))``, clamped to
    ``probability_range``.  The walk is fully deterministic given a seed —
    it drives the synthetic live-monitoring feed
    (:class:`repro.monitoring.feeds.SyntheticFeed`) and its tests, which
    re-derive expected values from the same seed.
    """
    if steps < 0:
        raise ConfigurationError(f"steps cannot be negative, got {steps}")
    if volatility <= 0:
        raise ConfigurationError(f"volatility must be positive, got {volatility}")
    low, high = probability_range
    if not 0 < low <= high <= 1:
        raise ConfigurationError(f"invalid probability range {probability_range}")
    events = sorted(tree.events_reachable_from_top())
    if not events:
        raise ConfigurationError(f"tree {tree.name!r} has no reachable basic events")
    if not 1 <= events_per_step <= len(events):
        raise ConfigurationError(
            f"events_per_step must lie in [1, {len(events)}], got {events_per_step}"
        )
    import math

    rng = random.Random(seed)
    current = {name: tree.probabilities()[name] for name in events}
    for _ in range(steps):
        batch = {}
        for name in rng.sample(events, events_per_step):
            value = current[name] * math.exp(rng.gauss(0.0, volatility))
            value = min(max(value, low), high)
            current[name] = value
            batch[name] = value
        yield batch


def _pick_gate_type(
    rng: random.Random, config: GeneratorConfig, arity: int
) -> Tuple[GateType, Optional[int]]:
    """Draw a gate type according to the configured mix."""
    total = config.and_ratio + config.or_ratio + config.voting_ratio
    draw = rng.uniform(0, total)
    if draw < config.and_ratio:
        return GateType.AND, None
    if draw < config.and_ratio + config.or_ratio:
        return GateType.OR, None
    if arity < 3:
        # Voting gates need at least 3 children to be interesting; fall back.
        return GateType.AND, None
    return GateType.VOTING, rng.randint(2, arity - 1)
