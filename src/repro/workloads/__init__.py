"""Workloads: canonical fault trees from the literature and a random generator.

* :mod:`repro.workloads.library` — hand-encoded canonical trees, including the
  paper's fire-protection-system example (Fig. 1) with the exact Table I
  probabilities, plus several classical trees used in FTA tutorials and
  surveys.  These drive the example-level experiments (E1–E3) and give the
  tests known ground truth.
* :mod:`repro.workloads.generator` — a seeded random fault-tree generator
  parameterised by node count, depth, gate mix and probability ranges, used by
  the scalability and ablation benchmarks (E4–E6).
"""

from repro.workloads.generator import GeneratorConfig, random_fault_tree
from repro.workloads.library import (
    NAMED_TREES,
    fire_protection_system,
    get_tree,
    pressure_tank,
    redundant_power_supply,
    three_motor_system,
)

__all__ = [
    "GeneratorConfig",
    "NAMED_TREES",
    "fire_protection_system",
    "get_tree",
    "pressure_tank",
    "random_fault_tree",
    "redundant_power_supply",
    "three_motor_system",
]
