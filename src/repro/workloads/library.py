"""Canonical fault trees used by the examples, tests and benchmarks.

The central entry is :func:`fire_protection_system` — the paper's running
example (Fig. 1): a cyber-physical Fire Protection System whose MPMCS is
``{x1, x2}`` with joint probability ``0.02``.  Probabilities match Table I of
the paper exactly.

The other trees are classical teaching/benchmark models re-encoded from the
FTA literature (Vesely et al.'s Fault Tree Handbook and the Ruijters &
Stoelinga survey): a pressure-tank rupture tree, a redundant power supply with
a 2-of-3 voting gate, and a three-motor control system.  They provide
structural variety (shared events, voting gates, deeper nesting) for the
integration tests and the baseline-comparison benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.exceptions import FaultTreeError
from repro.fta.builder import FaultTreeBuilder
from repro.fta.tree import FaultTree

__all__ = [
    "fire_protection_system",
    "pressure_tank",
    "redundant_power_supply",
    "three_motor_system",
    "chemical_reactor_protection",
    "railway_level_crossing",
    "scada_water_treatment",
    "data_center_power",
    "aircraft_hydraulic_system",
    "emergency_shutdown_system",
    "NAMED_TREES",
    "get_tree",
]


def fire_protection_system() -> FaultTree:
    """The paper's Fig. 1 example: a cyber-physical Fire Protection System.

    Structure (Section I.A):

    * the FPS fails if the detection system fails **or** the suppression
      mechanism fails;
    * detection fails if both sensors fail (``x1`` and ``x2``);
    * suppression fails if there is no water (``x3``), the nozzles are blocked
      (``x4``), or the triggering system fails;
    * triggering fails if both the automatic mode (``x5``) and the remote
      operation fail;
    * remote operation fails if the communication channel fails (``x6``) or is
      taken down by a cyber attack (``x7``).

    Probabilities are those of Table I; the structure function is
    ``f(t) = (x1 ∧ x2) ∨ (x3 ∨ x4 ∨ (x5 ∧ (x6 ∨ x7)))`` and the MPMCS is
    ``{x1, x2}`` with joint probability 0.02.
    """
    return (
        FaultTreeBuilder("fire-protection-system")
        .basic_event("x1", 0.2, description="Sensor 1 fails")
        .basic_event("x2", 0.1, description="Sensor 2 fails")
        .basic_event("x3", 0.001, description="No water available")
        .basic_event("x4", 0.002, description="Sprinkler nozzles blocked")
        .basic_event("x5", 0.05, description="Automatic trigger fails")
        .basic_event("x6", 0.1, description="Communication channel fails")
        .basic_event("x7", 0.05, description="Channel unavailable due to DDoS attack")
        .and_gate("detection_failure", ["x1", "x2"], description="Fire detection system fails")
        .or_gate("remote_failure", ["x6", "x7"], description="Remote operation fails")
        .and_gate("trigger_failure", ["x5", "remote_failure"], description="Triggering fails")
        .or_gate(
            "suppression_failure",
            ["x3", "x4", "trigger_failure"],
            description="Fire suppression mechanism fails",
        )
        .or_gate(
            "fps_failure",
            ["detection_failure", "suppression_failure"],
            description="Fire protection system fails (top event)",
        )
        .top("fps_failure")
        .build()
    )


def pressure_tank() -> FaultTree:
    """A classical pressure-tank rupture fault tree (Fault Tree Handbook style).

    The tank ruptures if the tank itself fails or if it is over-pressurised;
    over-pressure requires the relief valve to fail together with a failure of
    the pressure switch circuit (switch stuck, contacts welded, or operator
    missing the gauge reading and failing to shut the pump down).
    """
    return (
        FaultTreeBuilder("pressure-tank")
        .basic_event("tank_failure", 1e-6, description="Tank rupture under normal load")
        .basic_event("relief_valve_fails", 1e-3, description="Primary relief valve fails")
        .basic_event("pressure_switch_stuck", 5e-3, description="Pressure switch stuck closed")
        .basic_event("contacts_welded", 2e-3, description="Relay contacts welded")
        .basic_event("operator_misses_gauge", 0.05, description="Operator ignores gauge")
        .basic_event("pump_shutdown_fails", 0.01, description="Manual pump shutdown fails")
        .or_gate("switch_circuit_fails", ["pressure_switch_stuck", "contacts_welded"])
        .and_gate("operator_fails", ["operator_misses_gauge", "pump_shutdown_fails"])
        .or_gate("monitoring_fails", ["switch_circuit_fails", "operator_fails"])
        .and_gate("overpressure", ["relief_valve_fails", "monitoring_fails"])
        .or_gate("tank_rupture", ["tank_failure", "overpressure"])
        .top("tank_rupture")
        .build()
    )


def redundant_power_supply() -> FaultTree:
    """A redundant power supply with a 2-of-3 voting gate over the feeders.

    The system loses power when at least two of its three feeders fail or when
    the common bus bar fails; each feeder fails if its transformer fails or its
    breaker opens spuriously.  Exercises voting gates (the paper's future-work
    extension) together with shared basic events.
    """
    builder = FaultTreeBuilder("redundant-power-supply")
    builder.basic_event("busbar_failure", 1e-5, description="Common bus bar fails")
    for index in (1, 2, 3):
        builder.basic_event(f"transformer_{index}", 0.002, description=f"Transformer {index} fails")
        builder.basic_event(f"breaker_{index}", 0.004, description=f"Breaker {index} opens spuriously")
        builder.or_gate(f"feeder_{index}_fails", [f"transformer_{index}", f"breaker_{index}"])
    builder.voting_gate(
        "feeders_majority_lost",
        2,
        ["feeder_1_fails", "feeder_2_fails", "feeder_3_fails"],
        description="At least two of three feeders lost",
    )
    builder.or_gate("power_lost", ["busbar_failure", "feeders_majority_lost"])
    builder.top("power_lost")
    return builder.build()


def three_motor_system() -> FaultTree:
    """A three-motor control system with shared control and power events.

    The classic example where the same basic events (control circuit failure,
    power supply failure) feed several intermediate gates, producing a DAG
    rather than a strict tree — important for exercising shared sub-formulas in
    the Tseitin encoding and in the BDD baseline.
    """
    return (
        FaultTreeBuilder("three-motor-system")
        .basic_event("control_circuit", 0.01, description="Shared control circuit fails")
        .basic_event("power_supply", 0.005, description="Shared power supply fails")
        .basic_event("motor_1", 0.02, description="Motor 1 mechanical failure")
        .basic_event("motor_2", 0.02, description="Motor 2 mechanical failure")
        .basic_event("motor_3", 0.02, description="Motor 3 mechanical failure")
        .or_gate("motor_1_down", ["motor_1", "control_circuit", "power_supply"])
        .or_gate("motor_2_down", ["motor_2", "control_circuit", "power_supply"])
        .or_gate("motor_3_down", ["motor_3", "control_circuit", "power_supply"])
        .and_gate("all_motors_down", ["motor_1_down", "motor_2_down", "motor_3_down"])
        .top("all_motors_down")
        .build()
    )


def chemical_reactor_protection() -> FaultTree:
    """Runaway reaction in a chemical batch reactor (protection-layer style model).

    The reactor overheats when the cooling function is lost *and* the two
    protection layers (automatic shutdown and operator response) both fail.
    Cooling is lost through pump, valve or heat-exchanger failures; the
    automatic layer shares its temperature sensors with the alarm that the
    operator relies on, giving the model the shared-event structure typical of
    layer-of-protection analyses.
    """
    return (
        FaultTreeBuilder("chemical-reactor-protection")
        .basic_event("cooling_pump_fails", 5e-3, description="Cooling water pump fails")
        .basic_event("cooling_valve_stuck", 2e-3, description="Cooling valve stuck closed")
        .basic_event("heat_exchanger_fouled", 1e-3, description="Heat exchanger fouled")
        .basic_event("temp_sensor_1_fails", 0.01, description="Temperature sensor 1 fails")
        .basic_event("temp_sensor_2_fails", 0.01, description="Temperature sensor 2 fails")
        .basic_event("shutdown_logic_fails", 1e-3, description="Shutdown logic solver fails")
        .basic_event("shutdown_valve_fails", 2e-3, description="Shutdown dump valve fails")
        .basic_event("operator_ignores_alarm", 0.1, description="Operator ignores the alarm")
        .basic_event("alarm_annunciator_fails", 5e-3, description="Alarm annunciator fails")
        .or_gate(
            "cooling_lost",
            ["cooling_pump_fails", "cooling_valve_stuck", "heat_exchanger_fouled"],
            description="Loss of reactor cooling",
        )
        .and_gate(
            "sensors_blind",
            ["temp_sensor_1_fails", "temp_sensor_2_fails"],
            description="Both temperature sensors fail",
        )
        .or_gate(
            "auto_shutdown_fails",
            ["sensors_blind", "shutdown_logic_fails", "shutdown_valve_fails"],
            description="Automatic shutdown layer fails",
        )
        .or_gate(
            "operator_layer_fails",
            ["sensors_blind", "alarm_annunciator_fails", "operator_ignores_alarm"],
            description="Operator response layer fails",
        )
        .and_gate(
            "protection_fails",
            ["auto_shutdown_fails", "operator_layer_fails"],
            description="Both protection layers fail",
        )
        .and_gate(
            "runaway_reaction",
            ["cooling_lost", "protection_fails"],
            description="Runaway reaction (top event)",
        )
        .top("runaway_reaction")
        .build()
    )


def railway_level_crossing() -> FaultTree:
    """Hazardous state of a railway level crossing (train passes with barriers up).

    The hazard requires the train detection *or* the barrier function to fail
    while the warning signals towards road users also fail.  Detection is
    2-of-3 redundant axle counters; the barrier fails through its motor, its
    controller or loss of power — the power supply being shared with the
    warning lights.
    """
    builder = FaultTreeBuilder("railway-level-crossing")
    builder.basic_event("power_supply_fails", 1e-3, description="Local power supply fails")
    for index in (1, 2, 3):
        builder.basic_event(
            f"axle_counter_{index}_fails", 5e-3, description=f"Axle counter {index} fails"
        )
    builder.basic_event("interlocking_fault", 1e-4, description="Interlocking logic fault")
    builder.basic_event("barrier_motor_fails", 2e-3, description="Barrier motor fails")
    builder.basic_event("barrier_controller_fails", 1e-3, description="Barrier controller fails")
    builder.basic_event("warning_lights_fail", 3e-3, description="Road warning lights fail")
    builder.basic_event("bell_fails", 8e-3, description="Warning bell fails")
    builder.voting_gate(
        "detection_fails",
        2,
        ["axle_counter_1_fails", "axle_counter_2_fails", "axle_counter_3_fails"],
        description="Train detection lost (2-of-3 axle counters)",
    )
    builder.or_gate(
        "barrier_fails",
        ["barrier_motor_fails", "barrier_controller_fails", "power_supply_fails"],
        description="Barriers stay open",
    )
    builder.or_gate(
        "crossing_protection_fails",
        ["detection_fails", "interlocking_fault", "barrier_fails"],
        description="Crossing protection function fails",
    )
    builder.and_gate(
        "road_warning_fails",
        ["warning_lights_fail", "bell_fails"],
        description="All road-user warnings fail",
    )
    builder.or_gate(
        "lights_or_power",
        ["road_warning_fails", "power_supply_fails"],
        description="Road warning unavailable",
    )
    builder.and_gate(
        "crossing_hazard",
        ["crossing_protection_fails", "lights_or_power"],
        description="Train passes an unprotected crossing (top event)",
    )
    builder.top("crossing_hazard")
    return builder.build()


def scada_water_treatment() -> FaultTree:
    """Loss of safe dosing in a SCADA-controlled water treatment plant.

    A cyber-physical model in the spirit of the paper's motivation: the dosing
    function is lost when the physical dosing line fails or when the control
    loop is compromised, the latter combining sensor failures with cyber
    events (PLC compromise, HMI spoofing, denial of service on the control
    network).
    """
    return (
        FaultTreeBuilder("scada-water-treatment")
        .basic_event("dosing_pump_fails", 3e-3, description="Chemical dosing pump fails")
        .basic_event("dosing_valve_blocked", 1e-3, description="Dosing valve blocked")
        .basic_event("chlorine_sensor_drifts", 0.02, description="Chlorine sensor drifts")
        .basic_event("turbidity_sensor_fails", 0.01, description="Turbidity sensor fails")
        .basic_event("plc_compromised", 5e-4, description="PLC firmware compromised")
        .basic_event("hmi_spoofed", 1e-3, description="HMI display spoofed")
        .basic_event("network_dos", 4e-3, description="DoS on the control network")
        .basic_event("operator_overrides", 0.05, description="Operator forces manual override")
        .or_gate(
            "dosing_line_fails",
            ["dosing_pump_fails", "dosing_valve_blocked"],
            description="Physical dosing line fails",
        )
        .and_gate(
            "measurements_lost",
            ["chlorine_sensor_drifts", "turbidity_sensor_fails"],
            description="Both water-quality measurements lost",
        )
        .or_gate(
            "control_compromised",
            ["plc_compromised", "hmi_spoofed", "network_dos"],
            description="Control/monitoring channel compromised",
        )
        .and_gate(
            "bad_setpoint_applied",
            ["control_compromised", "operator_overrides"],
            description="Wrong setpoint applied without detection",
        )
        .or_gate(
            "control_loop_fails",
            ["measurements_lost", "bad_setpoint_applied"],
            description="Dosing control loop fails",
        )
        .or_gate(
            "unsafe_dosing",
            ["dosing_line_fails", "control_loop_fails"],
            description="Loss of safe dosing (top event)",
        )
        .top("unsafe_dosing")
        .build()
    )


def data_center_power() -> FaultTree:
    """Loss of power to a dual-fed data-centre rack.

    Each feed combines utility power, a UPS and a distribution path; the
    diesel generator backs up both feeds (a shared event), and the automatic
    transfer switch is a common element of both paths — the kind of structure
    where the MPMCS is not obvious by inspection.
    """
    builder = FaultTreeBuilder("data-center-power")
    builder.basic_event("utility_outage", 0.02, description="Utility power outage")
    builder.basic_event("generator_fails_to_start", 0.01, description="Diesel generator fails")
    builder.basic_event("transfer_switch_fails", 2e-3, description="Automatic transfer switch fails")
    for feed in ("a", "b"):
        builder.basic_event(f"ups_{feed}_fails", 5e-3, description=f"UPS {feed.upper()} fails")
        builder.basic_event(f"pdu_{feed}_fails", 1e-3, description=f"PDU {feed.upper()} fails")
    # The upstream loss is genuinely shared; model it once and reference it twice.
    builder.and_gate(
        "upstream_power_lost",
        ["utility_outage", "generator_fails_to_start"],
        description="Utility and backup generator both unavailable",
    )
    builder.or_gate(
        "feed_a_fails",
        ["upstream_power_lost", "transfer_switch_fails", "ups_a_fails", "pdu_a_fails"],
        description="Feed A fails",
    )
    builder.or_gate(
        "feed_b_fails",
        ["upstream_power_lost", "transfer_switch_fails", "ups_b_fails", "pdu_b_fails"],
        description="Feed B fails",
    )
    builder.and_gate(
        "rack_power_lost",
        ["feed_a_fails", "feed_b_fails"],
        description="Both feeds lost (top event)",
    )
    builder.top("rack_power_lost")
    return builder.build()


def aircraft_hydraulic_system() -> FaultTree:
    """Loss of hydraulic power for the flight controls of a twin-engine aircraft.

    Three hydraulic circuits (two engine-driven, one electric standby) feed
    the flight-control actuators; control is lost only when all three circuits
    are lost.  Engine failures are shared between the pump failures and the
    electrical system (generator loss), producing a deep DAG with shared
    events across sub-systems.
    """
    builder = FaultTreeBuilder("aircraft-hydraulic-system")
    builder.basic_event("engine_1_fails", 1e-4, description="Engine 1 in-flight shutdown")
    builder.basic_event("engine_2_fails", 1e-4, description="Engine 2 in-flight shutdown")
    builder.basic_event("edp_1_fails", 5e-4, description="Engine-driven pump 1 fails")
    builder.basic_event("edp_2_fails", 5e-4, description="Engine-driven pump 2 fails")
    builder.basic_event("elec_pump_fails", 1e-3, description="Electric standby pump fails")
    builder.basic_event("battery_depleted", 2e-3, description="Battery bus depleted")
    builder.basic_event("fluid_leak_1", 3e-4, description="Circuit 1 fluid leak")
    builder.basic_event("fluid_leak_2", 3e-4, description="Circuit 2 fluid leak")
    builder.basic_event("fluid_leak_3", 3e-4, description="Standby circuit fluid leak")
    builder.or_gate("circuit_1_lost", ["engine_1_fails", "edp_1_fails", "fluid_leak_1"])
    builder.or_gate("circuit_2_lost", ["engine_2_fails", "edp_2_fails", "fluid_leak_2"])
    builder.and_gate(
        "generators_lost",
        ["engine_1_fails", "engine_2_fails"],
        description="Both engine generators lost",
    )
    builder.and_gate(
        "electrical_power_lost",
        ["generators_lost", "battery_depleted"],
        description="No electrical power for the standby pump",
    )
    builder.or_gate(
        "circuit_3_lost",
        ["elec_pump_fails", "electrical_power_lost", "fluid_leak_3"],
        description="Standby circuit lost",
    )
    builder.and_gate(
        "flight_controls_lost",
        ["circuit_1_lost", "circuit_2_lost", "circuit_3_lost"],
        description="All hydraulic circuits lost (top event)",
    )
    builder.top("flight_controls_lost")
    return builder.build()


def emergency_shutdown_system() -> FaultTree:
    """Failure on demand of a 2-of-4 emergency shutdown (ESD) instrumented system.

    Four pressure transmitters vote 2-of-4 into a redundant logic solver pair;
    the final elements are two shutdown valves in series (either closes the
    line).  Common-cause miscalibration of the transmitters is modelled as an
    explicit shared event, which typically ends up being the MPMCS.
    """
    builder = FaultTreeBuilder("emergency-shutdown-system")
    builder.basic_event(
        "transmitters_miscalibrated", 5e-4, description="Common-cause transmitter miscalibration"
    )
    for index in (1, 2, 3, 4):
        builder.basic_event(
            f"pt_{index}_fails", 0.01, description=f"Pressure transmitter {index} fails"
        )
    builder.basic_event("logic_a_fails", 1e-3, description="Logic solver A fails")
    builder.basic_event("logic_b_fails", 1e-3, description="Logic solver B fails")
    builder.basic_event("valve_1_stuck", 2e-3, description="Shutdown valve 1 stuck open")
    builder.basic_event("valve_2_stuck", 2e-3, description="Shutdown valve 2 stuck open")
    builder.voting_gate(
        "transmitters_fail_independently",
        3,
        ["pt_1_fails", "pt_2_fails", "pt_3_fails", "pt_4_fails"],
        description="3-of-4 transmitters fail (defeats 2-of-4 voting)",
    )
    builder.or_gate(
        "sensing_fails",
        ["transmitters_miscalibrated", "transmitters_fail_independently"],
        description="Demand not sensed",
    )
    builder.and_gate(
        "logic_fails",
        ["logic_a_fails", "logic_b_fails"],
        description="Both logic solvers fail",
    )
    builder.and_gate(
        "final_elements_fail",
        ["valve_1_stuck", "valve_2_stuck"],
        description="Both shutdown valves fail to close",
    )
    builder.or_gate(
        "esd_fails_on_demand",
        ["sensing_fails", "logic_fails", "final_elements_fail"],
        description="ESD fails on demand (top event)",
    )
    builder.top("esd_fails_on_demand")
    return builder.build()


#: Registry of the canonical trees by short name (used by the CLI and benches).
NAMED_TREES: Dict[str, Callable[[], FaultTree]] = {
    "fps": fire_protection_system,
    "fire-protection-system": fire_protection_system,
    "pressure-tank": pressure_tank,
    "redundant-power-supply": redundant_power_supply,
    "three-motor-system": three_motor_system,
    "chemical-reactor": chemical_reactor_protection,
    "railway-crossing": railway_level_crossing,
    "scada-water": scada_water_treatment,
    "data-center-power": data_center_power,
    "aircraft-hydraulics": aircraft_hydraulic_system,
    "emergency-shutdown": emergency_shutdown_system,
}


def get_tree(name: str) -> FaultTree:
    """Return a canonical tree by registry name."""
    try:
        factory = NAMED_TREES[name]
    except KeyError as exc:
        raise FaultTreeError(
            f"unknown canonical tree {name!r}; available: {sorted(set(NAMED_TREES))}"
        ) from exc
    return factory()
