"""repro — Maximum Probability Minimal Cut Sets for Fault Tree Analysis with MaxSAT.

A complete, self-contained Python reproduction of *"Fault Tree Analysis:
Identifying Maximum Probability Minimal Cut Sets with MaxSAT"* (Barrère &
Hankin, DSN 2020) and of the MPMCS4FTA tool it describes, including the SAT
and MaxSAT solvers the method relies on.

Quickstart
----------
The :class:`AnalysisSession` is the front door for every analysis.  One call
can combine several analyses; expensive intermediates (the Tseitin CNF
encoding, the minimal cut sets, the compiled BDD) are cached per session and
computed once:

.. code-block:: python

    from repro import AnalysisSession, fire_protection_system

    session = AnalysisSession()
    report = session.analyze(
        fire_protection_system(),                  # the paper's Fig. 1 example
        analyses=["mpmcs", "top_event", "importance"],
    )
    print(report.mpmcs.events, report.mpmcs.probability)   # ('x1', 'x2') 0.02
    print(report.top_event.exact)                          # 0.0300217...
    print(session.cache_info())                            # artifact hits/misses

Many trees are analysed in one go with :func:`analyze_many`, which fans out
over a process pool:

.. code-block:: python

    from repro import analyze_many

    result = analyze_many(trees, analyses=["mpmcs"], workers=4)
    reports = result.reports                       # in input order

Choosing a backend
------------------
Every resolution strategy is a pluggable backend in a registry; pass
``backend=<name>`` to force one, or leave the default ``"auto"`` to route
each analysis to its preferred strategy:

``maxsat``
    The paper's six-step Weighted Partial MaxSAT pipeline — finds the MPMCS
    (and the top-k ranking) *without* enumerating all cut sets; the default
    for ``"mpmcs"`` and ``"ranking"``.
``mocus``
    Classical top-down MOCUS enumeration; the default for cut-set-derived
    analyses (``"mcs"``, ``"importance"``, ``"spof"``, ``"modules"``,
    ``"truncation"``) and exponential in the worst case.
``bdd``
    The ROBDD engine — exact top-event probability and a dynamic-programming
    MPMCS, both linear in the diagram size; the default for the exact part
    of ``"top_event"``.
``brute-force``
    Exhaustive ground truth for small trees (≈ 22 events), used by tests.
``monte-carlo``
    Sampling estimator of the top-event probability for models too large for
    exact methods (enabled under auto routing when ``samples > 0``).

``repro.api.register_backend`` adds new strategies;
``repro.api.available_backends()`` lists the registry (also:
``mpmcs4fta backends`` on the command line).  All backends break probability
ties identically (smallest cut set, then lexicographic), so their answers are
directly comparable.

The lower-level building blocks remain available — e.g.
``MPMCSSolver().solve(tree)`` runs the MaxSAT pipeline directly.

Package map
-----------
``repro.api``        The unified analysis facade: backend registry, sessions,
                     artifact cache, batch execution.
``repro.logic``      Boolean formulas, Tseitin CNF conversion, DIMACS I/O.
``repro.sat``        CDCL and DPLL SAT solvers with assumptions/cores.
``repro.maxsat``     Weighted Partial MaxSAT engines and the parallel portfolio.
``repro.fta``        Fault-tree model, builder, Galileo/JSON parsers.
``repro.core``       The six-step MPMCS pipeline and top-k enumeration.
``repro.analysis``   Classical baselines: MOCUS, brute force, importance measures,
                     modules, truncation, cut-set contributions.
``repro.bdd``        ROBDD engine and BDD-based cut-set/probability analysis.
``repro.markov``     Continuous-time Markov chain substrate (uniformization).
``repro.reliability`` Time-dependent failure models and mission-time curves.
``repro.uncertainty`` Epistemic uncertainty propagation and importance.
``repro.workloads``  Canonical example trees and the random tree generator.
``repro.reporting``  JSON (Fig. 2 style), DOT, ASCII, Markdown and HTML reports.
"""

from repro.api.batch import BatchItem, BatchResult, analyze_many
from repro.api.cache import ArtifactCache, structural_hash
from repro.api.registry import (
    AnalysisBackend,
    available_backends,
    backend_capabilities,
    register_backend,
)
from repro.api.report import AnalysisReport, AnalysisRequest
from repro.api.session import AnalysisSession
from repro.core.pipeline import MPMCSResult, MPMCSSolver, find_mpmcs
from repro.core.topk import RankedCutSet, enumerate_mpmcs
from repro.fta.builder import FaultTreeBuilder
from repro.fta.dynamic import DynamicFaultTree
from repro.fta.events import BasicEvent
from repro.fta.gates import Gate, GateType
from repro.fta.simulation import simulate_dft
from repro.fta.tree import FaultTree
from repro.reliability.assignment import ReliabilityAssignment
from repro.uncertainty.propagation import propagate_uncertainty
from repro.workloads.generator import GeneratorConfig, random_fault_tree
from repro.workloads.library import fire_protection_system, get_tree

__version__ = "1.1.0"

__all__ = [
    "AnalysisBackend",
    "AnalysisReport",
    "AnalysisRequest",
    "AnalysisSession",
    "ArtifactCache",
    "BasicEvent",
    "BatchItem",
    "BatchResult",
    "DynamicFaultTree",
    "FaultTree",
    "FaultTreeBuilder",
    "Gate",
    "GateType",
    "GeneratorConfig",
    "MPMCSResult",
    "MPMCSSolver",
    "RankedCutSet",
    "ReliabilityAssignment",
    "__version__",
    "analyze_many",
    "available_backends",
    "backend_capabilities",
    "enumerate_mpmcs",
    "find_mpmcs",
    "fire_protection_system",
    "get_tree",
    "propagate_uncertainty",
    "random_fault_tree",
    "register_backend",
    "simulate_dft",
    "structural_hash",
]
