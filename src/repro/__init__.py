"""repro — Maximum Probability Minimal Cut Sets for Fault Tree Analysis with MaxSAT.

A complete, self-contained Python reproduction of *"Fault Tree Analysis:
Identifying Maximum Probability Minimal Cut Sets with MaxSAT"* (Barrère &
Hankin, DSN 2020) and of the MPMCS4FTA tool it describes, including the SAT
and MaxSAT solvers the method relies on.

Quickstart
----------
.. code-block:: python

    from repro import MPMCSSolver, fire_protection_system

    tree = fire_protection_system()          # the paper's Fig. 1 example
    result = MPMCSSolver().solve(tree)       # the 6-step MaxSAT pipeline
    print(result.events, result.probability) # ('x1', 'x2') 0.02

Package map
-----------
``repro.logic``      Boolean formulas, Tseitin CNF conversion, DIMACS I/O.
``repro.sat``        CDCL and DPLL SAT solvers with assumptions/cores.
``repro.maxsat``     Weighted Partial MaxSAT engines and the parallel portfolio.
``repro.fta``        Fault-tree model, builder, Galileo/JSON parsers.
``repro.core``       The six-step MPMCS pipeline and top-k enumeration.
``repro.analysis``   Classical baselines: MOCUS, brute force, importance measures,
                     modules, truncation, cut-set contributions.
``repro.bdd``        ROBDD engine and BDD-based cut-set/probability analysis.
``repro.markov``     Continuous-time Markov chain substrate (uniformization).
``repro.reliability`` Time-dependent failure models and mission-time curves.
``repro.uncertainty`` Epistemic uncertainty propagation and importance.
``repro.workloads``  Canonical example trees and the random tree generator.
``repro.reporting``  JSON (Fig. 2 style), DOT, ASCII, Markdown and HTML reports.
"""

from repro.core.pipeline import MPMCSResult, MPMCSSolver, find_mpmcs
from repro.core.topk import RankedCutSet, enumerate_mpmcs
from repro.fta.builder import FaultTreeBuilder
from repro.fta.dynamic import DynamicFaultTree
from repro.fta.events import BasicEvent
from repro.fta.gates import Gate, GateType
from repro.fta.simulation import simulate_dft
from repro.fta.tree import FaultTree
from repro.reliability.assignment import ReliabilityAssignment
from repro.uncertainty.propagation import propagate_uncertainty
from repro.workloads.generator import GeneratorConfig, random_fault_tree
from repro.workloads.library import fire_protection_system, get_tree

__version__ = "1.0.0"

__all__ = [
    "BasicEvent",
    "DynamicFaultTree",
    "FaultTree",
    "FaultTreeBuilder",
    "Gate",
    "GateType",
    "GeneratorConfig",
    "MPMCSResult",
    "MPMCSSolver",
    "RankedCutSet",
    "ReliabilityAssignment",
    "__version__",
    "enumerate_mpmcs",
    "find_mpmcs",
    "fire_protection_system",
    "get_tree",
    "propagate_uncertainty",
    "random_fault_tree",
    "simulate_dft",
]
