"""Exhaustive reference MaxSAT engine.

This engine enumerates subsets of soft clauses that may be violated, in order
of increasing total weight, and returns the first subset for which the hard
clauses plus the remaining soft clauses are satisfiable.  It is exponential in
the number of soft clauses and exists purely as an oracle of ground truth: the
property-based tests compare every production engine against it on small
instances, and it doubles as a didactic description of what Weighted Partial
MaxSAT computes.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SolverError
from repro.logic.cnf import Literal
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["BruteForceEngine"]


class BruteForceEngine(MaxSATEngine):
    """Exhaustive subset-enumeration MaxSAT solver (reference implementation).

    Parameters
    ----------
    max_soft:
        Safety limit on the number of soft clauses; larger instances raise
        :class:`SolverError` instead of silently running for hours.
    """

    name = "brute-force"

    def __init__(self, *, max_soft: int = 22, max_conflicts: Optional[int] = None) -> None:
        super().__init__(max_conflicts=max_conflicts)
        self.max_soft = max_soft

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        if instance.num_soft > self.max_soft:
            raise SolverError(
                f"brute-force engine refuses {instance.num_soft} soft clauses "
                f"(limit {self.max_soft}); use RC2 or the portfolio instead"
            )

        solver = self._new_sat_solver(instance)
        selector_map = self._attach_selectors(solver, instance)
        selectors = selector_map.selectors
        sat_calls = 0

        # Quick feasibility check of the hard clauses alone.
        hard_result = solver.solve()
        sat_calls += 1
        if hard_result.status is not SatStatus.SAT:
            return self._unsat_result(
                start_time=start, sat_calls=sat_calls, conflicts=solver.conflicts
            )

        # Enumerate subsets of selectors to *violate*, cheapest total weight first.
        subsets: List[Tuple[int, Tuple[Literal, ...]]] = []
        for size in range(len(selectors) + 1):
            for combo in itertools.combinations(selectors, size):
                weight = sum(selector_map.weights[sel] for sel in combo)
                subsets.append((weight, combo))
        subsets.sort(key=lambda item: item[0])

        for weight, violated in subsets:
            assumptions = [sel for sel in selectors if sel not in violated]
            result = solver.solve(assumptions)
            sat_calls += 1
            if result.status is SatStatus.SAT:
                model = result.model or {}
                return self._result_from_model(
                    instance,
                    model,
                    start_time=start,
                    sat_calls=sat_calls,
                    conflicts=solver.conflicts,
                )

        # Unreachable: the empty-assumption subset (violate everything) was
        # already proven satisfiable by the hard feasibility check.
        raise SolverError("brute-force enumeration exhausted without finding a model")
