"""Weighted Partial MaxSAT solving.

The MPMCS problem is encoded as a Weighted Partial MaxSAT instance (paper
Step 4) and solved here.  Because no external MaxSAT solver is available in the
reproduction environment, this package implements the solvers themselves on
top of the CDCL SAT engine of :mod:`repro.sat`:

* :class:`repro.maxsat.rc2.RC2Engine` — OLL/RC2-style core-guided search with
  weight-aware core relaxation and optional stratification (the algorithm used
  by the RC2 solver the original MPMCS4FTA tool can call through pysat).
* :class:`repro.maxsat.fumalik.FuMalikEngine` — the classic Fu–Malik / WPM1
  core-guided algorithm generalised to weights via weight splitting.
* :class:`repro.maxsat.linear.LinearSearchEngine` — model-improving linear
  SAT–UNSAT search using a generalized totalizer pseudo-Boolean encoding.
* :class:`repro.maxsat.hitting_set.HittingSetEngine` — MaxHS-style implicit
  hitting set search (the approach of the paper's reference [5]).
* :class:`repro.maxsat.binary_search.BinarySearchEngine` — cost-interval
  bisection with a pseudo-Boolean bound constraint.
* :class:`repro.maxsat.bruteforce.BruteForceEngine` — an exhaustive reference
  solver used by the test suite on small instances.
* :class:`repro.maxsat.preprocess.PreprocessingEngine` — WCNF preprocessing
  (unit propagation, subsumption, soft merging) wrapped around any engine.
* :mod:`repro.maxsat.local_search` — stochastic local search producing
  feasible upper bounds (not proofs), used for warm starts and sanity checks.
* :class:`repro.maxsat.portfolio.PortfolioSolver` — the parallel portfolio of
  Step 5: heterogeneous engine configurations race on the same instance and the
  first completed result wins.
* :class:`repro.maxsat.incremental.IncrementalMaxSATSession` — warm-started
  implicit-hitting-set solving for weight-only re-solves across scenario
  sweeps: one persistent CDCL solver, weight-independent cached cores, and
  activation-literal blocking clauses.
"""

from repro.maxsat.instance import SoftClause, WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.rc2 import RC2Engine
from repro.maxsat.fumalik import FuMalikEngine
from repro.maxsat.linear import LinearSearchEngine
from repro.maxsat.binary_search import BinarySearchEngine
from repro.maxsat.hitting_set import HittingSetEngine
from repro.maxsat.incremental import IncrementalMaxSATSession, IncrementalSolveResult
from repro.maxsat.bruteforce import BruteForceEngine
from repro.maxsat.local_search import LocalSearchResult, stochastic_upper_bound
from repro.maxsat.preprocess import (
    PreprocessingEngine,
    PreprocessResult,
    PreprocessStats,
    preprocess_instance,
)
from repro.maxsat.portfolio import PortfolioSolver, PortfolioReport

__all__ = [
    "BinarySearchEngine",
    "BruteForceEngine",
    "FuMalikEngine",
    "HittingSetEngine",
    "IncrementalMaxSATSession",
    "IncrementalSolveResult",
    "LinearSearchEngine",
    "LocalSearchResult",
    "MaxSATEngine",
    "MaxSATResult",
    "MaxSATStatus",
    "PortfolioReport",
    "PortfolioSolver",
    "PreprocessResult",
    "PreprocessStats",
    "PreprocessingEngine",
    "RC2Engine",
    "SoftClause",
    "WPMaxSATInstance",
    "preprocess_instance",
    "stochastic_upper_bound",
]
