"""Result types returned by every MaxSAT engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import SolverError

__all__ = ["MaxSATStatus", "MaxSATResult"]


class MaxSATStatus(enum.Enum):
    """Outcome of a MaxSAT solve."""

    OPTIMUM = "optimum"
    UNSATISFIABLE = "unsatisfiable"  # the hard clauses alone are unsatisfiable
    UNKNOWN = "unknown"              # budget exhausted before proving optimality


@dataclass
class MaxSATResult:
    """Result of a Weighted Partial MaxSAT solve.

    Attributes
    ----------
    status:
        Whether an optimum was found, the hard clauses were unsatisfiable, or
        the solve was inconclusive (budget exhausted).
    model:
        An optimal assignment ``variable -> bool`` when ``status`` is OPTIMUM.
    cost:
        Scaled integer cost (total scaled weight of falsified soft clauses).
    float_cost:
        The same cost expressed on the original float weight scale.
    engine:
        Name of the engine configuration that produced the result (useful when
        the portfolio reports which member won).
    solve_time / sat_calls / conflicts:
        Performance counters for the benchmark harness.
    """

    status: MaxSATStatus
    model: Optional[Dict[int, bool]] = None
    cost: int = 0
    float_cost: float = 0.0
    engine: str = ""
    solve_time: float = 0.0
    sat_calls: int = 0
    conflicts: int = 0

    @property
    def is_optimum(self) -> bool:
        return self.status is MaxSATStatus.OPTIMUM

    def value(self, var: int) -> bool:
        """Return the model value of ``var`` (false when unassigned)."""
        if self.model is None:
            raise SolverError("no model available")
        return self.model.get(var, False)
