"""Cardinality constraint encodings.

The core-guided MaxSAT algorithms (RC2/OLL) relax unsatisfiable cores by
counting how many of the core's relaxation literals are true.  The counting is
done with a *totalizer* encoding [Bailleux & Boutillier 2003]: a balanced tree
of unary adders whose output literals ``o_1 .. o_n`` satisfy ``o_j`` is true
iff at least ``j`` input literals are true.

The :class:`Totalizer` here emits its clauses into any object exposing an
``add_clause(list[int])`` method (a :class:`~repro.sat.cdcl.CDCLSolver` or a
:class:`~repro.logic.cnf.CNF`), and allocates auxiliary variables through a
caller-supplied ``new_var`` callable so it can be embedded in larger encodings.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.exceptions import SolverError
from repro.logic.cnf import Literal

__all__ = ["Totalizer", "encode_at_most_k", "encode_at_least_k"]


class Totalizer:
    """Totalizer (unary counter) over a set of input literals.

    Parameters
    ----------
    inputs:
        The literals to count.
    new_var:
        Callable allocating a fresh variable index.
    add_clause:
        Callable receiving each generated clause (a list of literals).

    After construction, :attr:`outputs` holds the ordered output literals:
    ``outputs[j-1]`` is true iff at least ``j`` inputs are true.  The encoding
    enforces both directions needed by RC2 (inputs→outputs counting and the
    ordering ``o_{j+1} -> o_j``).
    """

    def __init__(
        self,
        inputs: Sequence[Literal],
        new_var: Callable[[], int],
        add_clause: Callable[[List[Literal]], None],
    ) -> None:
        if not inputs:
            raise SolverError("totalizer requires at least one input literal")
        self._new_var = new_var
        self._add_clause = add_clause
        self.inputs: List[Literal] = list(inputs)
        self.outputs: List[Literal] = self._build(list(inputs))

    # -- construction -----------------------------------------------------------

    def _build(self, literals: List[Literal]) -> List[Literal]:
        if len(literals) == 1:
            return [literals[0]]
        mid = len(literals) // 2
        left = self._build(literals[:mid])
        right = self._build(literals[mid:])
        return self._merge(left, right)

    def _merge(self, left: List[Literal], right: List[Literal]) -> List[Literal]:
        total = len(left) + len(right)
        outputs = [self._new_var() for _ in range(total)]

        # Counting direction: if >= a of left and >= b of right then >= a+b total.
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b == 0:
                    continue
                antecedent: List[Literal] = []
                if a > 0:
                    antecedent.append(-left[a - 1])
                if b > 0:
                    antecedent.append(-right[b - 1])
                self._add_clause(antecedent + [outputs[a + b - 1]])

        # Upper-bound direction: if < a of left and < b of right then < a+b-1 total.
        # Encoded as: not left[a] and not right[b]  ->  not outputs[a+b+1].
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b >= total:
                    continue
                antecedent = []
                if a < len(left):
                    antecedent.append(left[a])
                if b < len(right):
                    antecedent.append(right[b])
                # at most a from left and at most b from right -> at most a+b total
                self._add_clause(antecedent + [-outputs[a + b]])

        # Ordering: o_{j+1} -> o_j.
        for j in range(1, total):
            self._add_clause([-outputs[j], outputs[j - 1]])
        return outputs

    # -- queries ----------------------------------------------------------------

    def at_least(self, k: int) -> Literal:
        """Return the literal asserting that at least ``k`` inputs are true."""
        if k <= 0:
            raise SolverError("at_least bound must be >= 1")
        if k > len(self.outputs):
            raise SolverError(
                f"at_least bound {k} exceeds the number of inputs {len(self.outputs)}"
            )
        return self.outputs[k - 1]

    def at_most(self, k: int) -> List[Literal]:
        """Return unit clauses (as literals) enforcing that at most ``k`` inputs are true."""
        if k < 0:
            raise SolverError("at_most bound must be >= 0")
        return [-self.outputs[j] for j in range(k, len(self.outputs))]


def encode_at_most_k(
    literals: Sequence[Literal],
    k: int,
    new_var: Callable[[], int],
    add_clause: Callable[[List[Literal]], None],
) -> Optional[Totalizer]:
    """Add clauses enforcing ``sum(literals) <= k``; returns the totalizer used.

    For ``k >= len(literals)`` the constraint is trivially true and ``None`` is
    returned.  For ``k == 0`` every literal is simply negated.
    """
    if k >= len(literals):
        return None
    if k < 0:
        raise SolverError("at-most bound cannot be negative")
    if k == 0:
        for lit in literals:
            add_clause([-lit])
        return None
    totalizer = Totalizer(literals, new_var, add_clause)
    for unit in totalizer.at_most(k):
        add_clause([unit])
    return totalizer


def encode_at_least_k(
    literals: Sequence[Literal],
    k: int,
    new_var: Callable[[], int],
    add_clause: Callable[[List[Literal]], None],
) -> Optional[Totalizer]:
    """Add clauses enforcing ``sum(literals) >= k``; returns the totalizer used."""
    if k <= 0:
        return None
    if k > len(literals):
        raise SolverError("at-least bound exceeds the number of literals")
    if k == 1:
        add_clause(list(literals))
        return None
    totalizer = Totalizer(literals, new_var, add_clause)
    add_clause([totalizer.at_least(k)])
    return totalizer
