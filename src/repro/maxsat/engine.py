"""Abstract base class and shared helpers for MaxSAT engines."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SolverError, SolverInterrupted
from repro.logic.cnf import Literal
from repro.maxsat.instance import SoftClause, WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.cdcl import CDCLSolver

__all__ = ["MaxSATEngine", "SelectorMap"]


@dataclass
class SelectorMap:
    """Bookkeeping linking soft clauses to their selector (assumption) literals.

    For a *unit* soft clause ``(l)`` the selector is ``l`` itself.  For a wider
    soft clause ``C`` a fresh relaxation variable ``r`` is introduced together
    with the hard clause ``C ∨ r``; assuming ``¬r`` then forces ``C`` to be
    satisfied, so the selector is ``¬r``.

    Attributes
    ----------
    weights:
        Mapping from selector literal to its (remaining) scaled integer weight.
        Selectors of duplicated soft clauses are merged by summing weights.
    originals:
        Mapping from selector literal to the soft clauses it represents, used
        to recompute model costs.
    """

    weights: Dict[Literal, int]
    originals: Dict[Literal, List[SoftClause]]

    @property
    def selectors(self) -> List[Literal]:
        return list(self.weights.keys())


class MaxSATEngine:
    """Base class for Weighted Partial MaxSAT engines.

    Subclasses implement :meth:`solve`.  The helpers below build the underlying
    CDCL solver, attach selectors to soft clauses, and assemble results, so the
    engines only contain algorithmic logic.
    """

    #: Human-readable engine name used in results and portfolio reports.
    name = "base"

    def __init__(self, *, max_conflicts: Optional[int] = None) -> None:
        self.max_conflicts = max_conflicts
        #: Optional cooperative-cancellation hook (set by the portfolio runner):
        #: a zero-argument callable returning True when the engine should stop.
        self.stop_check = None

    # -- public API -----------------------------------------------------------

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def _check_stop(self) -> None:
        """Raise :class:`SolverInterrupted` when cooperative cancellation fired.

        The CDCL solver polls :attr:`stop_check` at its restart boundaries,
        but an engine also spends real time *between* oracle calls — building
        fresh oracles, relaxing cores, encoding pseudo-Boolean bounds.
        Engines call this at the top of every iteration so a lost portfolio
        race stops burning CPU between solver restarts too, which matters for
        long warm sweeps where the winner finishes in milliseconds.
        """
        if self.stop_check is not None and self.stop_check():
            raise SolverInterrupted("engine stopped by cooperative cancellation")

    def _new_sat_solver(self, instance: WPMaxSATInstance) -> CDCLSolver:
        """Build a CDCL solver preloaded with the hard clauses of ``instance``."""
        solver = CDCLSolver(max_conflicts=self.max_conflicts, stop_check=self.stop_check)
        for _ in range(instance.num_vars):
            solver.new_var()
        for clause in instance.hard:
            solver.add_clause(list(clause))
        return solver

    def _attach_selectors(
        self, solver: CDCLSolver, instance: WPMaxSATInstance
    ) -> SelectorMap:
        """Create selector literals for every soft clause of ``instance``."""
        weights: Dict[Literal, int] = {}
        originals: Dict[Literal, List[SoftClause]] = {}
        for soft in instance.soft:
            if len(soft.literals) == 1:
                selector = soft.literals[0]
            else:
                relax = solver.new_var()
                solver.add_clause(list(soft.literals) + [relax])
                selector = -relax
            weights[selector] = weights.get(selector, 0) + soft.scaled_weight
            originals.setdefault(selector, []).append(soft)
        return SelectorMap(weights=weights, originals=originals)

    def _result_from_model(
        self,
        instance: WPMaxSATInstance,
        model: Dict[int, bool],
        *,
        start_time: float,
        sat_calls: int,
        conflicts: int,
        status: MaxSATStatus = MaxSATStatus.OPTIMUM,
    ) -> MaxSATResult:
        """Build a result whose cost is recomputed from the model itself.

        Recomputing the cost from the model (rather than trusting the engine's
        internal lower bound) guards against bookkeeping bugs: the reported
        cost always matches the reported model.
        """
        if not instance.hard_satisfied_by(model):
            raise SolverError("engine produced a model violating hard clauses")
        cost = instance.cost_of_model(model)
        return MaxSATResult(
            status=status,
            model=dict(model),
            cost=cost,
            float_cost=instance.unscale_cost(cost),
            engine=self.name,
            solve_time=time.perf_counter() - start_time,
            sat_calls=sat_calls,
            conflicts=conflicts,
        )

    def _unsat_result(
        self, *, start_time: float, sat_calls: int, conflicts: int
    ) -> MaxSATResult:
        return MaxSATResult(
            status=MaxSATStatus.UNSATISFIABLE,
            engine=self.name,
            solve_time=time.perf_counter() - start_time,
            sat_calls=sat_calls,
            conflicts=conflicts,
        )
