"""Warm-started incremental MaxSAT sessions for weight-only re-solves.

The MPMCS encoding has a very particular shape: the *hard* clauses are the
Tseitin CNF of the fault tree's structure function — fixed across every
scenario of a probability or maintenance sweep — while the *soft* clauses are
unit clauses ``(¬x_i)`` whose weights are the only thing a weight-only
scenario changes.  Two classical facts make this shape perfectly incremental:

* **Unsat cores are weight-independent.**  A core is a set of assumption
  literals that cannot hold together given the hard clauses; weights never
  participate.  Cores discovered while solving one scenario are therefore
  valid for *every* scenario sharing the structure.
* **CDCL state is reusable.**  Learned clauses are logical consequences of
  the clause database alone, so a solver that keeps its learned clauses,
  VSIDS activities and saved phases across calls (see
  :meth:`repro.sat.cdcl.CDCLSolver.add_clauses`) answers later, similar
  queries dramatically faster than a cold start.

:class:`IncrementalMaxSATSession` exploits both with a MaxHS-style implicit
hitting set loop (Davies & Bacchus) over one persistent solver:

1. compute a minimum-cost hitting set of the cached cores under the
   *current* scenario's weights;
2. one SAT call assuming every soft clause outside the hitting set — on a
   warm session this is typically the *only* oracle work a scenario needs;
3. SAT: the model is optimal (its cost is bounded by the hitting set's cost,
   which lower-bounds every solution).  UNSAT: cache the new core and repeat.

Blocking clauses for tied-optimum / top-k enumeration are added once with an
*activation literal* ``r`` — ``(r ∨ ¬x_1 ∨ … ∨ ¬x_k)`` constrains nothing
until ``¬r`` is assumed — so they too persist and are reused by every later
scenario that blocks the same cut set.  Nothing the session ever adds to the
solver is scenario-specific, which is what makes a maintenance or
probability sweep a sequence of *weight-only re-solves*: no re-encoding, no
solver restart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import AnalysisError, BudgetExceededError, SolverError
from repro.fta.tree import FaultTree
from repro.logic.cnf import Literal
from repro.maxsat.hitting_set import minimum_cost_hitting_set
from repro.maxsat.instance import DEFAULT_PRECISION, scale_weight
from repro.observability import trace as _trace
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["IncrementalMaxSATSession", "IncrementalSolveResult"]


@dataclass(frozen=True)
class IncrementalSolveResult:
    """One optimal solution of a weight-only re-solve.

    ``events`` is the extracted minimal cut set, ``scaled_cost`` the integer
    objective at the session's precision (the granularity every tie decision
    must use) and ``cost`` the float ``-log`` objective.
    """

    events: Tuple[str, ...]
    scaled_cost: int
    cost: float
    probability_weights: Dict[str, float]
    sat_calls: int
    solve_time: float


class IncrementalMaxSATSession:
    """Persistent MaxSAT solving for one fault-tree *structure*.

    A session is keyed by the structure-only hash of the tree it was built
    from: any tree sharing that hash (every probability/maintenance scenario
    of a sweep) can be re-solved through the same session by passing its
    weights, because the hard clauses, the event variable numbering (by
    *name*) and the unsat cores all depend on structure alone.

    Parameters
    ----------
    tree:
        The tree whose structure function is encoded.  Only its structure is
        retained — per-solve weights come from :meth:`solve_tree` /
        :meth:`solve`.
    cache:
        Optional artifact cache; forwarded to
        :func:`~repro.core.encoder.assemble_structure_cnf` so the encoding is
        stitched from cached per-gate CNF fragments.
    precision:
        Integer weight scaling, which must match the cold pipeline's for the
        two paths to agree on ties.
    max_rounds:
        Safety cap on core-discovery iterations per solve; exceeding it
        raises :class:`BudgetExceededError` so callers can fall back to the
        cold portfolio.
    """

    def __init__(
        self,
        tree: FaultTree,
        cache: Optional[Any] = None,
        *,
        precision: int = DEFAULT_PRECISION,
        max_rounds: int = 100_000,
    ) -> None:
        # Imported lazily: repro.core.encoder imports repro.maxsat.instance,
        # so a top-level import here would cycle through the package inits.
        from repro.core.encoder import assemble_structure_cnf

        if precision <= 0:
            raise SolverError("precision must be a positive integer")
        started = time.perf_counter()
        self.precision = precision
        self.max_rounds = max_rounds

        encoding = assemble_structure_cnf(tree, cache)
        self._solver = CDCLSolver()
        for _ in range(encoding.cnf.num_vars):
            self._solver.new_var()
        for clause in encoding.cnf:
            self._solver.add_clause(list(clause.literals))

        reachable = set(tree.events_reachable_from_top())
        self.event_vars: Dict[str, int] = {
            name: var
            for name, var in sorted(encoding.var_map.items(), key=lambda item: item[1])
            if name in reachable
        }
        if not self.event_vars:
            raise AnalysisError(
                f"fault tree {tree.name!r} has no events reachable from the top"
            )
        self._var_events: Dict[int, str] = {
            var: name for name, var in self.event_vars.items()
        }
        #: Soft selectors in deterministic (variable) order: assuming the
        #: selector means "this event stays out of the cut set".
        self._selectors: Tuple[Literal, ...] = tuple(
            -var for var in sorted(self._var_events)
        )
        self.num_vars = encoding.cnf.num_vars
        self.num_hard = encoding.cnf.num_clauses
        self.num_aux_vars = len(encoding.aux_vars)

        #: Cached cores: frozensets of assumption literals (event selectors
        #: and possibly block-activation assumptions).  Weight-independent.
        self._cores: List[FrozenSet[Literal]] = []
        #: Persistent blocking clauses: cut set -> activation variable ``r``.
        self._block_vars: Dict[Tuple[str, ...], int] = {}
        self._block_var_set: Set[int] = set()
        #: Last optimal hitting set per block signature: in a weight-only
        #: sweep the optimum rarely moves, so the previous solution seeds the
        #: branch-and-bound with a near-tight upper bound.
        self._hs_memo: Dict[FrozenSet[Literal], Set[Literal]] = {}

        self.encode_time = time.perf_counter() - started
        self.sat_calls = 0
        self.solves = 0
        self.rounds = 0

    # -- weights ---------------------------------------------------------------

    def _scale_weight(self, weight: float) -> int:
        """The shared quantisation (:func:`repro.maxsat.instance.scale_weight`).

        Warm/cold agreement on tied optima depends on both paths using the
        one definition, so this is a delegation, not a re-implementation.
        """
        return scale_weight(weight, self.precision)

    def scaled_cost_of(self, events: Iterable[str], weights: Dict[str, float]) -> int:
        """The integer objective of a cut set under ``weights``."""
        return sum(self._scale_weight(weights[name]) for name in events)

    # -- blocking --------------------------------------------------------------

    def _block_assumption(self, cut_set: Tuple[str, ...]) -> Literal:
        """The assumption literal activating the blocking clause of ``cut_set``.

        Created on first use: the clause ``(r ∨ ¬x_1 ∨ … ∨ ¬x_k)`` is inert
        while ``r`` is free and forbids the cut set (and all supersets) while
        ``¬r`` is assumed.  The clause persists, so re-blocking the same cut
        set in a later scenario costs nothing.
        """
        key = tuple(sorted(cut_set))
        var = self._block_vars.get(key)
        if var is None:
            var = self._solver.new_var()
            try:
                literals = [var] + [-self.event_vars[name] for name in key]
            except KeyError as exc:
                raise AnalysisError(
                    f"cannot block cut set {key!r}: event {exc.args[0]!r} is not part "
                    "of this structure"
                ) from None
            self._solver.add_clause(literals)
            self._block_vars[key] = var
            self._block_var_set.add(var)
        return -var

    # -- solving ---------------------------------------------------------------

    def solve_tree(
        self, tree: FaultTree, blocked: Sequence[Tuple[str, ...]] = ()
    ) -> Optional[IncrementalSolveResult]:
        """Solve for ``tree``'s probabilities (its structure must match).

        Convenience wrapper deriving the ``-log`` weights from the tree's
        event probabilities exactly like the cold pipeline's Step 3.
        """
        from repro.core.weights import log_weight  # lazy: avoids an import cycle

        probabilities = tree.probabilities()
        weights = {
            name: log_weight(probabilities[name]) for name in self.event_vars
        }
        return self.solve(weights, blocked)

    def solve(
        self,
        weights: Dict[str, float],
        blocked: Sequence[Tuple[str, ...]] = (),
    ) -> Optional[IncrementalSolveResult]:
        """Minimum ``-log``-weight cut set under ``weights``; ``None`` if none.

        ``None`` mirrors the cold path's exhausted-enumeration signal: either
        the structure has no cut set at all, or every remaining cut set is
        forbidden by ``blocked``.  Raises :class:`BudgetExceededError` when
        the core-discovery loop exceeds ``max_rounds`` (callers then fall
        back to a cold solve).
        """
        with _trace.span("maxsat.solve", blocked=len(blocked)) as span:
            calls_before = self.sat_calls
            rounds_before = self.rounds
            result = self._solve_impl(weights, blocked)
            if span.is_recording:
                span.add("sat_calls", self.sat_calls - calls_before)
                span.add("hs_rounds", self.rounds - rounds_before)
                span.add("solutions", 0 if result is None else 1)
            return result

    def solve_chunk(
        self,
        weights_seq: Sequence[Dict[str, float]],
        blocked: Sequence[Tuple[str, ...]] = (),
    ) -> List[Optional[IncrementalSolveResult]]:
        """Re-rank a whole scenario chunk of weight-only re-solves per call.

        Equivalent to calling :meth:`solve` once per element of
        ``weights_seq`` (same results, in order), but under a single trace
        span: one ``maxsat.solve_chunk`` span instead of one span per
        scenario, which is what makes chunked sweep execution cheap to
        observe.  Each scenario after the first starts with every core,
        learned clause and hitting-set memo its predecessors discovered
        already hot — the chunk shape matches how
        :class:`~repro.scenarios.sweep.SweepExecutor` and the monitoring
        batch path feed scenarios through a warm session.
        """
        with _trace.span(
            "maxsat.solve_chunk", scenarios=len(weights_seq), blocked=len(blocked)
        ) as span:
            calls_before = self.sat_calls
            rounds_before = self.rounds
            results: List[Optional[IncrementalSolveResult]] = []
            for weights in weights_seq:
                results.append(self._solve_impl(weights, blocked))
            if span.is_recording:
                span.add("sat_calls", self.sat_calls - calls_before)
                span.add("hs_rounds", self.rounds - rounds_before)
                span.add(
                    "solutions", sum(1 for result in results if result is not None)
                )
            return results

    def _solve_impl(
        self,
        weights: Dict[str, float],
        blocked: Sequence[Tuple[str, ...]],
    ) -> Optional[IncrementalSolveResult]:
        started = time.perf_counter()
        scaled: Dict[Literal, int] = {
            -var: self._scale_weight(weights[name])
            for name, var in self.event_vars.items()
        }
        block_assumptions = sorted(
            (self._block_assumption(cut_set) for cut_set in blocked), key=abs
        )
        active_blocks = set(block_assumptions)

        sat_calls = 0
        for _ in range(self.max_rounds):
            self.rounds += 1
            usable: List[FrozenSet[Literal]] = []
            exhausted = False
            for core in self._cores:
                block_part = frozenset(
                    literal for literal in core if abs(literal) in self._block_var_set
                )
                if not block_part <= active_blocks:
                    continue  # depends on a blocking clause that is not active
                stripped = core - block_part
                if not stripped:
                    # Every member of the core is an active block: the blocked
                    # cut sets alone already exhaust the structure.
                    exhausted = True
                    break
                usable.append(stripped)
            if exhausted:
                self.solves += 1
                self.sat_calls += sat_calls
                return None

            signature = frozenset(active_blocks)
            hitting_set, _ = minimum_cost_hitting_set(
                usable, scaled, seed=self._hs_memo.get(signature)
            )
            self._hs_memo[signature] = hitting_set
            assumptions = block_assumptions + [
                selector for selector in self._selectors if selector not in hitting_set
            ]
            result = self._solver.solve(assumptions)
            sat_calls += 1

            if result.status is SatStatus.SAT:
                model = result.model or {}
                events = tuple(
                    sorted(
                        name
                        for name, var in self.event_vars.items()
                        if model.get(var, False)
                    )
                )
                self.solves += 1
                self.sat_calls += sat_calls
                probability_weights = {name: weights[name] for name in events}
                return IncrementalSolveResult(
                    events=events,
                    scaled_cost=self.scaled_cost_of(events, weights),
                    cost=sum(probability_weights.values()),
                    probability_weights=probability_weights,
                    sat_calls=sat_calls,
                    solve_time=time.perf_counter() - started,
                )

            core = frozenset(result.core)
            if not core:
                # Conflict independent of every assumption: the structure
                # itself is unsatisfiable — the top event cannot occur.
                self.solves += 1
                self.sat_calls += sat_calls
                return None
            self._cores.append(core)

        raise BudgetExceededError(
            f"incremental MaxSAT session exceeded {self.max_rounds} core rounds"
        )

    # -- introspection ---------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self._cores)

    @property
    def num_block_clauses(self) -> int:
        return len(self._block_vars)

    @property
    def num_learnts(self) -> int:
        return self._solver.num_learnts

    def stats(self) -> Dict[str, Any]:
        """Counters for logging and the profiling report."""
        return {
            "solves": self.solves,
            "sat_calls": self.sat_calls,
            "rounds": self.rounds,
            "cores": len(self._cores),
            "block_clauses": len(self._block_vars),
            "learnt_clauses": self._solver.num_learnts,
            "num_vars": self.num_vars,
            "num_hard": self.num_hard,
            "encode_seconds": self.encode_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalMaxSATSession(events={len(self.event_vars)}, "
            f"cores={len(self._cores)}, solves={self.solves})"
        )
