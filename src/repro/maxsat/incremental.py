"""Warm-started incremental MaxSAT sessions for weight-only re-solves.

The MPMCS encoding has a very particular shape: the *hard* clauses are the
Tseitin CNF of the fault tree's structure function — fixed across every
scenario of a probability or maintenance sweep — while the *soft* clauses are
unit clauses ``(¬x_i)`` whose weights are the only thing a weight-only
scenario changes.  Two classical facts make this shape perfectly incremental:

* **Unsat cores are weight-independent.**  A core is a set of assumption
  literals that cannot hold together given the hard clauses; weights never
  participate.  Cores discovered while solving one scenario are therefore
  valid for *every* scenario sharing the structure.
* **CDCL state is reusable.**  Learned clauses are logical consequences of
  the clause database alone, so a solver that keeps its learned clauses,
  VSIDS activities and saved phases across calls (see
  :meth:`repro.sat.cdcl.CDCLSolver.add_clauses`) answers later, similar
  queries dramatically faster than a cold start.

:class:`IncrementalMaxSATSession` exploits both with a MaxHS-style implicit
hitting set loop (Davies & Bacchus) over one persistent solver:

1. compute a minimum-cost hitting set of the cached cores under the
   *current* scenario's weights;
2. one SAT call assuming every soft clause outside the hitting set — on a
   warm session this is typically the *only* oracle work a scenario needs;
3. SAT: the model is optimal (its cost is bounded by the hitting set's cost,
   which lower-bounds every solution).  UNSAT: cache the new core and repeat.

Blocking clauses for tied-optimum / top-k enumeration are added once with an
*activation literal* ``r`` — ``(r ∨ ¬x_1 ∨ … ∨ ¬x_k)`` constrains nothing
until ``¬r`` is assumed — so they too persist and are reused by every later
scenario that blocks the same cut set.  Nothing the session ever adds to the
solver is scenario-specific, which is what makes a maintenance or
probability sweep a sequence of *weight-only re-solves*: no re-encoding, no
solver restart.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro import kernels as _kernels
from repro.exceptions import AnalysisError, BudgetExceededError, SolverError
from repro.fta.tree import FaultTree
from repro.kernels.bitset import CoverageIndex
from repro.logic.cnf import Literal
from repro.maxsat.hitting_set import minimum_cost_hitting_set
from repro.maxsat.instance import DEFAULT_PRECISION, scale_weight
from repro.observability import trace as _trace
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["IncrementalMaxSATSession", "IncrementalSolveResult"]


@dataclass(frozen=True)
class IncrementalSolveResult:
    """One optimal solution of a weight-only re-solve.

    ``events`` is the extracted minimal cut set, ``scaled_cost`` the integer
    objective at the session's precision (the granularity every tie decision
    must use) and ``cost`` the float ``-log`` objective.

    ``rerank`` records which tier of the batched re-rank ladder produced the
    result (``"pooled"``, ``"certified"``, ``"fallback"`` or ``"cold"``); it
    is empty for plain per-scenario solves and is telemetry only — it never
    participates in result comparison.
    """

    events: Tuple[str, ...]
    scaled_cost: int
    cost: float
    probability_weights: Dict[str, float]
    sat_calls: int
    solve_time: float
    rerank: str = ""


@dataclass
class _RerankPrep:
    """Weight-independent per-batch state of :meth:`solve_batch`.

    Everything here is a function of (cores, blocking clauses, blocked set)
    only — it is computed once per batch and recomputed only when a fallback
    solve grows the core collection mid-batch.
    """

    block_assumptions: List[Literal]
    signature: FrozenSet[Literal]
    blocked_sets: Tuple[FrozenSet[str], ...]
    core_count: int
    usable: List[FrozenSet[Literal]]
    exhausted: bool
    index: Optional[CoverageIndex]
    #: Pairwise-disjoint usable cores as event-column lists: the packing
    #: family behind the vectorised hitting-set lower bound.
    disjoint_columns: List[List[int]]
    #: All subset-minimal hitting sets of ``usable`` — the weight-independent
    #: candidate family whose per-scenario score minimum *is* the exact
    #: optimal hitting-set cost.  ``None`` when enumeration blew its cap (the
    #: packing lower bound then gates the pooled tier instead).
    mhs_literals: Optional[List[FrozenSet[Literal]]] = None
    mhs_events: Optional[List[Tuple[str, ...]]] = None
    mhs_columns: Optional[List[List[int]]] = None
    mhs_index: Optional[Dict[Tuple[str, ...], int]] = None


class IncrementalMaxSATSession:
    """Persistent MaxSAT solving for one fault-tree *structure*.

    A session is keyed by the structure-only hash of the tree it was built
    from: any tree sharing that hash (every probability/maintenance scenario
    of a sweep) can be re-solved through the same session by passing its
    weights, because the hard clauses, the event variable numbering (by
    *name*) and the unsat cores all depend on structure alone.

    Parameters
    ----------
    tree:
        The tree whose structure function is encoded.  Only its structure is
        retained — per-solve weights come from :meth:`solve_tree` /
        :meth:`solve`.
    cache:
        Optional artifact cache; forwarded to
        :func:`~repro.core.encoder.assemble_structure_cnf` so the encoding is
        stitched from cached per-gate CNF fragments.
    precision:
        Integer weight scaling, which must match the cold pipeline's for the
        two paths to agree on ties.
    max_rounds:
        Safety cap on core-discovery iterations per solve; exceeding it
        raises :class:`BudgetExceededError` so callers can fall back to the
        cold portfolio.
    kernels:
        Kernel suite (:func:`repro.kernels.select`) used by the batched
        re-rank path (:meth:`solve_batch`) for candidate scoring and
        hitting-set lower bounds.  Defaults to the auto-selected tier.  The
        re-rank kernels work on scaled integers, so the tier never changes
        results.
    """

    def __init__(
        self,
        tree: FaultTree,
        cache: Optional[Any] = None,
        *,
        precision: int = DEFAULT_PRECISION,
        max_rounds: int = 100_000,
        kernels: Optional[_kernels.KernelSuite] = None,
    ) -> None:
        # Imported lazily: repro.core.encoder imports repro.maxsat.instance,
        # so a top-level import here would cycle through the package inits.
        from repro.core.encoder import assemble_structure_cnf

        if precision <= 0:
            raise SolverError("precision must be a positive integer")
        started = time.perf_counter()
        self.precision = precision
        self.max_rounds = max_rounds
        self._kernels = kernels if kernels is not None else _kernels.select(None)
        #: Retained for the per-scenario cold fallback of :meth:`solve_chunk`
        #: (only the structure is ever read; weights always come per solve).
        self._tree = tree
        self._cache = cache

        encoding = assemble_structure_cnf(tree, cache)
        self._solver = CDCLSolver()
        for _ in range(encoding.cnf.num_vars):
            self._solver.new_var()
        for clause in encoding.cnf:
            self._solver.add_clause(list(clause.literals))

        reachable = set(tree.events_reachable_from_top())
        self.event_vars: Dict[str, int] = {
            name: var
            for name, var in sorted(encoding.var_map.items(), key=lambda item: item[1])
            if name in reachable
        }
        if not self.event_vars:
            raise AnalysisError(
                f"fault tree {tree.name!r} has no events reachable from the top"
            )
        self._var_events: Dict[int, str] = {
            var: name for name, var in self.event_vars.items()
        }
        #: Soft selectors in deterministic (variable) order: assuming the
        #: selector means "this event stays out of the cut set".
        self._selectors: Tuple[Literal, ...] = tuple(
            -var for var in sorted(self._var_events)
        )
        #: Event names in selector order — the column order of every scaled
        #: weight row the re-rank kernels consume.
        self._event_order: Tuple[str, ...] = tuple(
            self._var_events[var] for var in sorted(self._var_events)
        )
        self._event_column: Dict[str, int] = {
            name: column for column, name in enumerate(self._event_order)
        }
        self._selector_column: Dict[Literal, int] = {
            -var: column for column, var in enumerate(sorted(self._var_events))
        }
        self.num_vars = encoding.cnf.num_vars
        self.num_hard = encoding.cnf.num_clauses
        self.num_aux_vars = len(encoding.aux_vars)

        #: Cached cores: frozensets of assumption literals (event selectors
        #: and possibly block-activation assumptions).  Weight-independent.
        self._cores: List[FrozenSet[Literal]] = []
        #: Persistent blocking clauses: cut set -> activation variable ``r``.
        self._block_vars: Dict[Tuple[str, ...], int] = {}
        self._block_var_set: Set[int] = set()
        #: Last optimal hitting set per block signature: in a weight-only
        #: sweep the optimum rarely moves, so the previous solution seeds the
        #: branch-and-bound with a near-tight upper bound.
        self._hs_memo: Dict[FrozenSet[Literal], Set[Literal]] = {}

        #: Candidate pool: every SAT-verified optimal cut set this session has
        #: ever produced.  Feasibility ("the hard clauses admit a model whose
        #: true events are exactly this set") is weight-independent, so a
        #: pooled candidate certifies later scenarios without an oracle call.
        self._pool_order: List[Tuple[str, ...]] = []
        self._pool_index: Dict[Tuple[str, ...], int] = {}
        self._pool_columns: List[List[int]] = []
        self._pool_masks: List[int] = []
        #: Memoised minimal-hitting-set enumerations, keyed by
        #: ``(core count, block signature)``: ``(family or None on overflow,
        #: node budget used, family cap used)``.  An overflow is retried only
        #: when a later batch brings a larger budget.
        self._mhs_families: Dict[
            Tuple[int, FrozenSet[Literal]],
            Tuple[Optional[List[FrozenSet[Literal]]], int, int],
        ] = {}

        self.encode_time = time.perf_counter() - started
        self.sat_calls = 0
        self.solves = 0
        self.rounds = 0
        #: How each :meth:`solve_batch` scenario was resolved, cumulatively.
        self.rerank_stats: Dict[str, int] = {
            "pooled": 0,
            "certified": 0,
            "bnb": 0,
            "fallback": 0,
        }
        #: Scenarios rescued by the per-scenario cold fallback in
        #: :meth:`solve_chunk` after a :class:`BudgetExceededError`.
        self.chunk_fallbacks = 0

    # -- weights ---------------------------------------------------------------

    def _scale_weight(self, weight: float) -> int:
        """The shared quantisation (:func:`repro.maxsat.instance.scale_weight`).

        Warm/cold agreement on tied optima depends on both paths using the
        one definition, so this is a delegation, not a re-implementation.
        """
        return scale_weight(weight, self.precision)

    def scaled_cost_of(self, events: Iterable[str], weights: Dict[str, float]) -> int:
        """The integer objective of a cut set under ``weights``."""
        return sum(self._scale_weight(weights[name]) for name in events)

    # -- blocking --------------------------------------------------------------

    def _block_assumption(self, cut_set: Tuple[str, ...]) -> Literal:
        """The assumption literal activating the blocking clause of ``cut_set``.

        Created on first use: the clause ``(r ∨ ¬x_1 ∨ … ∨ ¬x_k)`` is inert
        while ``r`` is free and forbids the cut set (and all supersets) while
        ``¬r`` is assumed.  The clause persists, so re-blocking the same cut
        set in a later scenario costs nothing.
        """
        key = tuple(sorted(cut_set))
        var = self._block_vars.get(key)
        if var is None:
            var = self._solver.new_var()
            try:
                literals = [var] + [-self.event_vars[name] for name in key]
            except KeyError as exc:
                raise AnalysisError(
                    f"cannot block cut set {key!r}: event {exc.args[0]!r} is not part "
                    "of this structure"
                ) from None
            self._solver.add_clause(literals)
            self._block_vars[key] = var
            self._block_var_set.add(var)
        return -var

    # -- solving ---------------------------------------------------------------

    def solve_tree(
        self, tree: FaultTree, blocked: Sequence[Tuple[str, ...]] = ()
    ) -> Optional[IncrementalSolveResult]:
        """Solve for ``tree``'s probabilities (its structure must match).

        Convenience wrapper deriving the ``-log`` weights from the tree's
        event probabilities exactly like the cold pipeline's Step 3.
        """
        from repro.core.weights import log_weight  # lazy: avoids an import cycle

        probabilities = tree.probabilities()
        weights = {
            name: log_weight(probabilities[name]) for name in self.event_vars
        }
        return self.solve(weights, blocked)

    def solve(
        self,
        weights: Dict[str, float],
        blocked: Sequence[Tuple[str, ...]] = (),
    ) -> Optional[IncrementalSolveResult]:
        """Minimum ``-log``-weight cut set under ``weights``; ``None`` if none.

        ``None`` mirrors the cold path's exhausted-enumeration signal: either
        the structure has no cut set at all, or every remaining cut set is
        forbidden by ``blocked``.  Raises :class:`BudgetExceededError` when
        the core-discovery loop exceeds ``max_rounds`` (callers then fall
        back to a cold solve).
        """
        with _trace.span("maxsat.solve", blocked=len(blocked)) as span:
            calls_before = self.sat_calls
            rounds_before = self.rounds
            result = self._solve_impl(weights, blocked)
            if span.is_recording:
                span.add("sat_calls", self.sat_calls - calls_before)
                span.add("hs_rounds", self.rounds - rounds_before)
                span.add("solutions", 0 if result is None else 1)
            return result

    def solve_chunk(
        self,
        weights_seq: Sequence[Dict[str, float]],
        blocked: Sequence[Tuple[str, ...]] = (),
    ) -> List[Optional[IncrementalSolveResult]]:
        """Re-rank a whole scenario chunk of weight-only re-solves per call.

        Equivalent to calling :meth:`solve` once per element of
        ``weights_seq`` (same results, in order), but under a single trace
        span: one ``maxsat.solve_chunk`` span instead of one span per
        scenario, which is what makes chunked sweep execution cheap to
        observe.  Each scenario after the first starts with every core,
        learned clause and hitting-set memo its predecessors discovered
        already hot — the chunk shape matches how
        :class:`~repro.scenarios.sweep.SweepExecutor` and the monitoring
        batch path feed scenarios through a warm session.

        A :class:`BudgetExceededError` raised mid-chunk is contained to the
        scenario that blew the budget: that scenario alone falls back to a
        cold one-shot solve (counted in ``chunk_fallbacks``) and the chunk
        continues — earlier results are never thrown away.
        """
        with _trace.span(
            "maxsat.solve_chunk", scenarios=len(weights_seq), blocked=len(blocked)
        ) as span:
            calls_before = self.sat_calls
            rounds_before = self.rounds
            fallbacks_before = self.chunk_fallbacks
            results: List[Optional[IncrementalSolveResult]] = []
            for weights in weights_seq:
                try:
                    results.append(self._solve_impl(weights, blocked))
                except BudgetExceededError:
                    self.chunk_fallbacks += 1
                    results.append(self._cold_solve(weights, blocked))
            if self.chunk_fallbacks > fallbacks_before:
                from repro.observability.metrics import get_metrics

                get_metrics().inc(
                    "repro_maxsat_chunk_fallbacks_total",
                    amount=self.chunk_fallbacks - fallbacks_before,
                )
            if span.is_recording:
                span.add("chunk_fallbacks", self.chunk_fallbacks - fallbacks_before)
                span.add("sat_calls", self.sat_calls - calls_before)
                span.add("hs_rounds", self.rounds - rounds_before)
                span.add(
                    "solutions", sum(1 for result in results if result is not None)
                )
            return results

    def _cold_solve(
        self,
        weights: Dict[str, float],
        blocked: Sequence[Tuple[str, ...]],
    ) -> Optional[IncrementalSolveResult]:
        """One-shot cold solve of a single scenario, bypassing session state.

        The rescue path for a scenario whose incremental solve blew a search
        budget: re-encode the structure (through the shared fragment cache, so
        this is cheap), materialise the scenario's weights as probabilities
        ``exp(-w)``, forbid the blocked cut sets with plain hard clauses and
        run the cold portfolio.  The session's cores, memo and solver are left
        untouched — a pathological scenario must not poison its successors.
        """
        # Lazy for the same cycle reason as the constructor's encoder import.
        from repro.core.encoder import encode_mpmcs
        from repro.core.pipeline import MPMCSSolver

        started = time.perf_counter()
        patched = self._tree.copy()
        for name in self.event_vars:
            patched.set_probability(name, max(math.exp(-weights[name]), 5e-324))
        encoding = encode_mpmcs(patched, precision=self.precision, cache=self._cache)
        for cut_set in blocked:
            try:
                encoding.instance.add_hard(
                    [-encoding.event_vars[name] for name in cut_set]
                )
            except KeyError as exc:
                raise AnalysisError(
                    f"cannot block cut set {tuple(sorted(cut_set))!r}: event "
                    f"{exc.args[0]!r} is not part of this structure"
                ) from None
        try:
            outcome = MPMCSSolver(precision=self.precision).solve_encoding(
                patched, encoding
            )
        except AnalysisError as exc:
            if "no cut set" in str(exc):
                self.solves += 1
                return None
            raise
        events = tuple(sorted(outcome.events))
        probability_weights = {name: weights[name] for name in events}
        self.solves += 1
        return IncrementalSolveResult(
            events=events,
            scaled_cost=self.scaled_cost_of(events, weights),
            cost=sum(probability_weights.values()),
            probability_weights=probability_weights,
            sat_calls=0,
            solve_time=time.perf_counter() - started,
            rerank="cold",
        )

    def _solve_impl(
        self,
        weights: Dict[str, float],
        blocked: Sequence[Tuple[str, ...]],
    ) -> Optional[IncrementalSolveResult]:
        started = time.perf_counter()
        scaled: Dict[Literal, int] = {
            -var: self._scale_weight(weights[name])
            for name, var in self.event_vars.items()
        }
        block_assumptions = sorted(
            (self._block_assumption(cut_set) for cut_set in blocked), key=abs
        )
        active_blocks = set(block_assumptions)

        sat_calls = 0
        for _ in range(self.max_rounds):
            self.rounds += 1
            usable, exhausted = self._usable_cores(active_blocks)
            if exhausted:
                self.solves += 1
                self.sat_calls += sat_calls
                return None

            signature = frozenset(active_blocks)
            hitting_set, _ = minimum_cost_hitting_set(
                usable, scaled, seed=self._hs_memo.get(signature)
            )
            self._hs_memo[signature] = hitting_set
            assumptions = block_assumptions + [
                selector for selector in self._selectors if selector not in hitting_set
            ]
            result = self._solver.solve(assumptions)
            sat_calls += 1

            if result.status is SatStatus.SAT:
                model = result.model or {}
                events = tuple(
                    sorted(
                        name
                        for name, var in self.event_vars.items()
                        if model.get(var, False)
                    )
                )
                self.solves += 1
                self.sat_calls += sat_calls
                self._register_candidate(events)
                probability_weights = {name: weights[name] for name in events}
                return IncrementalSolveResult(
                    events=events,
                    scaled_cost=self.scaled_cost_of(events, weights),
                    cost=sum(probability_weights.values()),
                    probability_weights=probability_weights,
                    sat_calls=sat_calls,
                    solve_time=time.perf_counter() - started,
                )

            core = frozenset(result.core)
            if not core:
                # Conflict independent of every assumption: the structure
                # itself is unsatisfiable — the top event cannot occur.
                self.solves += 1
                self.sat_calls += sat_calls
                return None
            self._cores.append(core)

        raise BudgetExceededError(
            f"incremental MaxSAT session exceeded {self.max_rounds} core rounds"
        )

    def _usable_cores(
        self, active_blocks: Set[Literal]
    ) -> Tuple[List[FrozenSet[Literal]], bool]:
        """Cached cores valid under ``active_blocks``, stripped of block literals.

        The second element is the exhaustion flag: a core consisting solely of
        active block assumptions means the blocked cut sets alone already
        exhaust the structure, so the solve's answer is ``None``.
        """
        usable: List[FrozenSet[Literal]] = []
        for core in self._cores:
            block_part = frozenset(
                literal for literal in core if abs(literal) in self._block_var_set
            )
            if not block_part <= active_blocks:
                continue  # depends on a blocking clause that is not active
            stripped = core - block_part
            if not stripped:
                return [], True
            usable.append(stripped)
        return usable, False

    # -- batched re-rank -------------------------------------------------------

    def _register_candidate(self, events: Tuple[str, ...]) -> None:
        """Admit a SAT-verified optimal cut set into the candidate pool."""
        if events in self._pool_index:
            return
        self._pool_index[events] = len(self._pool_order)
        self._pool_order.append(events)
        columns = [self._event_column[name] for name in events]
        self._pool_columns.append(columns)
        mask = 0
        for column in columns:
            mask |= 1 << column
        self._pool_masks.append(mask)

    @property
    def pool_size(self) -> int:
        return len(self._pool_order)

    def _contains_pooled(self, events: Tuple[str, ...]) -> bool:
        """Whether some pooled candidate is a subset of ``events``.

        This is the SAT-free feasibility certificate: a pooled candidate is a
        verified cut set, and any superset of a cut set admits a model, so the
        oracle call the sequential loop would make is guaranteed to succeed.
        """
        if events in self._pool_index:
            return True
        mask = 0
        for name in events:
            mask |= 1 << self._event_column[name]
        return any(candidate & ~mask == 0 for candidate in self._pool_masks)

    @staticmethod
    def _admissible(
        events: Tuple[str, ...], blocked_sets: Tuple[FrozenSet[str], ...]
    ) -> bool:
        """No active blocking clause forbids ``events`` (or a superset rule)."""
        event_set = frozenset(events)
        return all(not blocked <= event_set for blocked in blocked_sets)

    #: Node / family-size caps for minimal-hitting-set enumeration; blowing
    #: either cap disables the exact pooled gate for that core state (the
    #: packing lower bound takes over — still correct, just less often tight).
    #: The node cap is a ceiling: the per-batch budget scales with the number
    #: of scenarios the enumeration can amortise over (``_MHS_NODES_PER_ROW``),
    #: so a small monitor batch never pays a long enumeration it cannot recoup.
    #: The family cap is tier-aware: scoring thousands of candidates is one
    #: cheap matmul on the numpy tier but real per-candidate loop work on the
    #: stdlib tiers.
    _MHS_NODE_CAP = 1_000_000
    _MHS_NODES_PER_ROW = 2_000
    _MHS_NODE_FLOOR = 25_000
    _MHS_SET_CAP = 4096
    _MHS_SET_CAP_SCALAR = 512

    def _mhs_budgets(self, scenarios: int) -> Tuple[int, int]:
        """(node budget, family cap) for a batch of ``scenarios`` re-solves."""
        node_budget = min(
            self._MHS_NODE_CAP,
            max(self._MHS_NODE_FLOOR, self._MHS_NODES_PER_ROW * scenarios),
        )
        set_cap = (
            self._MHS_SET_CAP
            if self._kernels.name == "numpy"
            else self._MHS_SET_CAP_SCALAR
        )
        return node_budget, set_cap

    def _minimal_hitting_sets(
        self,
        usable: List[FrozenSet[Literal]],
        index: CoverageIndex,
        node_budget: Optional[int] = None,
        set_cap: Optional[int] = None,
    ) -> Optional[List[FrozenSet[Literal]]]:
        """All subset-minimal hitting sets of ``usable``, or ``None`` on overflow.

        Weight-independent, so computed once per core state.  With strictly
        positive weights every minimum-cost hitting set is subset-minimal, so
        this family always contains the per-scenario optimum — which is what
        turns per-scenario optimality into a pure scoring problem.
        """
        if node_budget is None:
            node_budget = self._MHS_NODE_CAP
        if set_cap is None:
            set_cap = self._MHS_SET_CAP
        coverage = index.coverage
        branch_order = [sorted(core, key=abs) for core in usable]
        found: Set[FrozenSet[Literal]] = set()
        nodes = 0

        def search(chosen: Set[Literal], unhit_mask: int) -> bool:
            nonlocal nodes
            nodes += 1
            if nodes > node_budget or len(found) > set_cap:
                return False
            if not unhit_mask:
                found.add(frozenset(chosen))
                return True
            core_index = (unhit_mask & -unhit_mask).bit_length() - 1
            for element in branch_order[core_index]:
                if element in chosen:
                    continue
                chosen.add(element)
                if not search(chosen, unhit_mask & ~coverage[element]):
                    return False
                chosen.discard(element)
            return True

        if not search(set(), index.all_mask):
            return None
        # The search emits every minimal hitting set (choosing its elements in
        # core order) but also non-minimal combinations; filter by subset.
        by_size = sorted(found, key=lambda s: (len(s), sorted(s, key=abs)))
        minimal: List[FrozenSet[Literal]] = []
        for candidate in by_size:
            if not any(kept < candidate for kept in minimal):
                minimal.append(candidate)
        return minimal

    def _prepare_rerank(
        self, blocked: Sequence[Tuple[str, ...]], scenarios: int = 1
    ) -> _RerankPrep:
        """The weight-independent batch state for the current core collection.

        ``scenarios`` sizes the minimal-hitting-set enumeration budget: the
        family is worth enumerating in proportion to the number of re-solves
        it can answer SAT-free.  Enumerations (including overflows) are
        memoised per ``(core count, block signature)`` on the session, so a
        long-lived monitor pays the enumeration once, not once per batch.
        """
        block_assumptions = sorted(
            (self._block_assumption(cut_set) for cut_set in blocked), key=abs
        )
        active_blocks = set(block_assumptions)
        usable, exhausted = self._usable_cores(active_blocks)
        index: Optional[CoverageIndex] = None
        disjoint_columns: List[List[int]] = []
        mhs_literals: Optional[List[FrozenSet[Literal]]] = None
        mhs_events: Optional[List[Tuple[str, ...]]] = None
        mhs_columns: Optional[List[List[int]]] = None
        mhs_index: Optional[Dict[Tuple[str, ...], int]] = None
        if not exhausted:
            index = CoverageIndex(usable)
            # Greedy disjoint-core packing in discovery order: any hitting set
            # must pay at least the cheapest element of each selected core.
            claimed: Set[Literal] = set()
            for core in usable:
                if claimed.isdisjoint(core):
                    claimed |= core
                    disjoint_columns.append(
                        sorted(self._selector_column[literal] for literal in core)
                    )
            node_budget, set_cap = self._mhs_budgets(scenarios)
            state_key = (len(self._cores), frozenset(active_blocks))
            cached = self._mhs_families.get(state_key)
            if cached is not None and (
                cached[0] is not None
                or (cached[1] >= node_budget and cached[2] >= set_cap)
            ):
                mhs_literals = cached[0]
            else:
                if len(self._mhs_families) >= 64:  # tiny, but never unbounded
                    self._mhs_families.clear()
                mhs_literals = self._minimal_hitting_sets(
                    usable, index, node_budget, set_cap
                )
                self._mhs_families[state_key] = (mhs_literals, node_budget, set_cap)
            if mhs_literals is not None:
                mhs_events = [
                    tuple(sorted(self._var_events[abs(literal)] for literal in s))
                    for s in mhs_literals
                ]
                mhs_columns = [
                    sorted(self._selector_column[literal] for literal in s)
                    for s in mhs_literals
                ]
                mhs_index = {events: i for i, events in enumerate(mhs_events)}
        return _RerankPrep(
            block_assumptions=block_assumptions,
            signature=frozenset(active_blocks),
            blocked_sets=tuple(frozenset(cut_set) for cut_set in blocked),
            core_count=len(self._cores),
            usable=usable,
            exhausted=exhausted,
            index=index,
            disjoint_columns=disjoint_columns,
            mhs_literals=mhs_literals,
            mhs_events=mhs_events,
            mhs_columns=mhs_columns,
            mhs_index=mhs_index,
        )

    def _scaled_row(self, weights: Dict[str, float]) -> List[int]:
        """One scenario's scaled weights in event-column order."""
        return [self._scale_weight(weights[name]) for name in self._event_order]

    def _lower_bounds(
        self, prep: _RerankPrep, rows: Sequence[Sequence[int]]
    ) -> List[int]:
        """Per-scenario packing lower bound on the minimum hitting-set cost."""
        if prep.exhausted or not prep.disjoint_columns:
            return [0] * len(rows)
        return self._kernels.greedy_lower_bound(prep.disjoint_columns, rows)

    def _mhs_scores(
        self, prep: _RerankPrep, rows: Sequence[Sequence[int]]
    ) -> Tuple[List[List[int]], List[int]]:
        """Score the minimal-hitting-set family over the whole batch.

        One kernel call builds the ``candidates × scenarios`` matrix (a single
        int64 matmul on the numpy tier); the per-scenario column minimum is
        the **exact** minimum hitting-set cost, since every minimum-cost
        hitting set under strictly positive weights is subset-minimal and the
        family enumerates all of those.
        """
        if prep.exhausted or prep.mhs_columns is None:
            return [], [0] * len(rows)
        scores = self._kernels.score_candidates(prep.mhs_columns, rows)
        opts = [min(column) for column in zip(*scores)]
        return scores, opts

    def _result_for(
        self,
        events: Tuple[str, ...],
        scaled_cost: int,
        weights: Dict[str, float],
        started: float,
        tier: str,
    ) -> IncrementalSolveResult:
        probability_weights = {name: weights[name] for name in events}
        return IncrementalSolveResult(
            events=events,
            scaled_cost=scaled_cost,
            cost=sum(probability_weights.values()),
            probability_weights=probability_weights,
            sat_calls=0,
            solve_time=time.perf_counter() - started,
            rerank=tier,
        )

    def _ranked_one(
        self,
        weights: Dict[str, float],
        blocked: Sequence[Tuple[str, ...]],
        prep: _RerankPrep,
        row: Sequence[int],
        lower_bound: int,
        mhs_scores: Sequence[Sequence[int]],
        opts: Sequence[int],
        position: int,
    ) -> Optional[IncrementalSolveResult]:
        """Resolve one batch scenario through the pool/certify/B&B/fallback ladder."""
        started = time.perf_counter()
        if prep.exhausted:
            self.solves += 1
            self.rerank_stats["pooled"] += 1
            return None
        exact = prep.mhs_columns is not None
        optimum = opts[position] if exact else None

        # Pooled tier, seed gate: the memoised hitting set for this block
        # signature (the previous scenario's optimum, in steady state).  When
        # it still hits every core, its cost attains the scenario's exact
        # optimum (or, in the enumeration-overflow regime, the packing lower
        # bound), it contains a pooled cut set and no blocking clause forbids
        # it, it is *provably* what the sequential loop would return: the
        # seeded branch-and-bound adopts an optimal seed unchanged, and pool
        # containment certifies the SAT call — zero oracle work.
        seed = self._hs_memo.get(prep.signature) if prep.usable else set()
        if seed is not None and prep.index is not None and prep.index.covers_all(seed):
            seed_events = tuple(
                sorted(self._var_events[abs(literal)] for literal in seed)
            )
            if self._admissible(seed_events, prep.blocked_sets) and self._contains_pooled(
                seed_events
            ):
                if exact:
                    mhs_position = prep.mhs_index.get(seed_events)
                    seed_score = (
                        mhs_scores[mhs_position][position]
                        if mhs_position is not None
                        else sum(row[self._event_column[name]] for name in seed_events)
                    )
                    seed_optimal = seed_score == optimum
                else:
                    seed_score = sum(
                        row[self._event_column[name]] for name in seed_events
                    )
                    seed_optimal = seed_score == lower_bound
                if seed_optimal:
                    self._hs_memo[prep.signature] = set(seed)
                    self.solves += 1
                    self._register_candidate(seed_events)
                    self.rerank_stats["pooled"] += 1
                    return self._result_for(
                        seed_events, seed_score, weights, started, "pooled"
                    )

        # Pooled tier, argmin gate: with the minimal-hitting-set family
        # enumerated, the scored argmin *is* the optimum whenever it is
        # unique — the branch-and-bound must return that same set (a tie
        # would require a second minimum-score candidate, and any seed
        # adoption is itself min-cost hence minimal hence in the family).
        if exact:
            winners = [
                index
                for index, candidate_scores in enumerate(mhs_scores)
                if candidate_scores[position] == optimum
            ]
            if len(winners) == 1:
                events = prep.mhs_events[winners[0]]
                if self._contains_pooled(events) and self._admissible(
                    events, prep.blocked_sets
                ):
                    self._hs_memo[prep.signature] = set(prep.mhs_literals[winners[0]])
                    self.solves += 1
                    self._register_candidate(events)
                    self.rerank_stats["pooled"] += 1
                    return self._result_for(events, optimum, weights, started, "pooled")

        # B&B tier: tied optima with a stale seed, an un-certifiable winner
        # or an overflowed enumeration — run the exact hitting-set search,
        # exactly as the sequential loop's first round would, then try to
        # certify its result without the SAT call.
        self.rerank_stats["bnb"] += 1
        scaled: Dict[Literal, int] = {
            selector: row[column] for selector, column in self._selector_column.items()
        }
        hitting_set, hs_cost = minimum_cost_hitting_set(
            prep.usable, scaled, seed=self._hs_memo.get(prep.signature)
        )
        hs_events = tuple(
            sorted(self._var_events[abs(literal)] for literal in hitting_set)
        )
        if self._contains_pooled(hs_events) and self._admissible(
            hs_events, prep.blocked_sets
        ):
            # Feasible (superset of a verified cut set) and block-admissible:
            # the sequential SAT call succeeds, and with strictly positive
            # scaled weights its model's true events are exactly the hitting
            # set — so this *is* the sequential result, SAT-free.
            self._hs_memo[prep.signature] = hitting_set
            self.solves += 1
            self._register_candidate(hs_events)
            self.rerank_stats["certified"] += 1
            return self._result_for(hs_events, hs_cost, weights, started, "certified")

        # Fallback: no SAT-free certificate — run the full core-discovery
        # loop.  ``_solve_impl`` was not passed any state from the ladder, so
        # its memo/core/pool evolution is identical to the sequential path.
        self.rerank_stats["fallback"] += 1
        result = self._solve_impl(weights, blocked)
        if result is not None:
            result = dataclasses.replace(result, rerank="fallback")
        return result

    def solve_batch(
        self,
        weights_seq: Sequence[Dict[str, float]],
        blocked: Sequence[Tuple[str, ...]] = (),
    ) -> List[Optional[IncrementalSolveResult]]:
        """Batched weight-only re-rank: results identical to a :meth:`solve` loop.

        Everything weight-independent is computed once per batch — the usable
        cores, their :class:`~repro.kernels.bitset.CoverageIndex`, a greedy
        disjoint-core packing, the candidate pool's incidence structure — and
        the per-scenario work collapses to integer scoring through the
        session's kernel suite: one ``candidates × scenarios`` score matrix
        (a single int64 matmul on the numpy tier) plus one vectorised packing
        lower bound per scenario.  Each scenario then walks the ladder in
        :meth:`_ranked_one`: **pooled** (zero SAT calls) → **certified** (one
        B&B, zero SAT calls) → **fallback** (full sequential loop).

        The returned results — events, scaled cost, float cost, probability
        weights — are byte-identical to calling :meth:`solve` once per
        scenario in order, because every SAT-free tier fires only when the
        sequential outcome is provable: the seeded branch-and-bound is a
        deterministic function of (cores, weights, seed), scaled weights are
        strictly positive (so a SAT model's events equal the hitting set
        exactly), and pool membership certifies the oracle call.  Only the
        telemetry differs: ``sat_calls``/``solve_time`` reflect the work
        actually done, and ``rerank`` names the tier that resolved each
        scenario.  Raises the same exceptions the sequential loop would
        (:class:`BudgetExceededError` from the search budgets included).
        """
        with _trace.span(
            "maxsat.solve_batch", scenarios=len(weights_seq), blocked=len(blocked)
        ) as span:
            stats_before = dict(self.rerank_stats)
            calls_before = self.sat_calls
            results: List[Optional[IncrementalSolveResult]] = []
            if weights_seq:
                rows = [self._scaled_row(weights) for weights in weights_seq]
                prep = self._prepare_rerank(blocked, len(weights_seq))
                lower_bounds = self._lower_bounds(prep, rows)
                mhs_scores, opts = self._mhs_scores(prep, rows)
                for position, weights in enumerate(weights_seq):
                    if prep.core_count != len(self._cores):
                        # A fallback discovered new cores: the coverage index,
                        # packing bound and score matrix are stale — rebuild.
                        prep = self._prepare_rerank(blocked, len(weights_seq))
                        lower_bounds = self._lower_bounds(prep, rows)
                        mhs_scores, opts = self._mhs_scores(prep, rows)
                    results.append(
                        self._ranked_one(
                            weights,
                            blocked,
                            prep,
                            rows[position],
                            lower_bounds[position],
                            mhs_scores,
                            opts,
                            position,
                        )
                    )
            if span.is_recording:
                span.add("sat_calls", self.sat_calls - calls_before)
                for tier, count in self.rerank_stats.items():
                    span.add(tier, count - stats_before[tier])
                span.add(
                    "solutions", sum(1 for result in results if result is not None)
                )
            return results

    # -- introspection ---------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self._cores)

    @property
    def num_block_clauses(self) -> int:
        return len(self._block_vars)

    @property
    def num_learnts(self) -> int:
        return self._solver.num_learnts

    def stats(self) -> Dict[str, Any]:
        """Counters for logging and the profiling report."""
        return {
            "solves": self.solves,
            "sat_calls": self.sat_calls,
            "rounds": self.rounds,
            "cores": len(self._cores),
            "block_clauses": len(self._block_vars),
            "learnt_clauses": self._solver.num_learnts,
            "num_vars": self.num_vars,
            "num_hard": self.num_hard,
            "encode_seconds": self.encode_time,
            "kernel": self._kernels.name,
            "pool_candidates": len(self._pool_order),
            "chunk_fallbacks": self.chunk_fallbacks,
            "rerank_pooled": self.rerank_stats["pooled"],
            "rerank_certified": self.rerank_stats["certified"],
            "rerank_bnb": self.rerank_stats["bnb"],
            "rerank_fallback": self.rerank_stats["fallback"],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalMaxSATSession(events={len(self.event_vars)}, "
            f"cores={len(self._cores)}, solves={self.solves})"
        )
