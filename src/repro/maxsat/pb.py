"""Pseudo-Boolean (weighted sum) constraint encoding.

The linear SAT–UNSAT MaxSAT engine needs to assert constraints of the form
``sum(w_i * r_i) <= bound`` over relaxation literals ``r_i`` with integer
weights ``w_i``.  We use the *Generalized Totalizer Encoding* (GTE)
[Joshi, Martins & Manquinho 2015]: a balanced merge tree in which every node
carries one indicator variable per distinct reachable partial sum.  Sums above
the bound of interest are collapsed into a single "overflow" indicator, which
keeps the encoding compact when the bound is small — exactly the regime the
model-improving search operates in, since each iteration lowers the bound.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.logic.cnf import Literal

__all__ = ["GeneralizedTotalizer", "encode_weighted_at_most"]


class GeneralizedTotalizer:
    """Generalized totalizer over weighted literals.

    Parameters
    ----------
    terms:
        Sequence of ``(weight, literal)`` pairs with positive integer weights.
    bound:
        Sums strictly greater than ``bound`` are collapsed into a single
        overflow indicator; the encoding can therefore only be used to assert
        ``sum <= k`` for ``k <= bound``.
    new_var / add_clause:
        Variable allocator and clause sink (same contract as
        :class:`repro.maxsat.cardinality.Totalizer`).
    max_node_size:
        Optional cap on the number of distinct partial sums a single merge node
        may carry.  Weighted instances with many distinct weights can make the
        encoding blow up; exceeding the cap raises :class:`SolverError` so the
        caller (e.g. the linear-search engine) can fall back gracefully.
    """

    def __init__(
        self,
        terms: Sequence[Tuple[int, Literal]],
        bound: int,
        new_var: Callable[[], int],
        add_clause: Callable[[List[Literal]], None],
        *,
        max_node_size: Optional[int] = None,
    ) -> None:
        if not terms:
            raise SolverError("generalized totalizer requires at least one term")
        if bound < 0:
            raise SolverError("bound must be non-negative")
        for weight, _ in terms:
            if weight <= 0:
                raise SolverError("weights must be positive integers")
        self._new_var = new_var
        self._add_clause = add_clause
        self._max_node_size = max_node_size
        self.bound = bound
        # Root node: mapping  partial-sum -> indicator literal  (sum >= value).
        # The special key ``bound + 1`` represents "sum exceeds the bound".
        self.sums: Dict[int, Literal] = self._build(list(terms))

    # -- tree construction --------------------------------------------------------

    def _build(self, terms: List[Tuple[int, Literal]]) -> Dict[int, Literal]:
        if len(terms) == 1:
            weight, lit = terms[0]
            return {self._clip(weight): lit}
        mid = len(terms) // 2
        left = self._build(terms[:mid])
        right = self._build(terms[mid:])
        return self._merge(left, right)

    def _clip(self, value: int) -> int:
        """Collapse sums above the bound onto the overflow bucket ``bound + 1``."""
        return value if value <= self.bound else self.bound + 1

    def _merge(self, left: Dict[int, Literal], right: Dict[int, Literal]) -> Dict[int, Literal]:
        # Guard *before* enumerating the cross product: both the number of
        # distinct sums and the number of generated clauses grow with
        # ``len(left) * len(right)``, so a late check would not prevent the
        # quadratic blow-up it is meant to protect against.
        if self._max_node_size is not None and len(left) * len(right) > 4 * self._max_node_size:
            raise SolverError(
                f"generalized totalizer merge of {len(left)}x{len(right)} sums exceeds the "
                f"size limit of {self._max_node_size} distinct sums per node"
            )
        # Possible sums of the merged node.
        values = set()
        for lv in left:
            values.add(self._clip(lv))
        for rv in right:
            values.add(self._clip(rv))
        for lv in left:
            for rv in right:
                values.add(self._clip(lv + rv))

        if self._max_node_size is not None and len(values) > self._max_node_size:
            raise SolverError(
                f"generalized totalizer node would carry {len(values)} distinct sums, "
                f"exceeding the limit of {self._max_node_size}"
            )

        node: Dict[int, Literal] = {value: self._new_var() for value in sorted(values)}

        # Counting clauses: child sums imply parent sums.
        for lv, llit in left.items():
            self._add_clause([-llit, node[self._clip(lv)]])
        for rv, rlit in right.items():
            self._add_clause([-rlit, node[self._clip(rv)]])
        for lv, llit in left.items():
            for rv, rlit in right.items():
                self._add_clause([-llit, -rlit, node[self._clip(lv + rv)]])

        # Ordering clauses: an indicator for a larger sum implies indicators for
        # every smaller sum, keeping the unary structure consistent.
        ordered = sorted(node)
        for smaller, larger in zip(ordered, ordered[1:]):
            self._add_clause([-node[larger], node[smaller]])
        return node

    # -- constraint emission --------------------------------------------------------

    def assert_at_most(self, k: int) -> None:
        """Add unit clauses asserting that the weighted sum is at most ``k``."""
        if k > self.bound:
            raise SolverError(
                f"cannot assert sum <= {k}: encoding was built with bound {self.bound}"
            )
        for value, lit in self.sums.items():
            if value > k:
                self._add_clause([-lit])


def encode_weighted_at_most(
    terms: Sequence[Tuple[int, Literal]],
    k: int,
    new_var: Callable[[], int],
    add_clause: Callable[[List[Literal]], None],
    *,
    max_node_size: Optional[int] = None,
) -> None:
    """Add clauses enforcing ``sum(w_i * l_i) <= k``.

    Terms whose individual weight already exceeds ``k`` force their literal to
    false directly; the remaining terms go through the generalized totalizer.
    """
    if k < 0:
        raise SolverError("bound must be non-negative")
    remaining: List[Tuple[int, Literal]] = []
    for weight, lit in terms:
        if weight > k:
            add_clause([-lit])
        else:
            remaining.append((weight, lit))
    if not remaining:
        return
    total = sum(weight for weight, _ in remaining)
    if total <= k:
        return
    gte = GeneralizedTotalizer(remaining, k, new_var, add_clause, max_node_size=max_node_size)
    gte.assert_at_most(k)
