"""WCNF preprocessing: simplify a Weighted Partial MaxSAT instance before solving.

The simplifications are the standard cheap ones — they preserve the set of
optimal solutions (up to the values of variables that become irrelevant) and
the optimal cost structure:

* **hard unit propagation** — unit hard clauses force literals; forced
  literals simplify every other clause, possibly cascading;
* **tautology and duplicate removal** among hard clauses;
* **hard subsumption** — a hard clause that is a superset of another is
  redundant;
* **soft clause resolution against forced literals** — a soft clause
  satisfied by the forced literals is dropped (it can never cost anything);
  one falsified by them is dropped too and its weight becomes *mandatory
  cost* that every solution pays;
* **duplicate soft merging** — identical soft clauses are merged by summing
  their weights.

Forced literals are retained as unit hard clauses in the simplified instance,
so any model of the simplified instance is a model of the original instance
over the same variable numbering, and costs measured on the original instance
are directly comparable.  :class:`PreprocessingEngine` wraps any engine with
this preprocessing step, which is how the preprocessing ablation benchmark
exercises it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.logic.cnf import Literal
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus

__all__ = ["PreprocessStats", "PreprocessResult", "preprocess_instance", "PreprocessingEngine"]


@dataclass
class PreprocessStats:
    """Counters describing what the preprocessor did."""

    forced_literals: int = 0
    hard_removed: int = 0
    hard_shrunk: int = 0
    soft_dropped_satisfied: int = 0
    soft_dropped_falsified: int = 0
    soft_merged: int = 0
    subsumed: int = 0

    def total_simplifications(self) -> int:
        return (
            self.forced_literals
            + self.hard_removed
            + self.hard_shrunk
            + self.soft_dropped_satisfied
            + self.soft_dropped_falsified
            + self.soft_merged
            + self.subsumed
        )


@dataclass
class PreprocessResult:
    """Outcome of preprocessing a WCNF instance.

    Attributes
    ----------
    instance:
        The simplified instance (same variable numbering as the original), or
        ``None`` when preprocessing already proved the hard part unsatisfiable.
    forced:
        Literals forced true by hard unit propagation.
    mandatory_cost:
        Scaled weight every solution must pay (soft clauses falsified by the
        forced literals).
    stats:
        Simplification counters.
    """

    instance: Optional[WPMaxSATInstance]
    forced: Tuple[Literal, ...]
    mandatory_cost: int
    stats: PreprocessStats = field(default_factory=PreprocessStats)

    @property
    def proven_unsat(self) -> bool:
        return self.instance is None


def _propagate_hard_units(
    hard: List[Tuple[Literal, ...]], stats: PreprocessStats
) -> Tuple[Optional[List[Tuple[Literal, ...]]], Set[Literal]]:
    """Fixed-point unit propagation over the hard clauses.

    Returns the simplified clause list (without the forced units) and the set
    of forced literals, or ``(None, forced)`` when a conflict was derived.
    """
    clauses = [tuple(dict.fromkeys(clause)) for clause in hard]
    forced: Set[Literal] = set()
    changed = True
    while changed:
        changed = False
        units = {clause[0] for clause in clauses if len(clause) == 1}
        new_units = units - forced
        for literal in new_units:
            if -literal in forced or -literal in new_units:
                return None, forced
        if not new_units:
            break
        forced |= new_units
        stats.forced_literals += len(new_units)
        next_clauses: List[Tuple[Literal, ...]] = []
        for clause in clauses:
            if any(literal in forced for literal in clause):
                if len(clause) > 1:
                    stats.hard_removed += 1
                continue  # satisfied (or it is one of the unit clauses themselves)
            reduced = tuple(literal for literal in clause if -literal not in forced)
            if not reduced:
                return None, forced
            if len(reduced) < len(clause):
                stats.hard_shrunk += 1
                changed = True
            next_clauses.append(reduced)
        clauses = next_clauses
        changed = changed or bool(new_units)
    return clauses, forced


def _remove_tautologies_and_duplicates(
    clauses: List[Tuple[Literal, ...]], stats: PreprocessStats
) -> List[Tuple[Literal, ...]]:
    seen: Set[frozenset] = set()
    result: List[Tuple[Literal, ...]] = []
    for clause in clauses:
        key = frozenset(clause)
        if any(-literal in key for literal in key):
            stats.hard_removed += 1
            continue
        if key in seen:
            stats.hard_removed += 1
            continue
        seen.add(key)
        result.append(clause)
    return result


def _remove_subsumed(
    clauses: List[Tuple[Literal, ...]], stats: PreprocessStats, *, max_clauses: int
) -> List[Tuple[Literal, ...]]:
    """Drop hard clauses subsumed by a shorter hard clause (quadratic; capped)."""
    if len(clauses) > max_clauses:
        return clauses
    as_sets = [frozenset(clause) for clause in clauses]
    order = sorted(range(len(clauses)), key=lambda index: len(as_sets[index]))
    kept: List[int] = []
    for index in order:
        candidate = as_sets[index]
        if any(as_sets[other] < candidate or as_sets[other] == candidate for other in kept):
            stats.subsumed += 1
            continue
        kept.append(index)
    kept_set = set(kept)
    return [clauses[index] for index in range(len(clauses)) if index in kept_set]


def preprocess_instance(
    instance: WPMaxSATInstance,
    *,
    subsumption: bool = True,
    max_subsumption_clauses: int = 20_000,
) -> PreprocessResult:
    """Simplify ``instance``; the original instance is left untouched."""
    stats = PreprocessStats()
    clauses, forced = _propagate_hard_units(list(instance.hard), stats)
    if clauses is None:
        return PreprocessResult(
            instance=None, forced=tuple(sorted(forced)), mandatory_cost=0, stats=stats
        )
    clauses = _remove_tautologies_and_duplicates(clauses, stats)
    if subsumption:
        clauses = _remove_subsumed(clauses, stats, max_clauses=max_subsumption_clauses)

    simplified = WPMaxSATInstance(precision=instance.precision)
    simplified.ensure_num_vars(instance.num_vars)
    simplified.var_names = dict(instance.var_names)
    for literal in sorted(forced):
        simplified.add_hard([literal])
    for clause in clauses:
        simplified.add_hard(list(clause))

    mandatory_cost = 0
    merged: Dict[Tuple[Literal, ...], Tuple[float, int, Optional[str]]] = {}
    for soft in instance.soft:
        literals = tuple(dict.fromkeys(soft.literals))
        if any(literal in forced for literal in literals):
            stats.soft_dropped_satisfied += 1
            continue
        reduced = tuple(literal for literal in literals if -literal not in forced)
        if not reduced:
            stats.soft_dropped_falsified += 1
            mandatory_cost += soft.scaled_weight
            continue
        key = tuple(sorted(reduced))
        if key in merged:
            weight, scaled, label = merged[key]
            merged[key] = (weight + soft.weight, scaled + soft.scaled_weight, label)
            stats.soft_merged += 1
        else:
            merged[key] = (soft.weight, soft.scaled_weight, soft.label)

    for key, (weight, scaled, label) in merged.items():
        clause = simplified.add_soft(list(key), weight, label=label)
        # Preserve the exact scaled weight (merging must not re-round).
        if clause.scaled_weight != scaled:
            simplified._soft[-1] = type(clause)(  # noqa: SLF001 - controlled rebuild
                literals=clause.literals,
                weight=weight,
                scaled_weight=scaled,
                label=label,
            )

    return PreprocessResult(
        instance=simplified,
        forced=tuple(sorted(forced)),
        mandatory_cost=mandatory_cost,
        stats=stats,
    )


class PreprocessingEngine(MaxSATEngine):
    """Wrap another engine with WCNF preprocessing.

    The wrapped engine solves the simplified instance; the resulting model is
    then re-evaluated against the *original* instance so the reported cost is
    directly comparable with every other engine (the mandatory cost of soft
    clauses killed by unit propagation is automatically included this way).
    """

    def __init__(self, inner: MaxSATEngine, *, subsumption: bool = True) -> None:
        super().__init__(max_conflicts=inner.max_conflicts)
        self.inner = inner
        self.subsumption = subsumption
        self.name = f"preprocess+{inner.name}"

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        preprocessed = preprocess_instance(instance, subsumption=self.subsumption)
        if preprocessed.proven_unsat:
            return self._unsat_result(start_time=start, sat_calls=0, conflicts=0)

        self.inner.stop_check = self.stop_check
        inner_result = self.inner.solve(preprocessed.instance)
        if inner_result.status is not MaxSATStatus.OPTIMUM or inner_result.model is None:
            return MaxSATResult(
                status=inner_result.status,
                engine=self.name,
                solve_time=time.perf_counter() - start,
                sat_calls=inner_result.sat_calls,
                conflicts=inner_result.conflicts,
            )

        model = dict(inner_result.model)
        for literal in preprocessed.forced:
            model[abs(literal)] = literal > 0
        return self._result_from_model(
            instance,
            model,
            start_time=start,
            sat_calls=inner_result.sat_calls,
            conflicts=inner_result.conflicts,
        )
