"""RC2 / OLL core-guided Weighted Partial MaxSAT engine.

The algorithm follows the RC2 solver (Ignatiev, Morgado & Marques-Silva, 2019),
which itself implements the OLL strategy:

1. every soft clause is given a selector literal used as a SAT assumption;
2. the SAT oracle is called with the active selectors as assumptions;
3. if satisfiable, the current model is optimal; otherwise the returned unsat
   core identifies soft clauses that cannot all be satisfied;
4. the minimum weight of the core is added to the lower bound, the core's
   selectors have their weights reduced, and a totalizer counting the core's
   violations is introduced whose "at most 1 violated" output becomes a new
   (sum) selector;
5. when a sum selector later reappears in a core its bound is incremented.

Weight *stratification* (activating high-weight strata first) is available as
an option and is exposed as a distinct configuration in the parallel portfolio.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import BudgetExceededError, SolverInterrupted
from repro.logic.cnf import Literal
from repro.maxsat.cardinality import Totalizer
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["RC2Engine"]


class RC2Engine(MaxSATEngine):
    """Core-guided (OLL) Weighted Partial MaxSAT solver.

    Parameters
    ----------
    stratified:
        When true, selectors are activated stratum by stratum in decreasing
        weight order.  Stratification pays off on instances with highly skewed
        weights, such as fault trees mixing very likely and very unlikely
        events, and gives the portfolio a genuinely different configuration.
    max_conflicts:
        Optional conflict budget for the underlying CDCL solver; when exhausted
        the engine returns a result with status ``UNKNOWN``.
    """

    def __init__(
        self,
        *,
        stratified: bool = False,
        max_conflicts: Optional[int] = None,
    ) -> None:
        super().__init__(max_conflicts=max_conflicts)
        self.stratified = stratified
        self.name = "rc2-stratified" if stratified else "rc2"

    # ------------------------------------------------------------------ solve

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        solver = self._new_sat_solver(instance)
        selector_map = self._attach_selectors(solver, instance)

        # Remaining weight per active selector literal.
        weights: Dict[Literal, int] = dict(selector_map.weights)
        # Totalizer bookkeeping for "sum" selectors:  selector -> (totalizer, bound).
        sums: Dict[Literal, Tuple[Totalizer, int]] = {}

        sat_calls = 0

        # Stratification: original selectors may start *inactive* and are
        # activated stratum by stratum (highest weight first).  Sum selectors
        # created by core relaxation are always active immediately.
        if self.stratified:
            strata = self._strata(weights)[1:]  # the first stratum starts active
            inactive: Set[Literal] = set().union(*strata) if strata else set()
        else:
            strata = []
            inactive = set()
        stratum_index = 0

        try:
            while True:
                self._check_stop()
                assumptions = [
                    sel
                    for sel, weight in weights.items()
                    if weight > 0 and sel not in inactive
                ]
                result = solver.solve(assumptions)
                sat_calls += 1

                if result.status is SatStatus.SAT:
                    if stratum_index < len(strata):
                        # Activate the next weight stratum and keep refining.
                        inactive -= strata[stratum_index]
                        stratum_index += 1
                        continue
                    model = result.model or {}
                    return self._result_from_model(
                        instance,
                        model,
                        start_time=start,
                        sat_calls=sat_calls,
                        conflicts=solver.conflicts,
                    )

                core = list(result.core)
                if not core:
                    # Conflict independent of assumptions: hard clauses unsatisfiable.
                    return self._unsat_result(
                        start_time=start, sat_calls=sat_calls, conflicts=solver.conflicts
                    )

                min_weight = min(weights[sel] for sel in core)
                self._process_core(solver, core, min_weight, weights, sums)
        except (BudgetExceededError, SolverInterrupted):
            return MaxSATResult(
                status=MaxSATStatus.UNKNOWN,
                engine=self.name,
                solve_time=time.perf_counter() - start,
                sat_calls=sat_calls,
                conflicts=solver.conflicts,
            )

    # ------------------------------------------------------------- core handling

    def _process_core(
        self,
        solver: CDCLSolver,
        core: List[Literal],
        min_weight: int,
        weights: Dict[Literal, int],
        sums: Dict[Literal, Tuple[Totalizer, int]],
    ) -> None:
        """Relax an unsat core following the RC2/OLL strategy."""
        if len(core) == 1 and core[0] not in sums:
            # Unit core over an original soft clause: it can never be satisfied
            # together with the hard clauses, so pay its full weight and harden
            # its negation.
            sel = core[0]
            weights[sel] -= min_weight
            if weights[sel] == 0:
                solver.add_clause([-sel])
            return

        relax_literals: List[Literal] = []

        for sel in core:
            if sel in sums:
                self._process_sum_selector(sel, min_weight, weights, sums)
                relax_literals.append(-sel)
            else:
                self._process_original_selector(solver, sel, min_weight, weights, relax_literals)

        if len(relax_literals) > 1:
            totalizer = Totalizer(
                relax_literals,
                new_var=solver.new_var,
                add_clause=solver.add_clause,
            )
            # We have paid for exactly one violation among the relaxation
            # literals; a second violation costs `min_weight` more, so "at most
            # one violated" becomes a new soft (sum) selector.
            bound = 1
            if bound < len(relax_literals):
                new_selector = -totalizer.at_least(bound + 1)
                weights[new_selector] = weights.get(new_selector, 0) + min_weight
                sums[new_selector] = (totalizer, bound)

    def _process_original_selector(
        self,
        solver: CDCLSolver,
        sel: Literal,
        min_weight: int,
        weights: Dict[Literal, int],
        relax_literals: List[Literal],
    ) -> None:
        if weights[sel] == min_weight:
            # Fully paid: deactivate the selector; its violation indicator joins
            # the new totalizer.
            weights[sel] = 0
            relax_literals.append(-sel)
        else:
            # Residual weight remains.  Create a relaxed copy: a fresh variable
            # `v` with the hard clause (sel ∨ v) absorbs the violation counted
            # by the new totalizer while the original selector stays active
            # with its reduced weight (pysat's RC2 does exactly this).
            weights[sel] -= min_weight
            relaxed_copy = solver.new_var()
            solver.add_clause([sel, relaxed_copy])
            relax_literals.append(relaxed_copy)

    def _process_sum_selector(
        self,
        sel: Literal,
        min_weight: int,
        weights: Dict[Literal, int],
        sums: Dict[Literal, Tuple[Totalizer, int]],
    ) -> None:
        totalizer, bound = sums[sel]
        if weights[sel] == min_weight:
            weights[sel] = 0
        else:
            weights[sel] -= min_weight
        # Increase the bound of this sum: allowing `bound + 1` violations is a
        # new soft decision with weight `min_weight`.
        new_bound = bound + 1
        if new_bound < len(totalizer.outputs):
            new_selector = -totalizer.at_least(new_bound + 1)
            weights[new_selector] = weights.get(new_selector, 0) + min_weight
            sums[new_selector] = (totalizer, new_bound)

    # ------------------------------------------------------------- stratification

    @staticmethod
    def _strata(weights: Dict[Literal, int]) -> List[Set[Literal]]:
        """Group selectors into strata of equal weight, highest weight first."""
        by_weight: Dict[int, Set[Literal]] = {}
        for sel, weight in weights.items():
            by_weight.setdefault(weight, set()).add(sel)
        return [by_weight[w] for w in sorted(by_weight, reverse=True)]
