"""Weighted Partial MaxSAT instance model.

An instance consists of *hard* clauses that every solution must satisfy and
*soft* clauses, each carrying a positive weight; the objective is to find an
assignment satisfying all hard clauses while minimising the total weight of
falsified soft clauses.

Weights may be provided as floats (the MPMCS pipeline produces real-valued
``-log p`` weights, paper Step 3).  Internally every weight is scaled to an
integer using a configurable ``precision`` so that the core-guided algorithms
can perform exact arithmetic; results report both the scaled integer cost and
the original-scale float cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.logic.cnf import CNF, Literal

__all__ = ["SoftClause", "WPMaxSATInstance", "DEFAULT_PRECISION", "scale_weight"]

#: Default scale factor applied to float weights (1e-9 weight resolution).
DEFAULT_PRECISION = 10**9


def scale_weight(weight: float, precision: int) -> int:
    """Quantise a float weight to the integer solver scale (rounding, min 1).

    The single definition of weight quantisation: every consumer — instance
    construction, tie detection in the facade, the warm incremental session —
    must agree bit-for-bit on this mapping, or two solvers could disagree on
    which of two near-tied optima is cheaper.
    """
    if weight <= 0 or not math.isfinite(weight):
        raise SolverError(f"weight must be positive and finite, got {weight}")
    return max(1, int(round(weight * precision)))


@dataclass(frozen=True)
class SoftClause:
    """A soft clause with its original float weight and scaled integer weight."""

    literals: Tuple[Literal, ...]
    weight: float
    scaled_weight: int
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.literals:
            raise SolverError("soft clause must contain at least one literal")
        if self.weight <= 0 or not math.isfinite(self.weight):
            raise SolverError(f"soft clause weight must be positive and finite, got {self.weight}")
        if self.scaled_weight <= 0:
            raise SolverError("scaled soft clause weight must be positive")


class WPMaxSATInstance:
    """A Weighted Partial MaxSAT instance.

    Parameters
    ----------
    precision:
        Scale factor used to convert float weights to integers.  The default of
        ``10**9`` keeps nine decimal digits, far below the probability
        resolution that matters for fault-tree analysis.
    """

    def __init__(self, *, precision: int = DEFAULT_PRECISION) -> None:
        if precision <= 0:
            raise SolverError("precision must be a positive integer")
        self.precision = precision
        self._hard: List[Tuple[Literal, ...]] = []
        self._soft: List[SoftClause] = []
        self._num_vars = 0
        self.var_names: Dict[int, str] = {}

    # -- construction ---------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def hard(self) -> Tuple[Tuple[Literal, ...], ...]:
        return tuple(self._hard)

    @property
    def soft(self) -> Tuple[SoftClause, ...]:
        return tuple(self._soft)

    @property
    def num_hard(self) -> int:
        return len(self._hard)

    @property
    def num_soft(self) -> int:
        return len(self._soft)

    def ensure_num_vars(self, count: int) -> None:
        self._num_vars = max(self._num_vars, count)

    def new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def add_hard(self, literals: Sequence[Literal]) -> None:
        """Add a hard (mandatory) clause."""
        clause = tuple(literals)
        if not clause:
            raise SolverError("hard clause cannot be empty")
        for lit in clause:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_num_vars(abs(lit))
        self._hard.append(clause)

    def add_hard_cnf(self, cnf: CNF) -> None:
        """Add every clause of ``cnf`` as a hard clause and import its name table."""
        for clause in cnf:
            self.add_hard(list(clause))
        self.ensure_num_vars(cnf.num_vars)
        for var, name in cnf.var_to_name.items():
            self.var_names[var] = name

    def add_soft(
        self,
        literals: Sequence[Literal],
        weight: float,
        *,
        label: Optional[str] = None,
    ) -> SoftClause:
        """Add a soft clause with the given positive weight."""
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_num_vars(abs(lit))
        scaled = self.scale_weight(weight)
        soft = SoftClause(literals=clause, weight=float(weight), scaled_weight=scaled, label=label)
        self._soft.append(soft)
        return soft

    def scale_weight(self, weight: float) -> int:
        """Convert a float weight to the internal integer scale (rounding, min 1)."""
        return scale_weight(weight, self.precision)

    def unscale_cost(self, scaled_cost: int) -> float:
        """Convert an integer cost back to the original float scale."""
        return scaled_cost / self.precision

    # -- inspection -------------------------------------------------------------

    def total_soft_weight(self) -> int:
        """Sum of all scaled soft weights (an upper bound on any solution cost)."""
        return sum(s.scaled_weight for s in self._soft)

    def cost_of_model(self, model: Mapping[int, bool]) -> int:
        """Scaled cost (total weight of soft clauses falsified) of ``model``."""
        cost = 0
        for soft in self._soft:
            satisfied = any(model.get(abs(lit), False) == (lit > 0) for lit in soft.literals)
            if not satisfied:
                cost += soft.scaled_weight
        return cost

    def hard_satisfied_by(self, model: Mapping[int, bool]) -> bool:
        """Check whether every hard clause is satisfied by ``model``."""
        for clause in self._hard:
            if not any(model.get(abs(lit), False) == (lit > 0) for lit in clause):
                return False
        return True

    def copy(self) -> "WPMaxSATInstance":
        clone = WPMaxSATInstance(precision=self.precision)
        clone._hard = list(self._hard)
        clone._soft = list(self._soft)
        clone._num_vars = self._num_vars
        clone.var_names = dict(self.var_names)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WPMaxSATInstance(vars={self._num_vars}, hard={len(self._hard)}, "
            f"soft={len(self._soft)})"
        )
