"""Fu–Malik / WPM1 core-guided Weighted Partial MaxSAT engine.

The classic Fu–Malik algorithm (extended to weights as WPM1 by Ansótegui,
Bonet & Levy) repeatedly calls a SAT oracle on the hard clauses plus the
currently-active soft selectors:

* if the oracle answers SAT, the model is optimal;
* otherwise the unsat core identifies a set of soft clauses; the minimum
  weight ``w`` of the core is charged to the cost, every core clause is split
  into a residual part (weight reduced by ``w``) and a *relaxed copy* of
  weight ``w`` extended with a fresh relaxation variable, and an exactly-one
  constraint over the new relaxation variables is added to the hard part.

The algorithm is noticeably slower than RC2 on instances needing many cores,
but it is simple, independent code — valuable both as a portfolio member and
as a cross-check in the test suite.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import BudgetExceededError, SolverInterrupted
from repro.logic.cnf import Literal
from repro.maxsat.cardinality import encode_at_most_k
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["FuMalikEngine"]


class FuMalikEngine(MaxSATEngine):
    """Weighted Fu–Malik (WPM1) core-guided MaxSAT solver."""

    name = "fu-malik"

    def __init__(self, *, max_conflicts: Optional[int] = None) -> None:
        super().__init__(max_conflicts=max_conflicts)

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        solver = self._new_sat_solver(instance)

        # Active soft constraints: selector literal -> (weight, clause literals).
        # The clause literals are needed to create relaxed copies when the
        # selector appears in a core.
        soft_clauses: Dict[Literal, Tuple[int, Tuple[Literal, ...]]] = {}
        for soft in instance.soft:
            selector, clause = self._make_selector(solver, soft.literals)
            existing = soft_clauses.get(selector)
            weight = soft.scaled_weight + (existing[0] if existing else 0)
            soft_clauses[selector] = (weight, clause)

        sat_calls = 0
        try:
            while True:
                self._check_stop()
                assumptions = [sel for sel, (weight, _) in soft_clauses.items() if weight > 0]
                result = solver.solve(assumptions)
                sat_calls += 1

                if result.status is SatStatus.SAT:
                    model = result.model or {}
                    return self._result_from_model(
                        instance,
                        model,
                        start_time=start,
                        sat_calls=sat_calls,
                        conflicts=solver.conflicts,
                    )

                core = list(result.core)
                if not core:
                    return self._unsat_result(
                        start_time=start, sat_calls=sat_calls, conflicts=solver.conflicts
                    )

                min_weight = min(soft_clauses[sel][0] for sel in core)
                self._relax_core(solver, core, min_weight, soft_clauses)
        except (BudgetExceededError, SolverInterrupted):
            return MaxSATResult(
                status=MaxSATStatus.UNKNOWN,
                engine=self.name,
                solve_time=time.perf_counter() - start,
                sat_calls=sat_calls,
                conflicts=solver.conflicts,
            )

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _make_selector(
        solver: CDCLSolver, literals: Tuple[Literal, ...]
    ) -> Tuple[Literal, Tuple[Literal, ...]]:
        """Attach a selector to a soft clause; returns (selector, clause literals)."""
        if len(literals) == 1:
            return literals[0], tuple(literals)
        relax = solver.new_var()
        solver.add_clause(list(literals) + [relax])
        return -relax, tuple(literals)

    def _relax_core(
        self,
        solver: CDCLSolver,
        core: List[Literal],
        min_weight: int,
        soft_clauses: Dict[Literal, Tuple[int, Tuple[Literal, ...]]],
    ) -> None:
        """Apply the WPM1 weight-splitting relaxation to an unsat core."""
        new_relax_vars: List[Literal] = []
        for sel in core:
            weight, clause = soft_clauses[sel]
            residual = weight - min_weight
            # Reduce (possibly to zero) the weight of the original soft clause.
            soft_clauses[sel] = (residual, clause)

            # Add a relaxed copy of weight `min_weight`: clause ∨ r, guarded by
            # a fresh selector so it can itself appear in later cores.
            relax_var = solver.new_var()
            new_relax_vars.append(relax_var)
            relaxed_clause = tuple(clause) + (relax_var,)
            copy_selector = solver.new_var()
            # copy_selector -> (clause ∨ r); assuming copy_selector enforces it.
            solver.add_clause(list(relaxed_clause) + [-copy_selector])
            soft_clauses[copy_selector] = (min_weight, relaxed_clause)

        # Exactly-one constraint over the new relaxation variables: at least one
        # (the paid violation) and at most one (Fu–Malik's key invariant).
        solver.add_clause(list(new_relax_vars))
        encode_at_most_k(
            new_relax_vars,
            1,
            new_var=solver.new_var,
            add_clause=solver.add_clause,
        )
