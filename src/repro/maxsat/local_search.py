"""Stochastic local search over WCNF instances (upper bounds, not proofs).

A weighted WalkSAT-style search that keeps every hard clause satisfied and
greedily/randomly flips variables to reduce the weight of falsified soft
clauses.  Local search cannot *prove* optimality, so it is not a
:class:`~repro.maxsat.engine.MaxSATEngine`; it is exposed as a utility that
returns a feasible model and its cost — an upper bound usable to warm-start or
sanity-check the complete engines, and a reference point for tests (any
complete engine must do at least as well).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.logic.cnf import Literal
from repro.maxsat.instance import WPMaxSATInstance
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["LocalSearchResult", "stochastic_upper_bound"]


@dataclass
class LocalSearchResult:
    """A feasible (hard-satisfying) model and the soft cost it achieves."""

    model: Dict[int, bool]
    cost: int
    float_cost: float
    flips: int
    restarts: int
    solve_time: float


def _initial_model(instance: WPMaxSATInstance) -> Optional[Dict[int, bool]]:
    """A hard-feasible starting point, obtained from the CDCL solver."""
    solver = CDCLSolver()
    for _ in range(instance.num_vars):
        solver.new_var()
    for clause in instance.hard:
        solver.add_clause(list(clause))
    result = solver.solve()
    if result.status is not SatStatus.SAT:
        return None
    return dict(result.model or {})


def _is_satisfied(clause: Sequence[Literal], model: Dict[int, bool]) -> bool:
    return any(model.get(abs(literal), False) == (literal > 0) for literal in clause)


def stochastic_upper_bound(
    instance: WPMaxSATInstance,
    *,
    max_flips: int = 20_000,
    restarts: int = 3,
    noise: float = 0.2,
    seed: Optional[int] = 7,
) -> Optional[LocalSearchResult]:
    """Best cost found by weighted local search, or ``None`` when hard is UNSAT.

    Parameters
    ----------
    instance:
        The WCNF instance to search.
    max_flips:
        Variable flips per restart.
    restarts:
        Number of independent restarts (the first starts from the CDCL model,
        later ones from random perturbations of the best model so far).
    noise:
        Probability of a random walk move instead of the greedy move.
    seed:
        Seed of the pseudo-random generator (``None`` for a fresh seed).
    """
    if not 0.0 <= noise <= 1.0:
        raise SolverError(f"noise must lie in [0, 1], got {noise}")
    start = time.perf_counter()
    rng = random.Random(seed)

    base_model = _initial_model(instance)
    if base_model is None:
        return None

    hard_clauses = [tuple(clause) for clause in instance.hard]
    soft_clauses = [(tuple(soft.literals), soft.scaled_weight) for soft in instance.soft]
    variables = list(range(1, instance.num_vars + 1))

    def cost_of(model: Dict[int, bool]) -> int:
        return sum(
            weight for literals, weight in soft_clauses if not _is_satisfied(literals, model)
        )

    def hard_ok(model: Dict[int, bool]) -> bool:
        return all(_is_satisfied(clause, model) for clause in hard_clauses)

    best_model = dict(base_model)
    best_cost = cost_of(best_model)
    total_flips = 0

    for restart in range(max(1, restarts)):
        model = dict(best_model)
        if restart > 0 and variables:
            # Perturb a few variables, then repair hard feasibility greedily by
            # reverting perturbations that broke it.
            for var in rng.sample(variables, k=max(1, len(variables) // 10)):
                model[var] = not model.get(var, False)
                if not hard_ok(model):
                    model[var] = not model[var]
        current_cost = cost_of(model)

        for _ in range(max_flips):
            falsified = [
                (literals, weight)
                for literals, weight in soft_clauses
                if not _is_satisfied(literals, model)
            ]
            if not falsified:
                break
            literals, _ = falsified[rng.randrange(len(falsified))]
            candidates = [abs(literal) for literal in literals]
            flip_var: Optional[int] = None
            if rng.random() < noise:
                rng.shuffle(candidates)
                for var in candidates:
                    model[var] = not model.get(var, False)
                    if hard_ok(model):
                        flip_var = var
                        break
                    model[var] = not model[var]
            else:
                best_delta: Optional[int] = None
                for var in candidates:
                    model[var] = not model.get(var, False)
                    if hard_ok(model):
                        delta = cost_of(model) - current_cost
                        if best_delta is None or delta < best_delta:
                            best_delta = delta
                            flip_var = var
                    model[var] = not model[var]
                if flip_var is not None:
                    model[flip_var] = not model.get(flip_var, False)
            if flip_var is None:
                continue
            total_flips += 1
            current_cost = cost_of(model)
            if current_cost < best_cost:
                best_cost = current_cost
                best_model = dict(model)
                if best_cost == 0:
                    break
        if best_cost == 0:
            break

    return LocalSearchResult(
        model=best_model,
        cost=best_cost,
        float_cost=instance.unscale_cost(best_cost),
        flips=total_flips,
        restarts=max(1, restarts),
        solve_time=time.perf_counter() - start,
    )
