"""Implicit hitting set (MaxHS-style) Weighted Partial MaxSAT engine.

The implicit hitting set approach (Davies & Bacchus, the paper's reference
[5]) alternates between two sub-problems:

1. a **minimum-cost hitting set** over the unsat cores discovered so far —
   the cheapest set of soft clauses whose violation could explain every core;
2. a **SAT check** that assumes every other soft clause satisfied.

If the SAT check succeeds, the model's cost cannot exceed the hitting set's
cost, and no solution can cost less than a minimum hitting set of a subset of
the cores, so the model is optimal.  If it fails, the returned core is added
to the collection and the loop repeats.

The hitting set sub-problem is solved exactly with a branch-and-bound search;
core collections produced by fault-tree instances are small, so this is not a
bottleneck in practice (a safety cap turns pathological runs into an UNKNOWN
result instead of letting them run away).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import BudgetExceededError, SolverInterrupted
from repro.kernels.bitset import CoverageIndex
from repro.logic.cnf import Literal
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.types import SatStatus

__all__ = ["HittingSetEngine", "minimum_cost_hitting_set"]

#: Poll the cooperative stop flag every this many search nodes.
_STOP_CHECK_INTERVAL = 256


def minimum_cost_hitting_set(
    cores: List[FrozenSet[Literal]],
    weights: Dict[Literal, int],
    *,
    max_nodes: int = 2_000_000,
    seed: Optional[Set[Literal]] = None,
    stop_check: Optional[Callable[[], bool]] = None,
) -> Tuple[Set[Literal], int]:
    """Exact minimum-cost hitting set of ``cores`` by branch and bound.

    Every core must be hit by at least one chosen element; the cost of a
    choice is the sum of its elements' weights.  Returns the chosen set and
    its cost.  Raises :class:`BudgetExceededError` when the search exceeds
    ``max_nodes`` nodes (a safety valve; never reached on realistic inputs).

    ``seed`` optionally provides a known feasible hitting set (e.g. the
    previous solve's solution in an incremental sweep); its cost becomes the
    initial upper bound, which can prune the search dramatically when the
    optimum moved little.  The seed is only used when it actually hits every
    core.

    ``stop_check`` is the portfolio's cooperative cancellation hook: it is
    polled every few hundred search nodes and, when it returns true, the
    search unwinds with :class:`SolverInterrupted` — so an engine that lost
    the portfolio race cancels promptly even while deep inside this
    recursion, not just at its next SAT call.

    The packed-bitset machinery (cores a partial choice still misses as one
    arbitrary-precision mask, per-element coverage masks) comes from
    :class:`repro.kernels.bitset.CoverageIndex`: extending a branch is two
    integer ops instead of a scan over the core list.
    """
    if not cores:
        return set(), 0

    index = CoverageIndex(cores)
    coverage = index.coverage
    all_mask = index.all_mask

    # Greedy warm start: repeatedly pick the element hitting the most
    # still-unhit cores (ties broken by weight) to obtain an upper bound.
    best_set, best_cost = index.greedy_cover(weights)
    if seed is not None:
        if index.mask_of(seed) == all_mask:
            seed_cost = sum(weights.get(element, 0) for element in seed)
            # ``<=``: the seed wins cost ties against the greedy warm start,
            # and the search below only replaces on *strict* improvement — so
            # whenever the seed is optimal, the search returns the seed
            # itself.  Incremental callers rely on this: it makes the result
            # a deterministic function of (cores, weights, seed), independent
            # of greedy/search exploration order, which is what lets the
            # batched re-rank path certify a pooled solution without
            # re-running the search at all.
            if seed_cost <= best_cost:
                best_set, best_cost = set(seed), seed_cost

    # Branching order inside a core: cheapest element first.
    sorted_cores = [
        sorted(core, key=lambda lit: weights.get(lit, 0)) for core in cores
    ]
    nodes = 0

    def search(chosen: Set[Literal], cost: int, unhit_mask: int) -> None:
        nonlocal best_set, best_cost, nodes
        nodes += 1
        if nodes > max_nodes:
            raise BudgetExceededError("hitting set search exceeded its node budget")
        if (
            stop_check is not None
            and nodes % _STOP_CHECK_INTERVAL == 0
            and stop_check()
        ):
            raise SolverInterrupted("hitting set search stopped by cooperative cancellation")
        if cost >= best_cost:
            return
        if not unhit_mask:
            best_set, best_cost = set(chosen), cost
            return
        # Branch on the elements of an unhit core with the fewest elements.
        core_index = -1
        probe = unhit_mask
        while probe:
            index = (probe & -probe).bit_length() - 1
            if core_index < 0 or len(sorted_cores[index]) < len(sorted_cores[core_index]):
                core_index = index
                if len(sorted_cores[index]) <= 2:
                    break
            probe &= probe - 1
        for element in sorted_cores[core_index]:
            new_cost = cost + weights.get(element, 0)
            if new_cost >= best_cost:
                continue
            chosen.add(element)
            search(chosen, new_cost, unhit_mask & ~coverage[element])
            chosen.discard(element)

    search(set(), 0, all_mask)
    return best_set, best_cost


class HittingSetEngine(MaxSATEngine):
    """MaxHS-style implicit hitting set Weighted Partial MaxSAT solver.

    Parameters
    ----------
    max_iterations:
        Safety cap on the number of core/hitting-set iterations; when exceeded
        the engine returns UNKNOWN (the portfolio then falls back to the
        core-guided engines).
    max_conflicts:
        Optional conflict budget for the underlying CDCL solver.
    """

    name = "hitting-set"

    def __init__(
        self,
        *,
        max_iterations: int = 100_000,
        max_conflicts: Optional[int] = None,
    ) -> None:
        super().__init__(max_conflicts=max_conflicts)
        self.max_iterations = max_iterations

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        solver = self._new_sat_solver(instance)
        selector_map = self._attach_selectors(solver, instance)
        weights = dict(selector_map.weights)
        selectors = list(weights)

        cores: List[FrozenSet[Literal]] = []
        sat_calls = 0

        try:
            for _ in range(self.max_iterations):
                self._check_stop()
                hitting_set, _ = minimum_cost_hitting_set(
                    cores, weights, stop_check=self.stop_check
                )
                assumptions = [sel for sel in selectors if sel not in hitting_set]
                result = solver.solve(assumptions)
                sat_calls += 1

                if result.status is SatStatus.SAT:
                    return self._result_from_model(
                        instance,
                        result.model or {},
                        start_time=start,
                        sat_calls=sat_calls,
                        conflicts=solver.conflicts,
                    )

                core = frozenset(result.core)
                if not core:
                    return self._unsat_result(
                        start_time=start, sat_calls=sat_calls, conflicts=solver.conflicts
                    )
                cores.append(core)
        except (BudgetExceededError, SolverInterrupted):
            pass

        return MaxSATResult(
            status=MaxSATStatus.UNKNOWN,
            engine=self.name,
            solve_time=time.perf_counter() - start,
            sat_calls=sat_calls,
            conflicts=solver.conflicts,
        )
