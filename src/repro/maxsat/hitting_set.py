"""Implicit hitting set (MaxHS-style) Weighted Partial MaxSAT engine.

The implicit hitting set approach (Davies & Bacchus, the paper's reference
[5]) alternates between two sub-problems:

1. a **minimum-cost hitting set** over the unsat cores discovered so far —
   the cheapest set of soft clauses whose violation could explain every core;
2. a **SAT check** that assumes every other soft clause satisfied.

If the SAT check succeeds, the model's cost cannot exceed the hitting set's
cost, and no solution can cost less than a minimum hitting set of a subset of
the cores, so the model is optimal.  If it fails, the returned core is added
to the collection and the loop repeats.

The hitting set sub-problem is solved exactly with a branch-and-bound search;
core collections produced by fault-tree instances are small, so this is not a
bottleneck in practice (a safety cap turns pathological runs into an UNKNOWN
result instead of letting them run away).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.exceptions import BudgetExceededError, SolverInterrupted
from repro.logic.cnf import Literal
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.types import SatStatus

__all__ = ["HittingSetEngine", "minimum_cost_hitting_set"]


def minimum_cost_hitting_set(
    cores: List[FrozenSet[Literal]],
    weights: Dict[Literal, int],
    *,
    max_nodes: int = 2_000_000,
    seed: Optional[Set[Literal]] = None,
) -> Tuple[Set[Literal], int]:
    """Exact minimum-cost hitting set of ``cores`` by branch and bound.

    Every core must be hit by at least one chosen element; the cost of a
    choice is the sum of its elements' weights.  Returns the chosen set and
    its cost.  Raises :class:`BudgetExceededError` when the search exceeds
    ``max_nodes`` nodes (a safety valve; never reached on realistic inputs).

    ``seed`` optionally provides a known feasible hitting set (e.g. the
    previous solve's solution in an incremental sweep); its cost becomes the
    initial upper bound, which can prune the search dramatically when the
    optimum moved little.  The seed is only used when it actually hits every
    core.

    Internally the cores a partial choice still misses are tracked as one
    arbitrary-precision bitmask (bit ``i`` = core ``i`` unhit) and every
    element's coverage is a precomputed mask, so extending a branch is two
    integer ops instead of a scan over the core list.
    """
    if not cores:
        return set(), 0

    # Element -> bitmask of the cores it hits.
    coverage: Dict[Literal, int] = {}
    for index, core in enumerate(cores):
        bit = 1 << index
        for element in core:
            coverage[element] = coverage.get(element, 0) | bit
    all_mask = (1 << len(cores)) - 1

    # Greedy warm start: repeatedly pick the element hitting the most
    # still-unhit cores (ties broken by weight) to obtain an upper bound.
    best_set, best_cost = _greedy_hitting_set(cores, weights)
    if seed is not None:
        seed_mask = 0
        for element in seed:
            seed_mask |= coverage.get(element, 0)
        if seed_mask == all_mask:
            seed_cost = sum(weights.get(element, 0) for element in seed)
            if seed_cost < best_cost:
                best_set, best_cost = set(seed), seed_cost

    # Branching order inside a core: cheapest element first.
    sorted_cores = [
        sorted(core, key=lambda lit: weights.get(lit, 0)) for core in cores
    ]
    nodes = 0

    def search(chosen: Set[Literal], cost: int, unhit_mask: int) -> None:
        nonlocal best_set, best_cost, nodes
        nodes += 1
        if nodes > max_nodes:
            raise BudgetExceededError("hitting set search exceeded its node budget")
        if cost >= best_cost:
            return
        if not unhit_mask:
            best_set, best_cost = set(chosen), cost
            return
        # Branch on the elements of an unhit core with the fewest elements.
        core_index = -1
        probe = unhit_mask
        while probe:
            index = (probe & -probe).bit_length() - 1
            if core_index < 0 or len(sorted_cores[index]) < len(sorted_cores[core_index]):
                core_index = index
                if len(sorted_cores[index]) <= 2:
                    break
            probe &= probe - 1
        for element in sorted_cores[core_index]:
            new_cost = cost + weights.get(element, 0)
            if new_cost >= best_cost:
                continue
            chosen.add(element)
            search(chosen, new_cost, unhit_mask & ~coverage[element])
            chosen.discard(element)

    search(set(), 0, all_mask)
    return best_set, best_cost


def _greedy_hitting_set(
    cores: List[FrozenSet[Literal]], weights: Dict[Literal, int]
) -> Tuple[Set[Literal], int]:
    chosen: Set[Literal] = set()
    unhit = list(cores)
    while unhit:
        counts: Dict[Literal, int] = {}
        for core in unhit:
            for element in core:
                counts[element] = counts.get(element, 0) + 1
        element = max(counts, key=lambda lit: (counts[lit], -weights.get(lit, 0)))
        chosen.add(element)
        unhit = [core for core in unhit if element not in core]
    return chosen, sum(weights.get(lit, 0) for lit in chosen)


class HittingSetEngine(MaxSATEngine):
    """MaxHS-style implicit hitting set Weighted Partial MaxSAT solver.

    Parameters
    ----------
    max_iterations:
        Safety cap on the number of core/hitting-set iterations; when exceeded
        the engine returns UNKNOWN (the portfolio then falls back to the
        core-guided engines).
    max_conflicts:
        Optional conflict budget for the underlying CDCL solver.
    """

    name = "hitting-set"

    def __init__(
        self,
        *,
        max_iterations: int = 100_000,
        max_conflicts: Optional[int] = None,
    ) -> None:
        super().__init__(max_conflicts=max_conflicts)
        self.max_iterations = max_iterations

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        solver = self._new_sat_solver(instance)
        selector_map = self._attach_selectors(solver, instance)
        weights = dict(selector_map.weights)
        selectors = list(weights)

        cores: List[FrozenSet[Literal]] = []
        sat_calls = 0

        try:
            for _ in range(self.max_iterations):
                self._check_stop()
                hitting_set, _ = minimum_cost_hitting_set(cores, weights)
                assumptions = [sel for sel in selectors if sel not in hitting_set]
                result = solver.solve(assumptions)
                sat_calls += 1

                if result.status is SatStatus.SAT:
                    return self._result_from_model(
                        instance,
                        result.model or {},
                        start_time=start,
                        sat_calls=sat_calls,
                        conflicts=solver.conflicts,
                    )

                core = frozenset(result.core)
                if not core:
                    return self._unsat_result(
                        start_time=start, sat_calls=sat_calls, conflicts=solver.conflicts
                    )
                cores.append(core)
        except (BudgetExceededError, SolverInterrupted):
            pass

        return MaxSATResult(
            status=MaxSATStatus.UNKNOWN,
            engine=self.name,
            solve_time=time.perf_counter() - start,
            sat_calls=sat_calls,
            conflicts=solver.conflicts,
        )
