"""Binary (cost-interval bisection) Weighted Partial MaxSAT engine.

Where the linear SAT–UNSAT engine tightens the cost bound to "strictly better
than the best model so far", this engine bisects the cost interval: it keeps a
lower bound (largest cost proven infeasible plus one) and an upper bound (cost
of the best model found) and repeatedly asks the SAT oracle for a model of
cost at most the midpoint.  With integer (scaled) weights the interval shrinks
geometrically, so the number of oracle calls is logarithmic in the total soft
weight — a different performance profile from both the core-guided engines and
the linear search, which is exactly what the parallel portfolio of the paper's
Step 5 wants from its members.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import BudgetExceededError, SolverError, SolverInterrupted
from repro.logic.cnf import Literal
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.pb import encode_weighted_at_most
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["BinarySearchEngine"]


class BinarySearchEngine(MaxSATEngine):
    """Cost-bisection Weighted Partial MaxSAT solver.

    Parameters
    ----------
    max_encoding_node_size:
        Upper bound on the number of distinct partial sums per generalized
        totalizer node (the bound constraints reuse the same pseudo-Boolean
        encoding as the linear engine); exceeding it yields UNKNOWN.
    max_conflicts:
        Optional conflict budget per SAT oracle call.
    """

    name = "binary-search"

    def __init__(
        self,
        *,
        max_encoding_node_size: int = 5_000,
        max_conflicts: Optional[int] = None,
    ) -> None:
        super().__init__(max_conflicts=max_conflicts)
        self.max_encoding_node_size = max_encoding_node_size

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        sat_calls = 0
        total_conflicts = 0

        try:
            # Initial unconstrained call: feasibility and first upper bound.
            solver, _ = self._build_oracle(instance, bound=None)
            result = solver.solve()
            sat_calls += 1
            total_conflicts += result.conflicts
            if result.status is not SatStatus.SAT:
                return self._unsat_result(
                    start_time=start, sat_calls=sat_calls, conflicts=total_conflicts
                )
            best_model: Dict[int, bool] = result.model or {}
            upper = instance.cost_of_model(best_model)
            lower = 0

            while lower < upper:
                self._check_stop()
                middle = (lower + upper) // 2
                solver, _ = self._build_oracle(instance, bound=middle)
                result = solver.solve()
                sat_calls += 1
                total_conflicts += result.conflicts
                if result.status is SatStatus.SAT:
                    model = result.model or {}
                    cost = instance.cost_of_model(model)
                    if cost > middle:
                        raise SolverError(
                            f"cost bound encoding violated: model cost {cost} exceeds "
                            f"the requested bound {middle}"
                        )
                    best_model = model
                    upper = cost
                else:
                    lower = middle + 1
        except SolverError as exc:
            recoverable = isinstance(exc, (BudgetExceededError, SolverInterrupted))
            if recoverable or "generalized totalizer" in str(exc):
                return MaxSATResult(
                    status=MaxSATStatus.UNKNOWN,
                    engine=self.name,
                    solve_time=time.perf_counter() - start,
                    sat_calls=sat_calls,
                    conflicts=total_conflicts,
                )
            raise

        return self._result_from_model(
            instance,
            best_model,
            start_time=start,
            sat_calls=sat_calls,
            conflicts=total_conflicts,
        )

    # -- internals ---------------------------------------------------------------

    def _build_oracle(
        self, instance: WPMaxSATInstance, *, bound: Optional[int]
    ) -> Tuple[CDCLSolver, List[Tuple[int, Literal]]]:
        """Fresh SAT oracle; when ``bound`` is given, total violation weight <= bound."""
        solver = self._new_sat_solver(instance)
        indicators: List[Tuple[int, Literal]] = []
        for soft in instance.soft:
            if len(soft.literals) == 1:
                violation = -soft.literals[0]
            else:
                relax = solver.new_var()
                solver.add_clause(list(soft.literals) + [relax])
                violation = relax
            indicators.append((soft.scaled_weight, violation))

        if bound is not None:
            if bound <= 0:
                # No violation allowed at all: every soft clause becomes hard.
                for soft in instance.soft:
                    solver.add_clause(list(soft.literals))
            else:
                encode_weighted_at_most(
                    indicators,
                    bound,
                    new_var=solver.new_var,
                    add_clause=solver.add_clause,
                    max_node_size=self.max_encoding_node_size,
                )
        return solver, indicators
