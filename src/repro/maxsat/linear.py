"""Model-improving linear SAT–UNSAT Weighted Partial MaxSAT engine.

The engine repeatedly:

1. asks the SAT oracle for *any* model of the hard clauses;
2. computes the model's cost (total weight of falsified soft clauses);
3. adds a pseudo-Boolean constraint forcing the next model to be strictly
   cheaper (encoded with the generalized totalizer of :mod:`repro.maxsat.pb`);
4. stops when the oracle reports UNSAT — the last model found is optimal.

With many distinct weights the pseudo-Boolean encoding can grow quickly; the
engine therefore rebuilds the oracle each iteration with the bound pruned to
the current best cost and aborts with status ``UNKNOWN`` if the encoding
exceeds a configurable size limit.  The engine complements the core-guided
solvers in the portfolio: it excels when good (low-cost) models are easy to
find, which is common for fault trees with a dominant high-probability cut
set, and struggles when the optimum requires violating many soft clauses.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.exceptions import BudgetExceededError, SolverError, SolverInterrupted
from repro.logic.cnf import Literal
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.pb import encode_weighted_at_most
from repro.maxsat.result import MaxSATResult, MaxSATStatus
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

__all__ = ["LinearSearchEngine"]


class LinearSearchEngine(MaxSATEngine):
    """Linear SAT–UNSAT (model improving) Weighted Partial MaxSAT solver.

    Parameters
    ----------
    max_encoding_node_size:
        Upper bound on the number of distinct partial sums per generalized
        totalizer node.  When exceeded the engine gives up with ``UNKNOWN``
        instead of exhausting memory (the portfolio then relies on the
        core-guided engines).
    max_conflicts:
        Optional conflict budget for each SAT oracle call.
    """

    name = "linear-sat-unsat"

    def __init__(
        self,
        *,
        max_encoding_node_size: int = 5_000,
        max_conflicts: Optional[int] = None,
    ) -> None:
        super().__init__(max_conflicts=max_conflicts)
        self.max_encoding_node_size = max_encoding_node_size

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        start = time.perf_counter()
        sat_calls = 0
        total_conflicts = 0

        best_model: Optional[Dict[int, bool]] = None
        best_cost: Optional[int] = None

        try:
            while True:
                self._check_stop()
                solver, indicators = self._build_oracle(instance, best_cost)
                result = solver.solve()
                sat_calls += 1
                total_conflicts += result.conflicts

                if result.status is not SatStatus.SAT:
                    break

                model = result.model or {}
                cost = instance.cost_of_model(model)
                if best_cost is not None and cost >= best_cost:
                    # The bounding constraint guarantees strict improvement; a
                    # non-improving model indicates an encoding bug.
                    raise SolverError(
                        f"linear search produced a non-improving model "
                        f"(cost {cost} >= best {best_cost})"
                    )
                best_model = model
                best_cost = cost
                if best_cost == 0:
                    break
        except SolverError as exc:
            recoverable = isinstance(exc, (BudgetExceededError, SolverInterrupted))
            if recoverable or "generalized totalizer" in str(exc):
                return MaxSATResult(
                    status=MaxSATStatus.UNKNOWN,
                    engine=self.name,
                    solve_time=time.perf_counter() - start,
                    sat_calls=sat_calls,
                    conflicts=total_conflicts,
                )
            raise

        if best_model is None:
            return self._unsat_result(
                start_time=start, sat_calls=sat_calls, conflicts=total_conflicts
            )
        return self._result_from_model(
            instance,
            best_model,
            start_time=start,
            sat_calls=sat_calls,
            conflicts=total_conflicts,
        )

    # -- internals ---------------------------------------------------------------

    def _build_oracle(
        self, instance: WPMaxSATInstance, best_cost: Optional[int]
    ) -> Tuple[CDCLSolver, List[Tuple[int, Literal]]]:
        """Build a fresh SAT oracle with (optionally) the improvement constraint."""
        solver = self._new_sat_solver(instance)
        indicators: List[Tuple[int, Literal]] = []
        for soft in instance.soft:
            if len(soft.literals) == 1:
                violation = -soft.literals[0]
            else:
                relax = solver.new_var()
                solver.add_clause(list(soft.literals) + [relax])
                violation = relax
            indicators.append((soft.scaled_weight, violation))

        if best_cost is not None:
            if best_cost == 0:
                # Cannot improve on a zero-cost model; make the oracle UNSAT.
                solver.add_clause([1])
                solver.add_clause([-1])
            else:
                encode_weighted_at_most(
                    indicators,
                    best_cost - 1,
                    new_var=solver.new_var,
                    add_clause=solver.add_clause,
                    max_node_size=self.max_encoding_node_size,
                )
        return solver, indicators
