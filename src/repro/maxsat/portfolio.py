"""Parallel MaxSAT portfolio (paper Step 5).

The paper observes that individual (Max)SAT solvers behave very differently
across instances, and therefore runs *multiple pre-configured solvers in
parallel, picking up the solution of the solver that finishes first*.  This
module reproduces that architecture:

* a :class:`PortfolioSolver` holds a list of heterogeneous engine
  configurations (RC2, stratified RC2, Fu–Malik, linear search, ...);
* ``solve`` launches every engine on the same instance — in worker threads
  (default, with cooperative cancellation of the losers), in worker processes
  (true OS-level parallelism, matching the original tool most closely), or
  sequentially (deterministic, useful for tests and ablation benchmarks);
* the first engine to return a conclusive result (OPTIMUM or UNSATISFIABLE)
  wins; its result is returned together with a :class:`PortfolioReport`
  recording per-engine timings.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, SolverError
from repro.maxsat.engine import MaxSATEngine
from repro.maxsat.fumalik import FuMalikEngine
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.linear import LinearSearchEngine
from repro.maxsat.rc2 import RC2Engine
from repro.maxsat.result import MaxSATResult, MaxSATStatus

__all__ = ["PortfolioSolver", "PortfolioReport", "default_engines"]

_VALID_MODES = ("thread", "process", "sequential")


def default_engines() -> List[MaxSATEngine]:
    """The default heterogeneous engine line-up used by the MPMCS pipeline."""
    return [
        RC2Engine(),
        RC2Engine(stratified=True),
        LinearSearchEngine(),
        FuMalikEngine(),
    ]


@dataclass
class PortfolioReport:
    """Record of one portfolio run.

    Attributes
    ----------
    winner:
        Name of the engine whose result was returned.
    result:
        The winning result.
    engine_times:
        Wall-clock seconds each engine ran before finishing or being cancelled
        (engines cancelled cooperatively report the time until cancellation).
    engine_statuses:
        Final status string per engine (``optimum``, ``unknown``, ``error`` ...).
    total_time:
        Wall-clock duration of the whole portfolio run.
    """

    winner: str
    result: MaxSATResult
    engine_times: Dict[str, float] = field(default_factory=dict)
    engine_statuses: Dict[str, str] = field(default_factory=dict)
    total_time: float = 0.0


def _run_engine_in_process(engine: MaxSATEngine, instance: WPMaxSATInstance) -> MaxSATResult:
    """Top-level helper (picklable) executed inside portfolio worker processes."""
    return engine.solve(instance)


class PortfolioSolver:
    """Run several MaxSAT engines on the same instance; first finisher wins.

    Parameters
    ----------
    engines:
        Engine configurations to race.  Defaults to :func:`default_engines`.
    mode:
        ``"thread"`` (default) races the engines in threads with cooperative
        cancellation; ``"process"`` uses one OS process per engine (closest to
        the original tool's architecture, at the price of fork/pickle
        overhead); ``"sequential"`` runs engines one after another and keeps
        the best/first conclusive result (used by deterministic tests and the
        ablation benchmark).
    """

    def __init__(
        self,
        engines: Optional[Sequence[MaxSATEngine]] = None,
        *,
        mode: str = "thread",
    ) -> None:
        if mode not in _VALID_MODES:
            raise ConfigurationError(
                f"invalid portfolio mode {mode!r}; expected one of {_VALID_MODES}"
            )
        self.engines: List[MaxSATEngine] = list(engines) if engines is not None else default_engines()
        if not self.engines:
            raise ConfigurationError("portfolio requires at least one engine")
        names = [engine.name for engine in self.engines]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"portfolio engine names must be unique, got {names}")
        self.mode = mode
        #: Optional external cooperative-cancellation hook: a zero-argument
        #: callable returning True when the *whole* portfolio should stop
        #: (the analysis service wires a job's cancel/timeout guard here).
        #: Honoured by the sequential and thread modes — engines in process
        #: mode are pickled into their workers, so a live callable cannot
        #: follow them there.
        self.external_stop: "Optional[Callable[[], bool]]" = None

    # -- public API ------------------------------------------------------------

    def solve(self, instance: WPMaxSATInstance) -> MaxSATResult:
        """Solve ``instance`` and return only the winning result."""
        return self.solve_with_report(instance).result

    def solve_with_report(self, instance: WPMaxSATInstance) -> PortfolioReport:
        """Solve ``instance`` and return the winning result plus per-engine data."""
        if self.mode == "sequential":
            return self._solve_sequential(instance)
        if self.mode == "process":
            return self._solve_process(instance)
        return self._solve_thread(instance)

    # -- sequential mode ------------------------------------------------------------

    def _solve_sequential(self, instance: WPMaxSATInstance) -> PortfolioReport:
        start = time.perf_counter()
        times: Dict[str, float] = {}
        statuses: Dict[str, str] = {}
        winner: Optional[Tuple[str, MaxSATResult]] = None
        for engine in self.engines:
            engine.stop_check = self.external_stop
            engine_start = time.perf_counter()
            try:
                result = engine.solve(instance)
                statuses[engine.name] = result.status.value
            except SolverError as exc:
                statuses[engine.name] = f"error: {exc}"
                times[engine.name] = time.perf_counter() - engine_start
                continue
            times[engine.name] = time.perf_counter() - engine_start
            if winner is None and result.status is not MaxSATStatus.UNKNOWN:
                winner = (engine.name, result)
        if winner is None:
            raise SolverError("no portfolio engine produced a conclusive result")
        return PortfolioReport(
            winner=winner[0],
            result=winner[1],
            engine_times=times,
            engine_statuses=statuses,
            total_time=time.perf_counter() - start,
        )

    # -- thread mode -------------------------------------------------------------------

    def _solve_thread(self, instance: WPMaxSATInstance) -> PortfolioReport:
        start = time.perf_counter()
        stop_event = threading.Event()
        times: Dict[str, float] = {}
        statuses: Dict[str, str] = {}
        results: Dict[str, MaxSATResult] = {}
        lock = threading.Lock()

        external = self.external_stop

        def run(engine: MaxSATEngine) -> None:
            if external is None:
                engine.stop_check = stop_event.is_set
            else:
                engine.stop_check = lambda: stop_event.is_set() or external()
            engine_start = time.perf_counter()
            try:
                result = engine.solve(instance)
            except SolverError as exc:
                with lock:
                    statuses[engine.name] = f"error: {exc}"
                    times[engine.name] = time.perf_counter() - engine_start
                return
            with lock:
                times[engine.name] = time.perf_counter() - engine_start
                statuses[engine.name] = result.status.value
                results[engine.name] = result
                if result.status is not MaxSATStatus.UNKNOWN:
                    stop_event.set()

        threads = [
            threading.Thread(target=run, args=(engine,), name=f"portfolio-{engine.name}")
            for engine in self.engines
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        winner_name, winner_result = self._pick_winner(results, times)
        return PortfolioReport(
            winner=winner_name,
            result=winner_result,
            engine_times=times,
            engine_statuses=statuses,
            total_time=time.perf_counter() - start,
        )

    # -- process mode -----------------------------------------------------------------

    def _solve_process(self, instance: WPMaxSATInstance) -> PortfolioReport:
        start = time.perf_counter()
        times: Dict[str, float] = {}
        statuses: Dict[str, str] = {}
        results: Dict[str, MaxSATResult] = {}

        with concurrent.futures.ProcessPoolExecutor(max_workers=len(self.engines)) as pool:
            futures = {
                pool.submit(_run_engine_in_process, engine, instance): engine.name
                for engine in self.engines
            }
            pending = set(futures)
            while pending:
                done, pending = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                conclusive = False
                for future in done:
                    name = futures[future]
                    try:
                        result = future.result()
                    except Exception as exc:  # noqa: BLE001 - report, do not crash
                        statuses[name] = f"error: {exc}"
                        continue
                    times[name] = result.solve_time
                    statuses[name] = result.status.value
                    results[name] = result
                    if result.status is not MaxSATStatus.UNKNOWN:
                        conclusive = True
                if conclusive:
                    for future in pending:
                        future.cancel()
                    break

        winner_name, winner_result = self._pick_winner(results, times)
        return PortfolioReport(
            winner=winner_name,
            result=winner_result,
            engine_times=times,
            engine_statuses=statuses,
            total_time=time.perf_counter() - start,
        )

    # -- shared -------------------------------------------------------------------------

    @staticmethod
    def _pick_winner(
        results: Dict[str, MaxSATResult], times: Dict[str, float]
    ) -> Tuple[str, MaxSATResult]:
        """Pick the fastest conclusive result (OPTIMUM preferred over UNSAT)."""
        conclusive = {
            name: result
            for name, result in results.items()
            if result.status is not MaxSATStatus.UNKNOWN
        }
        if not conclusive:
            raise SolverError("no portfolio engine produced a conclusive result")
        winner_name = min(conclusive, key=lambda name: times.get(name, float("inf")))
        return winner_name, conclusive[winner_name]
