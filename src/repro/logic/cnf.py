"""Clause-level CNF representation shared by the SAT and MaxSAT layers.

Literals follow the DIMACS convention: a literal is a non-zero integer whose
absolute value identifies the variable and whose sign encodes polarity
(``-v`` is the negation of variable ``v``).  Variables are numbered from 1.

The :class:`CNF` container also maintains an optional mapping between integer
variables and symbolic names so that solver models can be translated back into
fault-tree events (Step 6 of the pipeline reports MPMCS members by event id).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import CNFError

__all__ = ["Literal", "Clause", "CNF"]

# A literal is simply a non-zero int in the DIMACS convention.
Literal = int


def _validate_literal(literal: int) -> int:
    if not isinstance(literal, int) or isinstance(literal, bool) or literal == 0:
        raise CNFError(f"invalid literal {literal!r}: literals are non-zero integers")
    return literal


@dataclass(frozen=True)
class Clause:
    """An immutable disjunction of literals.

    Duplicate literals are removed while preserving first-occurrence order.
    A clause containing complementary literals is a *tautology*; such clauses
    are legal but satisfied under every assignment.
    """

    literals: Tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal]) -> None:
        seen: Set[Literal] = set()
        unique: List[Literal] = []
        for lit in literals:
            _validate_literal(lit)
            if lit not in seen:
                seen.add(lit)
                unique.append(lit)
        object.__setattr__(self, "literals", tuple(unique))

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __contains__(self, literal: Literal) -> bool:
        return literal in self.literals

    @property
    def is_empty(self) -> bool:
        """True for the empty clause, which is unsatisfiable."""
        return not self.literals

    @property
    def is_unit(self) -> bool:
        """True when the clause contains exactly one literal."""
        return len(self.literals) == 1

    def is_tautology(self) -> bool:
        """True when the clause contains a literal and its complement."""
        lits = set(self.literals)
        return any(-lit in lits for lit in lits)

    def variables(self) -> Set[int]:
        """Return the set of variables (absolute literal values) in the clause."""
        return {abs(lit) for lit in self.literals}

    def is_satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate the clause under a (possibly partial) assignment.

        Missing variables count as falsifying their literals, so this returns
        true only when some literal is definitely satisfied.
        """
        for lit in self.literals:
            value = assignment.get(abs(lit))
            if value is None:
                continue
            if value == (lit > 0):
                return True
        return False

    def __str__(self) -> str:
        return "(" + " | ".join(str(lit) for lit in self.literals) + ")"


class CNF:
    """A mutable conjunction of :class:`Clause` objects with a name table.

    The name table (``name_to_var`` / ``var_to_name``) tracks which integer
    variables correspond to named problem variables (fault-tree events); the
    auxiliary variables introduced by the Tseitin transformation have no name.
    """

    def __init__(
        self,
        clauses: Optional[Iterable[Sequence[Literal]]] = None,
        *,
        num_vars: int = 0,
        name_to_var: Optional[Mapping[str, int]] = None,
    ) -> None:
        self._clauses: List[Clause] = []
        self._num_vars = 0
        self.name_to_var: Dict[str, int] = {}
        self.var_to_name: Dict[int, str] = {}
        if name_to_var:
            for name, var in name_to_var.items():
                self.register_name(name, var)
        if num_vars:
            self.ensure_num_vars(num_vars)
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    # -- variable management ------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Highest variable index used (DIMACS ``p cnf <vars> <clauses>``)."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    def ensure_num_vars(self, count: int) -> None:
        """Raise the declared variable count to at least ``count``."""
        if count < 0:
            raise CNFError("variable count cannot be negative")
        self._num_vars = max(self._num_vars, count)

    def new_var(self, name: Optional[str] = None) -> int:
        """Allocate a fresh variable, optionally binding it to ``name``."""
        self._num_vars += 1
        var = self._num_vars
        if name is not None:
            self.register_name(name, var)
        return var

    def register_name(self, name: str, var: int) -> None:
        """Bind symbolic ``name`` to integer variable ``var``."""
        if not name:
            raise CNFError("variable name must be non-empty")
        if var <= 0:
            raise CNFError(f"variable index must be positive, got {var}")
        existing = self.name_to_var.get(name)
        if existing is not None and existing != var:
            raise CNFError(f"name {name!r} already bound to variable {existing}")
        other = self.var_to_name.get(var)
        if other is not None and other != name:
            raise CNFError(f"variable {var} already named {other!r}")
        self.name_to_var[name] = var
        self.var_to_name[var] = name
        self.ensure_num_vars(var)

    def var_for(self, name: str) -> int:
        """Return the variable bound to ``name``, allocating it if needed."""
        var = self.name_to_var.get(name)
        if var is None:
            var = self.new_var(name)
        return var

    # -- clause management ---------------------------------------------------

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return tuple(self._clauses)

    def add_clause(self, literals: Sequence[Literal] | Clause) -> Clause:
        """Append a clause and return the normalised :class:`Clause` object."""
        clause = literals if isinstance(literals, Clause) else Clause(literals)
        for lit in clause:
            self.ensure_num_vars(abs(lit))
        self._clauses.append(clause)
        return clause

    def extend(self, clauses: Iterable[Sequence[Literal] | Clause]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    # -- semantics ------------------------------------------------------------

    def is_satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        """Check whether every clause is satisfied by ``assignment``."""
        return all(clause.is_satisfied_by(assignment) for clause in self._clauses)

    def variables(self) -> Set[int]:
        """Return the set of variables appearing in at least one clause."""
        out: Set[int] = set()
        for clause in self._clauses:
            out |= clause.variables()
        return out

    def named_assignment(self, assignment: Mapping[int, bool]) -> Dict[str, bool]:
        """Project an integer model onto the named (problem) variables."""
        return {
            name: bool(assignment.get(var, False)) for name, var in self.name_to_var.items()
        }

    def copy(self) -> "CNF":
        """Return a deep-enough copy (clauses are immutable and shared)."""
        clone = CNF(num_vars=self._num_vars, name_to_var=dict(self.name_to_var))
        clone._clauses = list(self._clauses)
        return clone

    def __str__(self) -> str:
        return " & ".join(str(c) for c in self._clauses) if self._clauses else "true"
