"""Immutable Boolean formula abstract syntax tree.

The fault-tree layer compiles trees into formulas built from these nodes
(Section II of the paper: ``f(t)`` is the Boolean structure function of the
fault tree).  The MPMCS pipeline then manipulates the formula (complementation
for the success tree, Tseitin CNF conversion) before handing it to the MaxSAT
layer.

Design notes
------------
* Nodes are immutable and hashable, so formulas can be shared and memoised.
* ``And``/``Or`` are n-ary; binary convenience constructors exist via the
  ``&`` and ``|`` operators.
* ``AtLeast`` models k-of-n *voting gates* — the extension listed as future
  work in the paper and implemented here.
* Evaluation (`evaluate`) is defined for all node types so brute-force
  reference analyses and property-based tests can cross-check the solvers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.exceptions import FormulaError

__all__ = [
    "Formula",
    "Const",
    "TRUE",
    "FALSE",
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "Implies",
    "AtLeast",
]


class Formula:
    """Base class of every Boolean formula node.

    Subclasses are immutable; all structural state is assigned in ``__init__``
    and never mutated afterwards.  Equality and hashing are structural.
    """

    __slots__ = ("_hash",)

    # -- operator sugar -----------------------------------------------------

    def __and__(self, other: "Formula") -> "And":
        return And((self, _check_formula(other)))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, _check_formula(other)))

    def __xor__(self, other: "Formula") -> "Xor":
        return Xor((self, _check_formula(other)))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        """``a >> b`` denotes the implication ``a -> b``."""
        return Implies(self, _check_formula(other))

    # -- core API -----------------------------------------------------------

    def children(self) -> Tuple["Formula", ...]:
        """Return the direct sub-formulas of this node."""
        return ()

    def variables(self) -> FrozenSet[str]:
        """Return the set of variable names appearing in the formula."""
        names: set[str] = set()
        for node in self.iter_nodes():
            if isinstance(node, Var):
                names.add(node.name)
        return frozenset(names)

    def iter_nodes(self) -> Iterator["Formula"]:
        """Yield every node of the AST in depth-first pre-order."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def size(self) -> int:
        """Return the number of AST nodes (a proxy for formula size)."""
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Return the height of the AST (a leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the formula under a total assignment of its variables.

        Parameters
        ----------
        assignment:
            Mapping from variable name to truth value.  Every variable of the
            formula must be present.

        Raises
        ------
        FormulaError
            If a variable is missing from ``assignment``.
        """
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Formula"]) -> "Formula":
        """Return a copy of the formula with variables replaced by formulas."""
        raise NotImplementedError

    # -- dunder helpers -----------------------------------------------------

    def _key(self) -> Tuple[object, ...]:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, Formula) else False
        return self._key() == other._key()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = hash((type(self).__name__,) + self._key())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_infix()

    def to_infix(self) -> str:
        """Render the formula using infix operators (for debugging and docs)."""
        raise NotImplementedError


def _check_formula(value: object) -> Formula:
    if not isinstance(value, Formula):
        raise FormulaError(f"expected a Formula, got {type(value).__name__}")
    return value


class Const(Formula):
    """A Boolean constant (``TRUE`` or ``FALSE``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Const is immutable")

    def _key(self) -> Tuple[object, ...]:
        return (self.value,)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return self

    def to_infix(self) -> str:
        return "true" if self.value else "false"


TRUE = Const(True)
FALSE = Const(False)


class Var(Formula):
    """A propositional variable identified by name.

    In the fault-tree context each basic event ``x_i`` becomes one variable.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise FormulaError("variable name must be a non-empty string")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Var is immutable")

    def _key(self) -> Tuple[object, ...]:
        return (self.name,)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError as exc:
            raise FormulaError(f"missing assignment for variable {self.name!r}") from exc

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return mapping.get(self.name, self)

    def to_infix(self) -> str:
        return self.name


class Not(Formula):
    """Logical negation of a sub-formula."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula) -> None:
        object.__setattr__(self, "operand", _check_formula(operand))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Not is immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def _key(self) -> Tuple[object, ...]:
        return (self.operand,)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Not(self.operand.substitute(mapping))

    def to_infix(self) -> str:
        return f"~{_paren(self.operand)}"


class _NaryFormula(Formula):
    """Shared implementation for n-ary operators (And, Or, Xor)."""

    __slots__ = ("operands",)

    _MIN_ARITY = 1

    def __init__(self, operands: Iterable[Formula]) -> None:
        ops = tuple(_check_formula(op) for op in operands)
        if len(ops) < self._MIN_ARITY:
            raise FormulaError(
                f"{type(self).__name__} requires at least {self._MIN_ARITY} operand(s), "
                f"got {len(ops)}"
            )
        object.__setattr__(self, "operands", ops)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError(f"{type(self).__name__} is immutable")

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def _key(self) -> Tuple[object, ...]:
        return self.operands


class And(_NaryFormula):
    """N-ary conjunction.  Models fault-tree AND gates."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return And(tuple(op.substitute(mapping) for op in self.operands))

    def to_infix(self) -> str:
        return "(" + " & ".join(op.to_infix() for op in self.operands) + ")"


class Or(_NaryFormula):
    """N-ary disjunction.  Models fault-tree OR gates."""

    __slots__ = ()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Or(tuple(op.substitute(mapping) for op in self.operands))

    def to_infix(self) -> str:
        return "(" + " | ".join(op.to_infix() for op in self.operands) + ")"


class Xor(_NaryFormula):
    """N-ary exclusive-or (true when an odd number of operands are true)."""

    __slots__ = ()
    _MIN_ARITY = 2

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return sum(1 for op in self.operands if op.evaluate(assignment)) % 2 == 1

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Xor(tuple(op.substitute(mapping) for op in self.operands))

    def to_infix(self) -> str:
        return "(" + " ^ ".join(op.to_infix() for op in self.operands) + ")"


class Implies(Formula):
    """Binary implication ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        object.__setattr__(self, "antecedent", _check_formula(antecedent))
        object.__setattr__(self, "consequent", _check_formula(consequent))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Implies is immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def _key(self) -> Tuple[object, ...]:
        return (self.antecedent, self.consequent)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return (not self.antecedent.evaluate(assignment)) or self.consequent.evaluate(assignment)

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return Implies(self.antecedent.substitute(mapping), self.consequent.substitute(mapping))

    def to_infix(self) -> str:
        return f"({self.antecedent.to_infix()} -> {self.consequent.to_infix()})"


class AtLeast(Formula):
    """Threshold node: true when at least ``k`` of the operands are true.

    This models fault-tree *voting gates* (VOT / k-of-n), the gate type the
    paper lists as a planned extension.  ``AtLeast(1, ops)`` is equivalent to
    ``Or(ops)`` and ``AtLeast(len(ops), ops)`` to ``And(ops)``.
    """

    __slots__ = ("k", "operands")

    def __init__(self, k: int, operands: Iterable[Formula]) -> None:
        ops = tuple(_check_formula(op) for op in operands)
        if not ops:
            raise FormulaError("AtLeast requires at least one operand")
        if not isinstance(k, int):
            raise FormulaError("AtLeast threshold k must be an integer")
        if k < 0 or k > len(ops):
            raise FormulaError(
                f"AtLeast threshold k={k} must lie in [0, {len(ops)}] for {len(ops)} operands"
            )
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "operands", ops)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("AtLeast is immutable")

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def _key(self) -> Tuple[object, ...]:
        return (self.k,) + self.operands

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return sum(1 for op in self.operands if op.evaluate(assignment)) >= self.k

    def substitute(self, mapping: Mapping[str, Formula]) -> Formula:
        return AtLeast(self.k, tuple(op.substitute(mapping) for op in self.operands))

    def expand(self) -> Formula:
        """Expand the threshold into plain And/Or nodes.

        The expansion enumerates all ``k``-subsets, so it is exponential in the
        worst case; it is intended for small gates and for reference checks.
        The Tseitin encoder handles :class:`AtLeast` natively with a polynomial
        sequential-counter encoding instead.
        """
        from itertools import combinations

        if self.k == 0:
            return TRUE
        if self.k == len(self.operands):
            return And(self.operands) if len(self.operands) > 1 else self.operands[0]
        if self.k == 1:
            return Or(self.operands) if len(self.operands) > 1 else self.operands[0]
        terms = [
            And(combo) if len(combo) > 1 else combo[0]
            for combo in combinations(self.operands, self.k)
        ]
        return Or(tuple(terms))

    def to_infix(self) -> str:
        inner = ", ".join(op.to_infix() for op in self.operands)
        return f"atleast({self.k}; {inner})"


def _paren(node: Formula) -> str:
    text = node.to_infix()
    if isinstance(node, (Var, Const)) or text.startswith("("):
        return text
    return f"({text})"


def conjoin(operands: Sequence[Formula]) -> Formula:
    """Build a conjunction, collapsing the trivial 0- and 1-operand cases."""
    if not operands:
        return TRUE
    if len(operands) == 1:
        return operands[0]
    return And(tuple(operands))


def disjoin(operands: Sequence[Formula]) -> Formula:
    """Build a disjunction, collapsing the trivial 0- and 1-operand cases."""
    if not operands:
        return FALSE
    if len(operands) == 1:
        return operands[0]
    return Or(tuple(operands))


def variables_in_order(formula: Formula) -> Tuple[str, ...]:
    """Return formula variables in first-occurrence (depth-first) order.

    Useful for deterministic variable numbering when building CNF instances and
    BDD variable orders.
    """
    seen: Dict[str, None] = {}
    for node in formula.iter_nodes():
        if isinstance(node, Var) and node.name not in seen:
            seen[node.name] = None
    return tuple(seen.keys())
