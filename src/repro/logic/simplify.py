"""Structural formula transformations.

Provides the rewrites used by the MPMCS pipeline and the baselines:

* :func:`simplify` — constant folding, flattening of nested And/Or, duplicate
  removal and trivial-case collapsing.
* :func:`to_nnf` — negation normal form (negations pushed to the leaves,
  Xor/Implies/AtLeast eliminated or preserved as requested).
* :func:`complement` — the *success tree* transformation of Step 1 of the
  paper: complement every event and swap AND/OR gates.
* :func:`flatten` — associative flattening of nested gates of the same type.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.exceptions import FormulaError
from repro.logic.formula import (
    And,
    AtLeast,
    Const,
    FALSE,
    Formula,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
    conjoin,
    disjoin,
)

__all__ = ["simplify", "flatten", "to_nnf", "complement", "push_negations"]


def simplify(formula: Formula) -> Formula:
    """Return a semantically equivalent but structurally simplified formula.

    The rewrite applies, bottom-up:

    * constant folding (``x & false -> false``, ``x | true -> true``, ...);
    * flattening of directly nested And/And and Or/Or;
    * removal of duplicate operands;
    * double-negation elimination;
    * collapse of single-operand And/Or nodes.

    The result is logically equivalent to the input (not merely
    equisatisfiable), which the property-based tests verify by exhaustive
    evaluation on small variable sets.
    """
    cache: Dict[Formula, Formula] = {}
    return _simplify(formula, cache)


def _simplify(node: Formula, cache: Dict[Formula, Formula]) -> Formula:
    cached = cache.get(node)
    if cached is not None:
        return cached

    result: Formula
    if isinstance(node, (Var, Const)):
        result = node
    elif isinstance(node, Not):
        inner = _simplify(node.operand, cache)
        if isinstance(inner, Const):
            result = FALSE if inner.value else TRUE
        elif isinstance(inner, Not):
            result = inner.operand
        else:
            result = Not(inner)
    elif isinstance(node, And):
        result = _simplify_and(node, cache)
    elif isinstance(node, Or):
        result = _simplify_or(node, cache)
    elif isinstance(node, Xor):
        result = _simplify_xor(node, cache)
    elif isinstance(node, Implies):
        result = _simplify(Or((Not(node.antecedent), node.consequent)), cache)
    elif isinstance(node, AtLeast):
        result = _simplify_atleast(node, cache)
    else:  # pragma: no cover - defensive
        raise FormulaError(f"unsupported formula node {type(node).__name__}")

    cache[node] = result
    return result


def _simplify_and(node: And, cache: Dict[Formula, Formula]) -> Formula:
    operands: list[Formula] = []
    seen: set[Formula] = set()
    for op in node.operands:
        sop = _simplify(op, cache)
        if isinstance(sop, Const):
            if not sop.value:
                return FALSE
            continue
        parts = sop.operands if isinstance(sop, And) else (sop,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                operands.append(part)
    for op in operands:
        if Not(op) in seen or (isinstance(op, Not) and op.operand in seen):
            return FALSE
    return conjoin(operands)


def _simplify_or(node: Or, cache: Dict[Formula, Formula]) -> Formula:
    operands: list[Formula] = []
    seen: set[Formula] = set()
    for op in node.operands:
        sop = _simplify(op, cache)
        if isinstance(sop, Const):
            if sop.value:
                return TRUE
            continue
        parts = sop.operands if isinstance(sop, Or) else (sop,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                operands.append(part)
    for op in operands:
        if Not(op) in seen or (isinstance(op, Not) and op.operand in seen):
            return TRUE
    return disjoin(operands)


def _simplify_xor(node: Xor, cache: Dict[Formula, Formula]) -> Formula:
    operands: list[Formula] = []
    parity_flip = False
    for op in node.operands:
        sop = _simplify(op, cache)
        if isinstance(sop, Const):
            parity_flip ^= sop.value
            continue
        operands.append(sop)
    if not operands:
        return TRUE if parity_flip else FALSE
    result: Formula = Xor(tuple(operands)) if len(operands) > 1 else operands[0]
    if parity_flip:
        result = Not(result)
    return result


def _simplify_atleast(node: AtLeast, cache: Dict[Formula, Formula]) -> Formula:
    operands: list[Formula] = []
    threshold = node.k
    for op in node.operands:
        sop = _simplify(op, cache)
        if isinstance(sop, Const):
            if sop.value:
                threshold -= 1
            continue
        operands.append(sop)
    if threshold <= 0:
        return TRUE
    if threshold > len(operands):
        return FALSE
    if threshold == 1:
        return disjoin(operands)
    if threshold == len(operands):
        return conjoin(operands)
    return AtLeast(threshold, tuple(operands))


def flatten(formula: Formula) -> Formula:
    """Flatten directly nested And/And and Or/Or nodes without other rewrites."""
    if isinstance(formula, And):
        flat: list[Formula] = []
        for op in formula.operands:
            fop = flatten(op)
            if isinstance(fop, And):
                flat.extend(fop.operands)
            else:
                flat.append(fop)
        return conjoin(flat)
    if isinstance(formula, Or):
        flat = []
        for op in formula.operands:
            fop = flatten(op)
            if isinstance(fop, Or):
                flat.extend(fop.operands)
            else:
                flat.append(fop)
        return disjoin(flat)
    if isinstance(formula, Not):
        return Not(flatten(formula.operand))
    if isinstance(formula, Implies):
        return Implies(flatten(formula.antecedent), flatten(formula.consequent))
    if isinstance(formula, Xor):
        return Xor(tuple(flatten(op) for op in formula.operands))
    if isinstance(formula, AtLeast):
        return AtLeast(formula.k, tuple(flatten(op) for op in formula.operands))
    return formula


def to_nnf(formula: Formula, *, expand_thresholds: bool = False) -> Formula:
    """Convert to negation normal form.

    Implications and XORs are eliminated; negations are pushed down to the
    variables using De Morgan's laws.  When ``expand_thresholds`` is true,
    :class:`AtLeast` nodes are expanded into And/Or combinations (exponential in
    the gate arity — use only for small gates); otherwise negated thresholds are
    rewritten using the identity ``~atleast(k, xs) = atleast(n-k+1, ~xs)``.
    """
    return _nnf(formula, negate=False, expand_thresholds=expand_thresholds)


# ``push_negations`` is the historical name used in several FTA code bases.
push_negations = to_nnf


def _nnf(node: Formula, *, negate: bool, expand_thresholds: bool) -> Formula:
    if isinstance(node, Const):
        value = node.value ^ negate
        return TRUE if value else FALSE
    if isinstance(node, Var):
        return Not(node) if negate else node
    if isinstance(node, Not):
        return _nnf(node.operand, negate=not negate, expand_thresholds=expand_thresholds)
    if isinstance(node, And):
        parts = tuple(
            _nnf(op, negate=negate, expand_thresholds=expand_thresholds) for op in node.operands
        )
        return disjoin(parts) if negate else conjoin(parts)
    if isinstance(node, Or):
        parts = tuple(
            _nnf(op, negate=negate, expand_thresholds=expand_thresholds) for op in node.operands
        )
        return conjoin(parts) if negate else disjoin(parts)
    if isinstance(node, Implies):
        rewritten = Or((Not(node.antecedent), node.consequent))
        return _nnf(rewritten, negate=negate, expand_thresholds=expand_thresholds)
    if isinstance(node, Xor):
        rewritten = _expand_xor(node.operands)
        return _nnf(rewritten, negate=negate, expand_thresholds=expand_thresholds)
    if isinstance(node, AtLeast):
        if expand_thresholds:
            return _nnf(node.expand(), negate=negate, expand_thresholds=True)
        operands = tuple(
            _nnf(op, negate=negate, expand_thresholds=expand_thresholds) for op in node.operands
        )
        if negate:
            # ~(at least k of xs)  ==  at least (n - k + 1) of (~xs)
            return AtLeast(len(operands) - node.k + 1, operands)
        return AtLeast(node.k, operands)
    raise FormulaError(f"unsupported formula node {type(node).__name__}")  # pragma: no cover


def _expand_xor(operands: Tuple[Formula, ...]) -> Formula:
    """Rewrite an n-ary XOR as nested binary XOR expansions over And/Or/Not."""
    result: Formula = operands[0]
    for op in operands[1:]:
        result = Or((And((result, Not(op))), And((Not(result), op))))
    return result


def complement(formula: Formula) -> Formula:
    """Return the complement (negation) of ``formula`` in NNF.

    This is the *success tree* transformation of Step 1 in the paper: for a
    fault tree's structure function ``f(t)``, ``complement(f)`` is ``X(t) =
    ¬f(t)``, obtained by complementing all the events and swapping AND and OR
    gates.
    """
    return to_nnf(Not(formula))
